//! Ablation (§4.2): learning controllers vs re-searching under drift.
//!
//! "Other likely possibilities include the application of convex
//! optimization or machine learning techniques, as Remy has used in
//! congestion control." On a slowly drifting channel, a discounted UCB1
//! bandit amortizes its exploration across the whole run, while a periodic
//! re-search spends a burst of measurements every epoch and a static
//! configuration spends nothing and slowly goes stale. All three pay per
//! measurement; the currency is mean per-measurement reward (worst-subcarrier
//! SNR of the configuration in force).

use press::rig::fig4_rig;
use press_bench::write_csv;
use press_core::{search, CachedLink, Configuration, LinkBasis, UcbController};
use press_propagation::fading::ChannelDrift;
use rand::rngs::StdRng;
use rand::SeedableRng;

const STEPS: usize = 1200;
const DRIFT_EVERY: usize = 12;

fn main() {
    println!("# Ablation: UCB1 bandit vs periodic re-search vs static, drifting channel");
    println!("# {STEPS} measurement slots, environment drifts every {DRIFT_EVERY} slots\n");

    let rig = fig4_rig(1);
    let space = rig.system.array.config_space();
    let base_link = CachedLink::trace(
        &rig.system,
        rig.sounder.tx.node.clone(),
        rig.sounder.rx.node.clone(),
    );

    // One shared drift trajectory so the strategies face the same world.
    let mut worlds = Vec::with_capacity(STEPS / DRIFT_EVERY + 1);
    {
        let mut link = base_link.clone();
        let drift = ChannelDrift {
            phase_sigma_rad: 0.05,
            amplitude_sigma: 0.01,
        };
        let mut rng = StdRng::seed_from_u64(99);
        worlds.push(link.clone());
        for _ in 0..(STEPS / DRIFT_EVERY) {
            link.apply_drift(&drift, &mut rng);
            worlds.push(link.clone());
        }
    }
    // One basis per drift epoch: element columns are shared (cloned), only
    // the environment response is re-derived per world.
    let base_basis = LinkBasis::for_numerology(&rig.system, &base_link, &rig.sounder.num);
    let bases: Vec<LinkBasis> = worlds
        .iter()
        .map(|world| {
            let mut b = base_basis.clone();
            b.ensure_fresh(world);
            b
        })
        .collect();
    let world_at = |step: usize| step / DRIFT_EVERY;
    let reward = |world: usize, config: &Configuration| -> f64 {
        let h = bases[world].synthesize(config, 0.0);
        rig.sounder.snr_from_channel(&h).min_db()
    };

    // --- Static: exhaustive search once, never again. ---
    let static_total: f64 = {
        let first = search::exhaustive(&space, |c| reward(world_at(0), c));
        let mut total = 0.0;
        let mut spent = first.evaluations;
        for step in 0..STEPS {
            if spent > 0 {
                spent -= 1; // a search measurement occupies the slot
                continue;
            }
            total += reward(world_at(step), &first.best);
        }
        total
    };

    // --- Periodic: re-run exhaustive search every 300 slots. ---
    let periodic_total: f64 = {
        let mut total = 0.0;
        let mut current = Configuration::zeros(space.n_elements());
        let mut searching: Vec<Configuration> = Vec::new();
        for step in 0..STEPS {
            if step % 300 == 0 {
                searching = space.iter().collect();
            }
            if let Some(cand) = searching.pop() {
                // Measurement slot spent searching; remember the best.
                let r = reward(world_at(step), &cand);
                if r > reward(world_at(step), &current) {
                    current = cand;
                }
                continue;
            }
            total += reward(world_at(step), &current);
        }
        total
    };

    // --- Bandit: every slot measures its selection AND carries traffic on
    // the current best (exploration is the only overhead). ---
    let bandit_total: f64 = {
        let mut ucb = UcbController::new(space.clone());
        ucb.discount = 0.995;
        let mut total = 0.0;
        for step in 0..STEPS {
            let candidate = ucb.select();
            let r = reward(world_at(step), &candidate);
            ucb.observe(&candidate, r);
            // Traffic rides the exploited best; the measurement slot is the
            // candidate's, so exploitation costs nothing extra.
            if let Some((best, _)) = ucb.best() {
                total += reward(world_at(step), &best);
            }
        }
        total
    };

    println!("{:>12} {:>22}", "strategy", "mean reward (dB)");
    let mut rows = Vec::new();
    for (name, total) in [
        ("static", static_total),
        ("periodic", periodic_total),
        ("ucb-bandit", bandit_total),
    ] {
        let mean = total / STEPS as f64;
        println!("{name:>12} {mean:>22.2}");
        rows.push(format!("{name},{mean:.4}"));
    }
    write_csv("ablation_learning.csv", "strategy,mean_reward_db", &rows);
    println!("\n# the bandit should match or beat periodic re-search by never paying");
    println!("# burst search costs, and beat static once drift accumulates.");
}
