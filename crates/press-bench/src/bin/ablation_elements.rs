//! Ablation (§4.1): element count and antenna directionality.
//!
//! "More directional antennas would have a larger effect on a given link,
//! but are more selective… PRESS could use either few well-placed
//! directional antennas or many randomly placed but less directional
//! antennas, or anything in-between." This harness sweeps both axes:
//! element count 1–8 and antenna pattern (omni / patch / parabolic), and
//! reports the best achievable worst-subcarrier SNR.

use press_bench::write_csv;
use press_core::{search, CachedLink, Configuration, PlacedElement, PressArray, PressSystem};
use press_elements::Element;
use press_math::consts::WIFI_CHANNEL_11_HZ;
use press_phy::Numerology;
use press_propagation::antenna::{Antenna, Pattern};
use press_propagation::{LabConfig, LabSetup};
use press_sdr::{SdrRadio, Sounder};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn pattern_of(name: &str) -> Pattern {
    match name {
        "omni" => Pattern::endpoint_omni(),
        "patch" => Pattern::press_patch(),
        "parabolic" => Pattern::press_parabolic(),
        _ => unreachable!(),
    }
}

fn bench(seed: u64, n_elements: usize, antenna: &str) -> f64 {
    let lab = LabSetup::generate(&LabConfig::default(), seed);
    let lambda = lab.scene.wavelength();
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9E3779B97F4A7C15));
    let positions = lab.random_element_positions(n_elements, &mut rng);
    let aim = (lab.tx.position + lab.rx.position) * 0.5;
    let elements: Vec<PlacedElement> = positions
        .iter()
        .map(|&p| PlacedElement {
            element: Element::paper_passive(lambda),
            position: p,
            antenna: Antenna::new(pattern_of(antenna), aim - p),
        })
        .collect();
    let system = PressSystem::new(lab.scene.clone(), PressArray::new(elements));
    let sounder = Sounder::new(
        Numerology::wifi20(WIFI_CHANNEL_11_HZ),
        SdrRadio::warp(lab.tx.clone()),
        SdrRadio::warp(lab.rx.clone()),
    );
    let link = CachedLink::trace(&system, sounder.tx.node.clone(), sounder.rx.node.clone());
    let space = system.array.config_space();
    let eval = |c: &Configuration| sounder.oracle_snr(&link.paths(&system, c), 0.0).min_db();
    let result = if space.size() <= 4096 {
        search::exhaustive(&space, eval)
    } else {
        let mut search_rng = StdRng::seed_from_u64(seed);
        search::simulated_annealing(&space, 3000, 3.0, 0.02, &mut search_rng, eval)
    };
    result.score - eval(&Configuration::zeros(n_elements))
}

fn main() {
    println!("# Ablation: element count x antenna directionality");
    println!("# objective gain = best minSNR minus all-zero-phase baseline, mean of 3 benches\n");
    println!(
        "{:>10} {:>8} {:>8} {:>10}",
        "elements", "omni", "patch", "parabolic"
    );
    let mut rows = Vec::new();
    for n in [1usize, 2, 3, 4, 6, 8] {
        let mut line = format!("{n:>10}");
        let mut csv = format!("{n}");
        for antenna in ["omni", "patch", "parabolic"] {
            let gains: Vec<f64> = (0..3).map(|s| bench(s, n, antenna)).collect();
            let mean = gains.iter().sum::<f64>() / gains.len() as f64;
            let width = if antenna == "parabolic" { 10 } else { 8 };
            line.push_str(&format!(" {mean:>width$.2}"));
            csv.push_str(&format!(",{mean:.4}"));
        }
        println!("{line}");
        rows.push(csv);
    }
    write_csv(
        "ablation_elements.csv",
        "n_elements,gain_omni_db,gain_patch_db,gain_parabolic_db",
        &rows,
    );
    println!("\n# expectations: gains grow with element count; patch beats omni on this");
    println!("# short link; the 21-degree parabolic cannot cover both endpoints and lags.");
}
