//! Ablation (§4.1): well-placed vs randomly placed elements.
//!
//! "PRESS could use either few well-placed directional antennas or many
//! randomly placed but less directional antennas, or anything in-between."
//! This harness compares greedy placement (each element added where it
//! helps most, then the whole array re-tuned) against random placement at
//! equal element budgets, on the Figure 4 bench.

use press_bench::write_csv;
use press_core::placement::{greedy_placement, random_placement_baseline};
use press_core::PlacedElement;
use press_elements::Element;
use press_math::consts::WIFI_CHANNEL_11_HZ;
use press_phy::snr::SnrProfile;
use press_phy::Numerology;
use press_propagation::antenna::{Antenna, Pattern};
use press_propagation::{LabConfig, LabSetup, Vec3};
use press_sdr::{SdrRadio, Sounder};

fn main() {
    println!("# Ablation: greedy vs random element placement (paper §4.1)");
    println!("# objective: worst-subcarrier SNR after configuration tuning\n");

    let lab = LabSetup::generate(&LabConfig::default(), 1);
    let lambda = lab.scene.wavelength();
    let aim = (lab.tx.position + lab.rx.position) * 0.5;
    let sounder = Sounder::new(
        Numerology::wifi20(WIFI_CHANNEL_11_HZ),
        SdrRadio::warp(lab.tx.clone()),
        SdrRadio::warp(lab.rx.clone()),
    );
    // Thin the candidate grid for tractable greedy placement.
    let candidates: Vec<Vec3> = lab.element_grid.iter().copied().step_by(3).collect();
    println!("# {} candidate wall positions\n", candidates.len());
    let factory = |p: Vec3| PlacedElement {
        element: Element::paper_passive(lambda),
        position: p,
        antenna: Antenna::new(Pattern::press_patch(), aim - p),
    };
    let objective = |p: &SnrProfile| p.min_db();

    println!(
        "{:>9} {:>14} {:>16} {:>16}",
        "elements", "greedy dB", "random mean dB", "random best dB"
    );
    let mut rows = Vec::new();
    for budget in [1usize, 2, 3, 4] {
        let greedy = greedy_placement(
            &lab.scene,
            &sounder,
            &candidates,
            budget,
            &factory,
            &objective,
        );
        let (rand_mean, rand_best) = random_placement_baseline(
            &lab.scene,
            &sounder,
            &candidates,
            budget,
            &factory,
            &objective,
            8,
            5,
        );
        let g = *greedy.score_trace.last().unwrap();
        println!("{budget:>9} {g:>14.2} {rand_mean:>16.2} {rand_best:>16.2}");
        rows.push(format!("{budget},{g:.4},{rand_mean:.4},{rand_best:.4}"));
    }
    write_csv(
        "ablation_placement.csv",
        "budget,greedy_min_snr_db,random_mean_db,random_best_db",
        &rows,
    );
    println!("\n# greedy placement should dominate the random mean at every budget —");
    println!("# 'few well-placed' elements buying what extra random ones would.");
}
