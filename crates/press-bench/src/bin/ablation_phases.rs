//! Ablation (§4.1): number of reflection coefficients per element.
//!
//! The paper conjectures that "around eight phase values along with the off
//! state may provide sufficient resolution" and plans to test against
//! continuously-variable hardware. This harness sweeps the per-element
//! phase count over several benches and reports the best achievable
//! link-enhancement objective per resolution, plus the continuous-phase
//! upper bound (512 phases stands in for continuum).

use press_bench::write_csv;
use press_core::{
    search, CachedLink, ConfigSpace, Configuration, PlacedElement, PressArray, PressSystem,
};
use press_elements::Element;
use press_math::consts::WIFI_CHANNEL_11_HZ;
use press_phy::Numerology;
use press_propagation::antenna::{Antenna, Pattern};
use press_propagation::{LabConfig, LabSetup};
use press_sdr::{SdrRadio, Sounder};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench(seed: u64, n_phases: usize) -> (f64, f64) {
    let lab = LabSetup::generate(&LabConfig::default(), seed);
    let lambda = lab.scene.wavelength();
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9E3779B97F4A7C15));
    let positions = lab.random_element_positions(3, &mut rng);
    let aim = (lab.tx.position + lab.rx.position) * 0.5;
    let elements: Vec<PlacedElement> = positions
        .iter()
        .map(|&p| PlacedElement {
            element: Element::quantized_passive(n_phases, true, lambda),
            position: p,
            antenna: Antenna::new(Pattern::press_patch(), aim - p),
        })
        .collect();
    let system = PressSystem::new(lab.scene.clone(), PressArray::new(elements));
    let sounder = Sounder::new(
        Numerology::wifi20(WIFI_CHANNEL_11_HZ),
        SdrRadio::warp(lab.tx.clone()),
        SdrRadio::warp(lab.rx.clone()),
    );
    let link = CachedLink::trace(&system, sounder.tx.node.clone(), sounder.rx.node.clone());
    let space = system.array.config_space();
    let eval = |c: &Configuration| sounder.oracle_snr(&link.paths(&system, c), 0.0).min_db();
    // Exhaustive up to 8 phases; greedy coordinate descent (converged) above.
    let result = if space.size() <= 1000 {
        search::exhaustive(&space, eval)
    } else {
        best_of_greedy(&space, seed, eval)
    };
    let baseline = eval(&Configuration::zeros(3));
    (result.score, result.score - baseline)
}

fn best_of_greedy(
    space: &ConfigSpace,
    seed: u64,
    eval: impl Fn(&Configuration) -> f64 + Copy,
) -> search::SearchResult {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut best: Option<search::SearchResult> = None;
    for _ in 0..8 {
        let start = space.random(&mut rng);
        let r = search::greedy_coordinate(space, start, 6, eval);
        if best.as_ref().is_none_or(|b| r.score > b.score) {
            best = Some(r);
        }
    }
    best.expect("restarts > 0")
}

fn main() {
    println!("# Ablation: phase resolution per element (paper §4.1 conjecture)");
    println!(
        "{:>8} {:>10} {:>14} {:>14}",
        "phases", "states", "minSNR dB", "gain dB"
    );
    let seeds: Vec<u64> = (0..4).collect();
    let mut rows = Vec::new();
    let mut continuum = 0.0;
    for n_phases in [2usize, 3, 4, 6, 8, 12, 16, 32, 512] {
        let mut scores = Vec::new();
        let mut gains = Vec::new();
        for &seed in &seeds {
            let (score, gain) = bench(seed, n_phases);
            scores.push(score);
            gains.push(gain);
        }
        let mean_score = scores.iter().sum::<f64>() / scores.len() as f64;
        let mean_gain = gains.iter().sum::<f64>() / gains.len() as f64;
        if n_phases == 512 {
            continuum = mean_gain;
        }
        println!(
            "{:>8} {:>10} {:>14.2} {:>14.2}",
            n_phases,
            n_phases + 1,
            mean_score,
            mean_gain
        );
        rows.push(format!("{n_phases},{mean_score:.4},{mean_gain:.4}"));
    }
    write_csv(
        "ablation_phases.csv",
        "phases,best_min_snr_db,gain_db",
        &rows,
    );
    println!("\n# continuous-phase stand-in (512) gains {continuum:.2} dB;");
    println!("# the paper's conjecture holds if 8 phases capture most of that.");
}
