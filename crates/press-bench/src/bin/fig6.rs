//! Figure 6: distributions of the minimum subcarrier SNR across PRESS
//! configurations.
//!
//! Paper procedure (§3.2.1, data from the Figure 4(e) placement):
//!
//! * **Left**: complementary CDF of the change in minimum SNR (across
//!   subcarriers) between pairs of configurations.
//! * **Right**: complementary CDF of the minimum SNR itself over the 64
//!   configurations — one trace per each of the 10 trials.
//!
//! Headlines: ~38% of configuration changes cause a ≥10 dB SNR change on at
//! least one subcarrier; fewer than 9% of configurations have a worst
//! subcarrier below 20 dB.

use press::rig::fig4_rig;
use press_bench::{ccdf_rows, write_csv};
use press_core::analysis::{
    fraction_configs_min_below, fraction_pairs_with_subcarrier_delta, min_snr_changes, min_snrs,
};
use press_core::{run_campaign, CampaignConfig};

/// Same placement as the fig5 harness (the paper's panel (e)); pass
/// `--seed N` to choose another.
pub const FIG6_SEED: u64 = 2;

fn seed_from_args() -> u64 {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(FIG6_SEED)
}

fn main() {
    let seed = seed_from_args();
    let rig = fig4_rig(seed);
    let campaign = CampaignConfig {
        n_trials: 10,
        frames_per_config: 4,
        seed,
        ..CampaignConfig::default()
    };
    println!("# Figure 6 — min-SNR distributions, placement seed {seed}");
    let result = run_campaign(&rig.system, &rig.sounder, &campaign);

    // Left panel: pooled CCDF of |delta min SNR| over pairs, all trials.
    let mut deltas = Vec::new();
    for profiles in &result.profiles {
        deltas.extend(min_snr_changes(profiles));
    }
    write_csv(
        "fig6_left.csv",
        "delta_min_snr_db,ccdf",
        &ccdf_rows(&deltas),
    );

    // Right panel: per-trial CCDF of min SNR over the 64 configurations.
    let mut right_rows = Vec::new();
    for (trial, profiles) in result.profiles.iter().enumerate() {
        for r in ccdf_rows(&min_snrs(profiles)) {
            right_rows.push(format!("{trial},{r}"));
        }
    }
    write_csv("fig6_right.csv", "trial,min_snr_db,ccdf", &right_rows);

    // Headlines, averaged over trials as in the analysis module.
    let mut frac10 = 0.0;
    let mut below20 = 0.0;
    for profiles in &result.profiles {
        frac10 += fraction_pairs_with_subcarrier_delta(profiles, 10.0);
        below20 += fraction_configs_min_below(profiles, 20.0);
    }
    let n = result.profiles.len() as f64;
    println!("\n# fraction of configuration changes with >=10 dB on some subcarrier:");
    println!("#   measured {:.2}   (paper: ~0.38)", frac10 / n);
    println!("# fraction of configurations with worst subcarrier < 20 dB:");
    println!("#   measured {:.2}   (paper: < 0.09)", below20 / n);
    if let Some(e) = press_math::Ecdf::new(&deltas) {
        println!("# P(|delta min SNR| > 8 dB)  = {:.3}", e.ccdf(8.0));
        println!("# P(|delta min SNR| > 18 dB) = {:.3}", e.ccdf(18.0));
    }
}
