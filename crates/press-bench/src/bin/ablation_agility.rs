//! Ablation (§2): the agility-vs-optimization trade-off.
//!
//! "A trade-off exists between agility and optimization: one might jointly
//! optimize over a large set of likely communication links, obviating the
//! need to change the PRESS array for each link's communication … On the
//! other end … optimize solely over a single communication link, \[but\]
//! hard-forcing the above timing constraints."
//!
//! Three links share the array under TDMA. We sweep the control plane's
//! actuation latency (wired → ISM → ultrasound class) and report where the
//! per-link-switched strategy stops paying for itself against one static
//! joint configuration.

use press_bench::write_csv;
use press_core::{compare_agility, LinkObjective, PressArray, PressSystem, SmartSpace};
use press_math::consts::WIFI_CHANNEL_11_HZ;
use press_phy::Numerology;
use press_propagation::{LabConfig, LabSetup, RadioNode, Vec3};
use press_sdr::{SdrRadio, Sounder};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    println!("# Ablation: agility (per-link switching) vs optimization (one joint config)");

    let lab = LabSetup::generate(&LabConfig::default(), 6);
    let lambda = lab.scene.wavelength();
    let mut rng = StdRng::seed_from_u64(2);
    let positions = lab.random_element_positions(3, &mut rng);
    let aim = (lab.tx.position + lab.rx.position) * 0.5;
    let array = PressArray::paper_passive_aimed(&positions, lambda, aim);
    let system = PressSystem::new(lab.scene.clone(), array);

    let num = Numerology::wifi20(WIFI_CHANNEL_11_HZ);
    // Three clients of the same AP at different spots around the rack.
    // Clients at genuinely different ranges and shadowing, so one
    // configuration cannot please all three and per-link switching has
    // something to win.
    let clients = [
        lab.rx.position,
        lab.rx.position + Vec3::new(2.6, 2.4, 0.0),
        lab.rx.position + Vec3::new(1.0, -3.2, 0.1),
    ];
    let mut space = SmartSpace::new(system);
    for (i, &c) in clients.iter().enumerate() {
        let mut tx = SdrRadio::warp(lab.tx.clone());
        // Low-power IoT regime: the links sit mid rate-ladder, where a
        // compromise configuration genuinely costs throughput.
        tx.tx_power_dbm = -8.0;
        let sounder = Sounder::new(num.clone(), tx, SdrRadio::warp(RadioNode::omni_at(c)));
        space.add_link(
            &format!("client {i}"),
            sounder,
            LinkObjective::MaxMeanSnr,
            1.0,
        );
    }

    let slot_s = 2e-3; // the paper's packet-level timescale
    println!(
        "# {} links, TDMA slot {:.1} ms\n",
        space.n_links(),
        slot_s * 1e3
    );
    println!(
        "{:>16} {:>14} {:>16} {:>10}",
        "switch latency", "joint Mb/s", "per-link Mb/s", "winner"
    );
    let mut rows = Vec::new();
    for switch_us in [0.0f64, 50.0, 100.0, 200.0, 400.0, 800.0, 1600.0] {
        let report = compare_agility(&space, 150, slot_s, switch_us * 1e-6, 3);
        let winner = if report.agility_wins() {
            "per-link"
        } else {
            "joint"
        };
        println!(
            "{:>13} us {:>14.2} {:>16.2} {:>10}",
            switch_us, report.joint_mbps, report.per_link_mbps, winner
        );
        rows.push(format!(
            "{switch_us},{:.4},{:.4},{winner}",
            report.joint_mbps, report.per_link_mbps
        ));
    }
    write_csv(
        "ablation_agility.csv",
        "switch_latency_us,joint_mbps,per_link_mbps,winner",
        &rows,
    );
    println!("\n# the crossover is where the paper's 'hybrid tradeoffs and dynamic");
    println!("# strategies' live: faster control planes buy per-link agility.");
}
