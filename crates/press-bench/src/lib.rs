//! # press-bench
//!
//! Figure-regeneration harnesses and criterion benchmarks for the PRESS
//! reproduction. Each `fig*` binary regenerates one figure of the paper's
//! evaluation (HotNets'17, §3) as CSV series printed to stdout and written
//! under `results/`; the `ablation_*` binaries cover the §4 design-space
//! questions. See DESIGN.md for the experiment index and EXPERIMENTS.md for
//! the paper-vs-measured record.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod perf;

use std::fs;
use std::io::Write;
use std::path::PathBuf;

/// Where harnesses drop their CSV output (`<workspace>/results`).
pub fn results_dir() -> PathBuf {
    // CARGO_MANIFEST_DIR = crates/press-bench; results live at the root.
    let mut dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    dir.pop();
    dir.pop();
    dir.push("results");
    dir
}

/// Writes a CSV file under `results/`, creating the directory as needed.
/// Each row is already-joined text; the header is written first.
pub fn write_csv(name: &str, header: &str, rows: &[String]) -> PathBuf {
    let dir = results_dir();
    fs::create_dir_all(&dir).expect("create results dir");
    let path = dir.join(name);
    let mut f = fs::File::create(&path).expect("create csv");
    writeln!(f, "{header}").unwrap();
    for r in rows {
        writeln!(f, "{r}").unwrap();
    }
    println!("wrote {}", path.display());
    path
}

/// Formats an empirical CCDF as CSV rows `(x, prob)`.
pub fn ccdf_rows(samples: &[f64]) -> Vec<String> {
    match press_math::Ecdf::new(samples) {
        Some(e) => e
            .ccdf_curve()
            .into_iter()
            .map(|(x, p)| format!("{x:.4},{p:.6}"))
            .collect(),
        None => Vec::new(),
    }
}

/// Formats an empirical CDF as CSV rows `(x, prob)`.
pub fn cdf_rows(samples: &[f64]) -> Vec<String> {
    match press_math::Ecdf::new(samples) {
        Some(e) => e
            .curve()
            .into_iter()
            .map(|(x, p)| format!("{x:.4},{p:.6}"))
            .collect(),
        None => Vec::new(),
    }
}

/// Renders a quick ASCII sparkline of a series for terminal inspection.
pub fn sparkline(values: &[f64]) -> String {
    const GLYPHS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if !lo.is_finite() || !hi.is_finite() || hi <= lo {
        return "─".repeat(values.len());
    }
    values
        .iter()
        .map(|&v| {
            let idx = ((v - lo) / (hi - lo) * 7.0).round() as usize;
            GLYPHS[idx.min(7)]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparkline_handles_flat_series() {
        assert_eq!(sparkline(&[1.0, 1.0, 1.0]), "───");
    }

    #[test]
    fn sparkline_spans_range() {
        let s = sparkline(&[0.0, 1.0]);
        assert_eq!(s.chars().count(), 2);
        let cs: Vec<char> = s.chars().collect();
        assert_eq!(cs[0], '▁');
        assert_eq!(cs[1], '█');
    }

    #[test]
    fn ccdf_rows_shapes() {
        let rows = ccdf_rows(&[1.0, 2.0, 3.0]);
        assert_eq!(rows.len(), 3);
        assert!(rows[2].ends_with("0.000000"));
        assert!(ccdf_rows(&[]).is_empty());
    }

    #[test]
    fn results_dir_is_under_workspace() {
        assert!(results_dir().ends_with("results"));
    }
}
