//! Property-based tests for the control plane: codec robustness and
//! actuation invariants for arbitrary assignments and corruption.

use press_control::{
    actuate, actuate_with, AckPolicy, CodecError, ControlMetrics, ElementFaults, FaultPlan,
    GilbertElliott, Message, Transport,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn messages() -> impl Strategy<Value = Message> {
    prop_oneof![
        (any::<u16>(), any::<u16>(), any::<u8>()).prop_map(|(seq, element, state)| {
            Message::SetState {
                seq,
                element,
                state,
            }
        }),
        any::<u16>().prop_map(|seq| Message::Ack { seq }),
        any::<u16>().prop_map(|seq| Message::Ping { seq }),
        (
            any::<u16>(),
            proptest::collection::vec((any::<u16>(), any::<u8>()), 0..40)
        )
            .prop_map(|(seq, assignments)| Message::BatchSet { seq, assignments }),
    ]
}

proptest! {
    #[test]
    fn codec_roundtrip(msg in messages()) {
        let frame = msg.encode();
        prop_assert_eq!(Message::decode(&frame).unwrap(), msg);
    }

    #[test]
    fn single_byte_corruption_never_yields_wrong_message(msg in messages(), pos in 0usize..512, flip in 1u8..=255) {
        let mut frame = msg.encode().to_vec();
        let pos = pos % frame.len();
        frame[pos] ^= flip;
        // Either rejected, or (only if the checksum byte itself was what
        // changed back to consistency — impossible with a single flip) the
        // same message. It must never decode to a *different* message.
        match Message::decode(&frame) {
            Err(_) => {}
            Ok(decoded) => prop_assert_eq!(decoded, msg),
        }
    }

    #[test]
    fn truncation_always_rejected(msg in messages(), keep in 0usize..8) {
        let frame = msg.encode();
        let keep = keep.min(frame.len().saturating_sub(1));
        let result = Message::decode(&frame[..keep]);
        prop_assert!(result.is_err());
        if keep < 5 {
            prop_assert_eq!(result.unwrap_err(), CodecError::Truncated);
        }
    }

    #[test]
    fn actuation_completion_time_nonnegative_and_counts_frames(
        n in 0usize..50,
        seed in 0u64..100,
    ) {
        let assignments: Vec<(u16, u8)> = (0..n as u16).map(|e| (e, 1)).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        let r = actuate(
            &Transport::ism(),
            &assignments,
            10.0,
            AckPolicy::PerElement { max_retries: 6 },
            &mut rng,
        );
        prop_assert!(r.completion_s >= 0.0);
        if n == 0 {
            prop_assert!(r.complete());
            prop_assert_eq!(r.frames_sent, 0);
        } else {
            prop_assert!(r.frames_sent >= 1);
        }
        // Failed and unconfirmed elements are disjoint subsets of the
        // addressed ones.
        for e in &r.failed {
            prop_assert!((*e as usize) < n);
            prop_assert!(!r.unconfirmed.contains(e));
        }
        for e in &r.unconfirmed {
            prop_assert!((*e as usize) < n);
        }
    }

    #[test]
    fn reliable_transport_always_completes(n in 1usize..80, seed in 0u64..50) {
        let assignments: Vec<(u16, u8)> = (0..n as u16).map(|e| (e, 2)).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        let r = actuate(
            &Transport::wired(),
            &assignments,
            20.0,
            AckPolicy::PerElement { max_retries: 8 },
            &mut rng,
        );
        prop_assert!(r.complete(), "failed: {:?}", r.failed);
        prop_assert!(r.confirmed(), "unconfirmed: {:?}", r.unconfirmed);
    }

    #[test]
    fn more_retries_never_hurt_completion(n in 1usize..40, seed in 0u64..30) {
        let assignments: Vec<(u16, u8)> = (0..n as u16).map(|e| (e, 1)).collect();
        let few = actuate(
            &Transport::ultrasound(),
            &assignments,
            8.0,
            AckPolicy::PerElement { max_retries: 1 },
            &mut StdRng::seed_from_u64(seed),
        );
        let many = actuate(
            &Transport::ultrasound(),
            &assignments,
            8.0,
            AckPolicy::PerElement { max_retries: 12 },
            &mut StdRng::seed_from_u64(seed),
        );
        // Extra rounds only shrink the unacked set, and within it only move
        // elements from failed (never applied) toward applied.
        prop_assert!(many.failed.len() <= few.failed.len());
        prop_assert!(
            many.failed.len() + many.unconfirmed.len()
                <= few.failed.len() + few.unconfirmed.len()
        );
    }

    #[test]
    fn ideal_fault_plan_is_rng_transparent(
        n in 0usize..40,
        seed in 0u64..50,
        policy_idx in 0usize..3,
    ) {
        // actuate_with(FaultPlan::none(), no metrics) must be bit-identical
        // to actuate for every policy — instrumentation and fault hooks may
        // not perturb the simulation on the default path.
        let assignments: Vec<(u16, u8)> = (0..n as u16).map(|e| (e, 1)).collect();
        let policy = [
            AckPolicy::None,
            AckPolicy::PerElement { max_retries: 4 },
            AckPolicy::Adaptive { max_retries: 4, batch_cap: 8 },
        ][policy_idx];
        let bare = actuate(
            &Transport::ism(),
            &assignments,
            10.0,
            policy,
            &mut StdRng::seed_from_u64(seed),
        );
        let mut metrics = ControlMetrics::new();
        let hooked = actuate_with(
            &Transport::ism(),
            &assignments,
            10.0,
            policy,
            &mut FaultPlan::none(),
            Some(&mut metrics),
            &mut StdRng::seed_from_u64(seed),
        );
        prop_assert_eq!(bare.completion_s, hooked.completion_s);
        prop_assert_eq!(bare.frames_sent, hooked.frames_sent);
        prop_assert_eq!(&bare.failed, &hooked.failed);
        prop_assert_eq!(&bare.unconfirmed, &hooked.unconfirmed);
    }

    #[test]
    fn burst_chain_loss_is_always_a_probability(
        p_enter in 0.0f64..1.0,
        p_exit in 0.0f64..1.0,
        lg in 0.0f64..1.0,
        lb in 0.0f64..1.0,
        seed in 0u64..20,
    ) {
        let mut chain = GilbertElliott::new(p_enter, p_exit, lg, lb);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..200 {
            let loss = chain.advance(&mut rng);
            prop_assert!((0.0..=1.0).contains(&loss));
        }
    }

    #[test]
    fn dead_elements_always_fail_under_any_policy(
        n in 2usize..20,
        dead in 0usize..2,
        seed in 0u64..20,
        policy_idx in 0usize..2,
    ) {
        let assignments: Vec<(u16, u8)> = (0..n as u16).map(|e| (e, 1)).collect();
        let dead_id = dead as u16;
        let policy = [
            AckPolicy::PerElement { max_retries: 3 },
            AckPolicy::Adaptive { max_retries: 3, batch_cap: 4 },
        ][policy_idx];
        let r = actuate_with(
            &Transport::wired(),
            &assignments,
            10.0,
            policy,
            &mut FaultPlan::broken(ElementFaults::none().dead(dead_id)),
            None,
            &mut StdRng::seed_from_u64(seed),
        );
        prop_assert_eq!(&r.failed, &vec![dead_id]);
        prop_assert!(r.unconfirmed.is_empty());
    }
}
