//! # press-control
//!
//! The PRESS control plane (§2, §4.2 of the paper): the channel between a
//! (semi-)centralized controller and the wall-embedded array elements.
//!
//! * [`message`] — the tiny framed wire protocol (set-state, batch,
//!   ack, ping) with checksummed encode/decode over `bytes`;
//! * [`transport`] — the paper's three control-channel candidates as
//!   delivery models: wired bus, low-rate ISM radio, in-room ultrasound;
//! * [`actuation`] — event-driven batch actuation with acknowledgements and
//!   retransmission, reporting completion time against coherence budgets;
//! * [`fault`] — fault injection: Gilbert–Elliott burst loss and
//!   stuck/dead element failure modes;
//! * [`metrics`] — a lightweight counter/histogram registry the actuation
//!   entry points record into, exported as CSV rows.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
pub mod actuation;
pub mod clusters;
pub mod des;
pub mod fault;
pub mod message;
pub mod metrics;
pub mod transport;

pub use actuation::{
    actuate, actuate_traced, actuate_with, fits_coherence, AckPolicy, ActuationReport, RttEstimator,
};
pub use clusters::{ClusteredControl, CouplingGraph};
pub use des::{
    simulate_actuation, simulate_actuation_traced, simulate_actuation_with, BackoffConfig,
    DesConfig, DesReport, TraceEvent,
};
pub use fault::{BurstSpec, ElementFaultKind, ElementFaults, FaultPlan, FaultSpec, GilbertElliott};
pub use message::{CodecError, Message, MAGIC};
pub use metrics::{ControlMetrics, Histogram, SpaceMetrics};
pub use transport::{Delivery, Transport};
