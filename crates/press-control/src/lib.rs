//! # press-control
//!
//! The PRESS control plane (§2, §4.2 of the paper): the channel between a
//! (semi-)centralized controller and the wall-embedded array elements.
//!
//! * [`message`] — the tiny framed wire protocol (set-state, batch,
//!   ack, ping) with checksummed encode/decode over `bytes`;
//! * [`transport`] — the paper's three control-channel candidates as
//!   delivery models: wired bus, low-rate ISM radio, in-room ultrasound;
//! * [`actuation`] — event-driven batch actuation with acknowledgements and
//!   retransmission, reporting completion time against coherence budgets.

pub mod actuation;
pub mod clusters;
pub mod des;
pub mod message;
pub mod transport;

pub use actuation::{actuate, fits_coherence, AckPolicy, ActuationReport};
pub use clusters::ClusteredControl;
pub use des::{simulate_actuation, DesConfig, DesReport, TraceEvent};
pub use message::{CodecError, Message, MAGIC};
pub use transport::{Delivery, Transport};
