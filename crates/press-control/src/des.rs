//! Discrete-event simulation of the control plane.
//!
//! The round-based [`actuate`](crate::actuation::actuate) answers "how long
//! does a batch take"; this simulator answers the finer-grained questions a
//! §4.2 control-plane design raises: how do ack timeouts interact with
//! transport latency, what does the wire look like under retransmission
//! pressure, and when do commands for the *next* reconfiguration overtake
//! stragglers from the last one. Events are processed from a time-ordered
//! queue; every transmission, delivery, loss, ack and timeout is traced.
//!
//! Retransmission timing is configurable through [`BackoffConfig`]: a fixed
//! ack timeout (the default, matching the historical behavior exactly), an
//! exponential per-attempt backoff, and an RTT-adaptive mode where the
//! timeout is derived from acked round trips
//! ([`RttEstimator`]) instead of a static
//! guess. [`simulate_actuation_with`] additionally accepts fault injection
//! ([`FaultPlan`]) and a metrics registry.

use crate::actuation::RttEstimator;
use crate::fault::FaultPlan;
use crate::message::Message;
use crate::metrics::ControlMetrics;
use crate::transport::Transport;
use rand::Rng;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A traced control-plane event.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// Controller put a command frame on the medium.
    CommandSent {
        /// Time, seconds.
        t: f64,
        /// Sequence number.
        seq: u16,
        /// Addressed element.
        element: u16,
        /// Attempt number (0 = first transmission).
        attempt: usize,
    },
    /// An element applied its state and acked.
    Applied {
        /// Time, seconds.
        t: f64,
        /// Element id.
        element: u16,
        /// State applied.
        state: u8,
    },
    /// The controller received an ack.
    AckReceived {
        /// Time, seconds.
        t: f64,
        /// Element id.
        element: u16,
    },
    /// A frame (command or ack) was lost on the medium.
    Lost {
        /// Time, seconds.
        t: f64,
        /// Element id.
        element: u16,
    },
    /// A retransmission timer fired.
    TimerFired {
        /// Time, seconds.
        t: f64,
        /// Element id.
        element: u16,
    },
    /// The controller gave up on an element.
    GaveUp {
        /// Time, seconds.
        t: f64,
        /// Element id.
        element: u16,
    },
}

impl TraceEvent {
    /// The event's timestamp.
    pub fn time(&self) -> f64 {
        match self {
            TraceEvent::CommandSent { t, .. }
            | TraceEvent::Applied { t, .. }
            | TraceEvent::AckReceived { t, .. }
            | TraceEvent::Lost { t, .. }
            | TraceEvent::TimerFired { t, .. }
            | TraceEvent::GaveUp { t, .. } => *t,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Pending {
    CommandArrives {
        element: u16,
        state: u8,
        delivered: bool,
    },
    AckArrives {
        element: u16,
    },
    Timer {
        element: u16,
    },
}

#[derive(Debug, Clone, Copy)]
struct QueuedEvent {
    t: f64,
    // Tie-break for determinism when times collide.
    seq: u64,
    what: Pending,
}

impl PartialEq for QueuedEvent {
    fn eq(&self, other: &Self) -> bool {
        self.t == other.t && self.seq == other.seq
    }
}
impl Eq for QueuedEvent {}
impl PartialOrd for QueuedEvent {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueuedEvent {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: invert for earliest-first.
        other
            .t
            .total_cmp(&self.t)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Retransmission-timeout policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BackoffConfig {
    /// Timeout multiplier applied per prior attempt (`1.0` = fixed timeout,
    /// `2.0` = classic exponential backoff).
    pub multiplier: f64,
    /// Ceiling on the per-attempt timeout, seconds.
    pub max_timeout_s: f64,
    /// Derive the base timeout from acked round-trip times (Jacobson/Karels
    /// `SRTT + 4·RTTVAR`) instead of the static `ack_timeout_s`. Until the
    /// first ack arrives the static value is used.
    pub rtt_adaptive: bool,
}

impl Default for BackoffConfig {
    fn default() -> Self {
        BackoffConfig {
            multiplier: 1.0,
            max_timeout_s: 2.0,
            rtt_adaptive: false,
        }
    }
}

impl BackoffConfig {
    /// Classic adaptive ARQ: RTT-tracked base timeout, doubled per retry.
    pub fn adaptive() -> Self {
        BackoffConfig {
            multiplier: 2.0,
            max_timeout_s: 2.0,
            rtt_adaptive: true,
        }
    }
}

/// Simulator parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DesConfig {
    /// Ack timeout before retransmission, seconds (the base timeout; see
    /// [`BackoffConfig`]).
    pub ack_timeout_s: f64,
    /// Maximum transmissions per element (first + retries).
    pub max_attempts: usize,
    /// Worst-case controller-element distance, meters.
    pub distance_m: f64,
    /// Element switch settling time before the ack goes out, seconds.
    pub settle_s: f64,
    /// Retransmission-timeout policy. The default (fixed timeout, no RTT
    /// tracking) reproduces the historical event schedule exactly.
    pub backoff: BackoffConfig,
}

impl Default for DesConfig {
    fn default() -> Self {
        DesConfig {
            ack_timeout_s: 20e-3,
            max_attempts: 6,
            distance_m: 15.0,
            settle_s: 2e-6,
            backoff: BackoffConfig::default(),
        }
    }
}

/// Simulation outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct DesReport {
    /// Every event, time-ordered.
    pub trace: Vec<TraceEvent>,
    /// Time of the last element's *first* state application (not ack),
    /// seconds. Idempotent re-applications of retransmitted commands do not
    /// move this.
    pub last_apply_s: f64,
    /// Time the controller confirmed the final ack (or gave up), seconds.
    pub done_s: f64,
    /// Elements the controller gave up on that never applied their state.
    pub failed: Vec<u16>,
    /// Elements the controller gave up on that *did* apply their state but
    /// whose acks were all lost — configured, just not provably so.
    pub unconfirmed: Vec<u16>,
    /// Total frames transmitted (commands + acks).
    pub frames: usize,
}

impl DesReport {
    /// True when every element applied its commanded state (unconfirmed
    /// elements count as applied).
    pub fn complete(&self) -> bool {
        self.failed.is_empty()
    }

    /// True when every element applied *and* was acknowledged.
    pub fn confirmed(&self) -> bool {
        self.failed.is_empty() && self.unconfirmed.is_empty()
    }
}

/// Runs the event simulation for one batch actuation: each assignment is a
/// unicast command with an ack timer; losses trigger retransmission until
/// the attempt budget runs out. (Unicast per element models the worst case
/// of the broadcast schemes in [`actuate`](crate::actuation::actuate).)
///
/// Fault injection: the [`FaultPlan`]'s burst chain replaces the per-frame
/// loss probability, dead elements receive commands into the void, stuck
/// elements ack but stay in their stuck state (the [`TraceEvent::Applied`]
/// event records the state the hardware actually holds).
pub fn simulate_actuation_with<R: Rng + ?Sized>(
    transport: &Transport,
    assignments: &[(u16, u8)],
    cfg: &DesConfig,
    faults: &mut FaultPlan,
    mut metrics: Option<&mut ControlMetrics>,
    rng: &mut R,
) -> DesReport {
    let mut queue: BinaryHeap<QueuedEvent> = BinaryHeap::new();
    let mut trace = Vec::new();
    let mut seqno: u64 = 0;
    let mut frames = 0usize;

    let n = assignments.len();
    let mut acked = vec![false; n];
    // Applied is tracked separately from acked: a retransmitted command
    // landing while the first ack is still in flight must be idempotent —
    // re-acked, but not re-applied.
    let mut applied = vec![false; n];
    let mut attempts = vec![0usize; n];
    let mut last_send = vec![0.0f64; n];
    let mut failed = Vec::new();
    let mut unconfirmed = Vec::new();
    let mut rtt = RttEstimator::new();
    let index_of = |element: u16| assignments.iter().position(|&(e, _)| e == element);

    // Helper to enqueue.
    let push = |queue: &mut BinaryHeap<QueuedEvent>, seqno: &mut u64, t: f64, what: Pending| {
        *seqno += 1;
        queue.push(QueuedEvent {
            t,
            seq: *seqno,
            what,
        });
    };
    // Per-attempt retransmission timeout.
    let timeout_for = |attempt: usize, rtt: &RttEstimator| -> f64 {
        let base = if cfg.backoff.rtt_adaptive {
            rtt.timeout(cfg.ack_timeout_s)
        } else {
            cfg.ack_timeout_s
        };
        (base
            * cfg
                .backoff
                .multiplier
                .powi(attempt.saturating_sub(1) as i32))
        .min(cfg.backoff.max_timeout_s)
    };

    // Initial transmissions: serialized back-to-back on the shared medium.
    let mut wire_free_at = 0.0f64;
    for (i, &(element, state)) in assignments.iter().enumerate() {
        let msg = Message::SetState {
            seq: i as u16,
            element,
            state,
        };
        let loss = faults.frame_loss(transport.loss_prob(), rng);
        let d = transport.deliver_with_loss(msg.wire_len(), cfg.distance_m, loss, rng);
        frames += 1;
        if let Some(m) = metrics.as_deref_mut() {
            m.frames_tx += 1;
            m.frame_latency.observe(d.latency_s);
            if !d.delivered {
                m.frames_lost += 1;
            }
        }
        trace.push(TraceEvent::CommandSent {
            t: wire_free_at,
            seq: i as u16,
            element,
            attempt: 0,
        });
        attempts[i] = 1;
        last_send[i] = wire_free_at;
        push(
            &mut queue,
            &mut seqno,
            wire_free_at + d.latency_s,
            Pending::CommandArrives {
                element,
                state,
                delivered: d.delivered,
            },
        );
        push(
            &mut queue,
            &mut seqno,
            wire_free_at + timeout_for(1, &rtt),
            Pending::Timer { element },
        );
        // Serialization occupies the wire for the latency's serialization part;
        // approximate with the full one-way latency for simplicity.
        wire_free_at += msg.wire_len() as f64 * 8.0 / transport.bitrate_bps();
    }

    let mut last_apply = 0.0f64;
    let mut done = 0.0f64;

    while let Some(QueuedEvent { t, what, .. }) = queue.pop() {
        match what {
            Pending::CommandArrives {
                element,
                state,
                delivered,
            } => {
                if !delivered {
                    trace.push(TraceEvent::Lost { t, element });
                    continue;
                }
                let i = index_of(element).expect("known element"); // press-lint: allow(panic-freedom) — the schedule only references registered elements
                if acked[i] {
                    continue; // duplicate of an already-confirmed command
                }
                if !faults.elements.responds(element) {
                    // Dead element: the frame arrived at a corpse. The timer
                    // will keep firing until the attempt budget runs out.
                    continue;
                }
                if !applied[i] {
                    applied[i] = true;
                    // Stuck elements "apply" whatever their hardware is
                    // frozen at; the trace records the real state.
                    let realized = faults
                        .elements
                        .realized_state(element, state)
                        .expect("responding element has a realized state"); // press-lint: allow(panic-freedom) — responds() above guarantees a realized state
                    trace.push(TraceEvent::Applied {
                        t: t + cfg.settle_s,
                        element,
                        state: realized,
                    });
                    last_apply = last_apply.max(t + cfg.settle_s);
                }
                // Ack (or re-ack, for an idempotent duplicate) the command
                // actually received: the ack carries the command's own seq.
                let ack = Message::SetState {
                    seq: i as u16,
                    element,
                    state,
                }
                .ack();
                let ack_loss = faults.frame_loss(transport.loss_prob(), rng);
                let d = transport.deliver_with_loss(ack.wire_len(), cfg.distance_m, ack_loss, rng);
                frames += 1;
                if d.delivered {
                    push(
                        &mut queue,
                        &mut seqno,
                        t + cfg.settle_s + d.latency_s,
                        Pending::AckArrives { element },
                    );
                } else {
                    if let Some(m) = metrics.as_deref_mut() {
                        m.acks_lost += 1;
                    }
                    trace.push(TraceEvent::Lost {
                        t: t + cfg.settle_s,
                        element,
                    });
                }
            }
            Pending::AckArrives { element } => {
                let i = index_of(element).expect("known element"); // press-lint: allow(panic-freedom) — the schedule only references registered elements
                if !acked[i] {
                    acked[i] = true;
                    rtt.observe(t - last_send[i]);
                    if let Some(m) = metrics.as_deref_mut() {
                        m.acks_rx += 1;
                    }
                    trace.push(TraceEvent::AckReceived { t, element });
                    done = done.max(t);
                }
            }
            Pending::Timer { element } => {
                let i = index_of(element).expect("known element"); // press-lint: allow(panic-freedom) — the schedule only references registered elements
                if acked[i] {
                    continue;
                }
                trace.push(TraceEvent::TimerFired { t, element });
                if attempts[i] >= cfg.max_attempts {
                    trace.push(TraceEvent::GaveUp { t, element });
                    if applied[i] {
                        unconfirmed.push(element);
                    } else {
                        failed.push(element);
                    }
                    done = done.max(t);
                    continue;
                }
                let state = assignments[i].1;
                let msg = Message::SetState {
                    seq: i as u16,
                    element,
                    state,
                };
                let loss = faults.frame_loss(transport.loss_prob(), rng);
                let d = transport.deliver_with_loss(msg.wire_len(), cfg.distance_m, loss, rng);
                frames += 1;
                attempts[i] += 1;
                last_send[i] = t;
                if let Some(m) = metrics.as_deref_mut() {
                    m.frames_tx += 1;
                    m.retries += 1;
                    m.frame_latency.observe(d.latency_s);
                    if !d.delivered {
                        m.frames_lost += 1;
                    }
                }
                trace.push(TraceEvent::CommandSent {
                    t,
                    seq: i as u16,
                    element,
                    attempt: attempts[i] - 1,
                });
                push(
                    &mut queue,
                    &mut seqno,
                    t + d.latency_s,
                    Pending::CommandArrives {
                        element,
                        state,
                        delivered: d.delivered,
                    },
                );
                push(
                    &mut queue,
                    &mut seqno,
                    t + timeout_for(attempts[i], &rtt),
                    Pending::Timer { element },
                );
            }
        }
    }

    trace.sort_by(|a, b| a.time().total_cmp(&b.time()));
    let report = DesReport {
        trace,
        last_apply_s: last_apply,
        done_s: done,
        failed,
        unconfirmed,
        frames,
    };
    if let Some(m) = metrics {
        m.actuations += 1;
        m.completion.observe(report.done_s);
        m.failed_elements += report.failed.len() as u64;
        m.unconfirmed_elements += report.unconfirmed.len() as u64;
    }
    report
}

/// Runs the event simulation without fault injection or metrics — the
/// historical entry point, event-identical per seed with the default
/// [`BackoffConfig`].
pub fn simulate_actuation<R: Rng + ?Sized>(
    transport: &Transport,
    assignments: &[(u16, u8)],
    cfg: &DesConfig,
    rng: &mut R,
) -> DesReport {
    simulate_actuation_with(
        transport,
        assignments,
        cfg,
        &mut FaultPlan::none(),
        None,
        rng,
    )
}

/// [`simulate_actuation_with`] that additionally replays the DES trace into
/// a [`Tracer`](press_trace::Tracer) as structured events (`frame_tx` / `applied` / `ack_rx` /
/// `frame_lost` / `timer_fired` / `gave_up`), each stamped `t0_s` plus the
/// event's DES time so episode traces place the wire on the episode
/// timeline. The DES itself is untouched — the report is bit-identical to
/// the untraced run, and the replay happens after the time-ordered trace is
/// final, so event order matches the wire.
#[allow(clippy::too_many_arguments)]
pub fn simulate_actuation_traced<R: Rng + ?Sized, S: press_trace::TraceSink>(
    transport: &Transport,
    assignments: &[(u16, u8)],
    cfg: &DesConfig,
    faults: &mut FaultPlan,
    metrics: Option<&mut ControlMetrics>,
    tracer: &mut press_trace::Tracer<S>,
    t0_s: f64,
    rng: &mut R,
) -> DesReport {
    let report = simulate_actuation_with(transport, assignments, cfg, faults, metrics, rng);
    for ev in &report.trace {
        use press_trace::EventKind;
        let kind = match *ev {
            TraceEvent::CommandSent {
                element, attempt, ..
            } => EventKind::FrameTx {
                element,
                attempt: attempt as u32,
            },
            TraceEvent::Applied { element, state, .. } => EventKind::Applied { element, state },
            TraceEvent::AckReceived { element, .. } => EventKind::AckRx { element },
            TraceEvent::Lost { element, .. } => EventKind::FrameLost { element },
            TraceEvent::TimerFired { element, .. } => EventKind::TimerFired { element },
            TraceEvent::GaveUp { element, .. } => EventKind::GaveUp { element },
        };
        tracer.emit(t0_s + ev.time(), kind);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{ElementFaults, GilbertElliott};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn assignments(n: u16) -> Vec<(u16, u8)> {
        (0..n).map(|e| (e, 2)).collect()
    }

    #[test]
    fn traced_des_is_bit_identical_and_replays_the_trace() {
        use press_trace::{EventKind, MemorySink, Tracer};

        let a = assignments(32);
        let cfg = DesConfig::default();
        let bare = simulate_actuation_with(
            &Transport::ism(),
            &a,
            &cfg,
            &mut FaultPlan::bursty(GilbertElliott::interference()),
            None,
            &mut StdRng::seed_from_u64(31),
        );
        let mut tracer = Tracer::new(MemorySink::new());
        let traced = simulate_actuation_traced(
            &Transport::ism(),
            &a,
            &cfg,
            &mut FaultPlan::bursty(GilbertElliott::interference()),
            None,
            &mut tracer,
            2.0,
            &mut StdRng::seed_from_u64(31),
        );
        assert_eq!(traced, bare, "tracing must not perturb the DES");
        let events = &tracer.sink().events;
        assert_eq!(events.len(), bare.trace.len(), "one event per DES entry");
        // The replay preserves the DES's time order and offsets by t0.
        for (ev, des) in events.iter().zip(&bare.trace) {
            assert_eq!(ev.t_s, 2.0 + des.time());
        }
        let tx = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::FrameTx { .. }))
            .count();
        let acks = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::AckRx { .. }))
            .count();
        assert_eq!(tx + acks, bare.frames);
    }

    #[test]
    fn wired_batch_completes_quickly() {
        let mut rng = StdRng::seed_from_u64(1);
        let r = simulate_actuation(
            &Transport::wired(),
            &assignments(32),
            &DesConfig::default(),
            &mut rng,
        );
        assert!(r.complete());
        assert!(r.done_s < 10e-3, "done at {}", r.done_s);
        assert!(r.last_apply_s <= r.done_s);
        // One command + one ack per element, no retries on a clean wire.
        assert_eq!(r.frames, 64);
    }

    #[test]
    fn trace_is_time_ordered_and_consistent() {
        let mut rng = StdRng::seed_from_u64(2);
        let r = simulate_actuation(
            &Transport::ism(),
            &assignments(12),
            &DesConfig::default(),
            &mut rng,
        );
        for w in r.trace.windows(2) {
            assert!(w[0].time() <= w[1].time() + 1e-12);
        }
        // Every ack received must follow an application of that element.
        for (i, ev) in r.trace.iter().enumerate() {
            if let TraceEvent::AckReceived { element, .. } = ev {
                let applied_before = r.trace[..i]
                    .iter()
                    .any(|e| matches!(e, TraceEvent::Applied { element: el, .. } if el == element));
                assert!(applied_before, "ack without application for {element}");
            }
        }
    }

    #[test]
    fn lossy_transport_retransmits_on_timeout() {
        let mut rng = StdRng::seed_from_u64(3);
        let r = simulate_actuation(
            &Transport::ultrasound(),
            &assignments(20),
            &DesConfig {
                ack_timeout_s: 80e-3,
                max_attempts: 10,
                ..DesConfig::default()
            },
            &mut rng,
        );
        let timers = r
            .trace
            .iter()
            .filter(|e| matches!(e, TraceEvent::TimerFired { .. }))
            .count();
        assert!(timers > 0, "5% loss over 20 elements should fire timers");
        assert!(r.complete(), "failed: {:?}", r.failed);
    }

    #[test]
    fn attempt_budget_exhaustion_gives_up() {
        // A pathological transport that loses everything.
        let black_hole = Transport::IsmRadio {
            bitrate_bps: 250e3,
            loss_prob: 1.0,
            mac_latency_s: 1e-3,
        };
        let mut rng = StdRng::seed_from_u64(4);
        let r = simulate_actuation(
            &black_hole,
            &assignments(3),
            &DesConfig {
                max_attempts: 3,
                ack_timeout_s: 5e-3,
                ..DesConfig::default()
            },
            &mut rng,
        );
        assert_eq!(r.failed.len(), 3);
        assert!(!r.complete());
        // 3 attempts per element, no acks.
        assert_eq!(r.frames, 9);
        let gave_up = r
            .trace
            .iter()
            .filter(|e| matches!(e, TraceEvent::GaveUp { .. }))
            .count();
        assert_eq!(gave_up, 3);
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed| {
            simulate_actuation(
                &Transport::ism(),
                &assignments(10),
                &DesConfig::default(),
                &mut StdRng::seed_from_u64(seed),
            )
        };
        let a = run(7);
        let b = run(7);
        assert_eq!(a.frames, b.frames);
        assert_eq!(a.done_s, b.done_s);
        assert_eq!(a.trace.len(), b.trace.len());
    }

    #[test]
    fn empty_batch_trivially_done() {
        let mut rng = StdRng::seed_from_u64(5);
        let r = simulate_actuation(&Transport::wired(), &[], &DesConfig::default(), &mut rng);
        assert!(r.complete());
        assert_eq!(r.frames, 0);
        assert_eq!(r.done_s, 0.0);
    }

    #[test]
    fn des_and_round_model_agree_on_scale() {
        // The DES (unicast worst case) must be within an order of magnitude
        // of the round-based broadcast model for the same job.
        let mut rng = StdRng::seed_from_u64(6);
        let des = simulate_actuation(
            &Transport::ism(),
            &assignments(64),
            &DesConfig::default(),
            &mut rng,
        );
        let mut rng2 = StdRng::seed_from_u64(6);
        let rounds = crate::actuation::actuate(
            &Transport::ism(),
            &assignments(64),
            15.0,
            crate::actuation::AckPolicy::PerElement { max_retries: 6 },
            &mut rng2,
        );
        assert!(des.complete() && rounds.complete());
        let ratio = des.done_s / rounds.completion_s;
        assert!(
            (0.1..50.0).contains(&ratio),
            "DES {} vs rounds {}",
            des.done_s,
            rounds.completion_s
        );
    }

    #[test]
    fn duplicate_commands_apply_idempotently() {
        // A slow transport with a short timeout: retransmissions regularly
        // land while the first ack is still in flight. Regression for the
        // duplicate-apply bug: each element must emit exactly one Applied
        // event, and last_apply_s must not be inflated past the first
        // application.
        let mut rng = StdRng::seed_from_u64(8);
        let r = simulate_actuation(
            &Transport::ultrasound(),
            &assignments(6),
            &DesConfig {
                // Far below the ultrasound round trip (~60+ ms): every
                // element gets retransmitted at least once.
                ack_timeout_s: 10e-3,
                max_attempts: 10,
                ..DesConfig::default()
            },
            &mut rng,
        );
        let retransmissions = r
            .trace
            .iter()
            .filter(|e| matches!(e, TraceEvent::CommandSent { attempt, .. } if *attempt > 0))
            .count();
        assert!(retransmissions > 0, "timeout must be shorter than the RTT");
        for (e, _) in assignments(6) {
            let applies = r
                .trace
                .iter()
                .filter(|ev| matches!(ev, TraceEvent::Applied { element, .. } if *element == e))
                .count();
            assert_eq!(applies, 1, "element {e} applied {applies} times");
        }
        // The first application of the last element bounds last_apply_s;
        // every Applied trace time must be <= it.
        for ev in &r.trace {
            if let TraceEvent::Applied { t, .. } = ev {
                assert!(*t <= r.last_apply_s + 1e-12);
            }
        }
    }

    #[test]
    fn applied_but_unacked_elements_are_unconfirmed_not_failed() {
        // Commands get through (wired), but we choke acks by injecting a
        // burst chain that is in a permanent burst with 100% loss after the
        // initial good state... simplest deterministic construction: a chain
        // that always loses (loss_good = loss_bad = 1.0) applied to *every*
        // frame would also kill commands. Instead: heavy symmetric loss and
        // a tiny attempt budget reliably produces both populations.
        let lossy = Transport::IsmRadio {
            bitrate_bps: 250e3,
            loss_prob: 0.4,
            mac_latency_s: 1e-3,
        };
        let mut rng = StdRng::seed_from_u64(21);
        let r = simulate_actuation(
            &lossy,
            &assignments(40),
            &DesConfig {
                max_attempts: 2,
                ack_timeout_s: 15e-3,
                ..DesConfig::default()
            },
            &mut rng,
        );
        assert!(
            !r.unconfirmed.is_empty(),
            "40% loss, 2 attempts: some applied-unacked"
        );
        assert!(
            !r.failed.is_empty(),
            "40% loss, 2 attempts: some never applied"
        );
        // Unconfirmed elements have an Applied trace; failed ones do not.
        for &e in &r.unconfirmed {
            assert!(r
                .trace
                .iter()
                .any(|ev| matches!(ev, TraceEvent::Applied { element, .. } if *element == e)));
        }
        for &e in &r.failed {
            assert!(!r
                .trace
                .iter()
                .any(|ev| matches!(ev, TraceEvent::Applied { element, .. } if *element == e)));
        }
    }

    #[test]
    fn dead_elements_never_apply_stuck_elements_apply_stuck_state() {
        let mut faults = FaultPlan::broken(ElementFaults::none().dead(1).stuck(2, 0));
        let mut rng = StdRng::seed_from_u64(9);
        let r = simulate_actuation_with(
            &Transport::wired(),
            &assignments(4),
            &DesConfig::default(),
            &mut faults,
            None,
            &mut rng,
        );
        assert_eq!(r.failed, vec![1]);
        // The stuck element acked; its Applied trace records the stuck
        // hardware state, not the commanded one.
        let stuck_apply = r
            .trace
            .iter()
            .find_map(|ev| match ev {
                TraceEvent::Applied {
                    element: 2, state, ..
                } => Some(*state),
                _ => None,
            })
            .expect("stuck element applies (its stuck state)");
        assert_eq!(stuck_apply, 0, "commanded 2, hardware frozen at 0");
    }

    #[test]
    fn exponential_backoff_spaces_out_retransmissions() {
        let black_hole = Transport::IsmRadio {
            bitrate_bps: 250e3,
            loss_prob: 1.0,
            mac_latency_s: 1e-3,
        };
        let run = |backoff: BackoffConfig| {
            let mut rng = StdRng::seed_from_u64(10);
            simulate_actuation(
                &black_hole,
                &assignments(1),
                &DesConfig {
                    max_attempts: 5,
                    ack_timeout_s: 5e-3,
                    backoff,
                    ..DesConfig::default()
                },
                &mut rng,
            )
        };
        let fixed = run(BackoffConfig::default());
        let expo = run(BackoffConfig {
            multiplier: 2.0,
            ..BackoffConfig::default()
        });
        // Fixed: timers at 5, 10, 15, 20, 25 ms. Exponential: 5, 15, 35, 75,
        // 155 ms. Giving up happens at the last timer.
        assert!(
            (fixed.done_s - 25e-3).abs() < 1e-9,
            "fixed done {}",
            fixed.done_s
        );
        assert!(
            (expo.done_s - 155e-3).abs() < 1e-9,
            "expo done {}",
            expo.done_s
        );
    }

    #[test]
    fn rtt_adaptive_timeout_beats_misconfigured_static_one() {
        // An operator guessed 200 ms for a wired bus whose RTT is ~100 µs.
        // RTT tracking should recover: after the first acks arrive, timers
        // shrink to the real round trip and lost elements retry quickly.
        let lossy_wire = Transport::WiredBus {
            bitrate_bps: 1e6,
            loss_prob: 0.3,
        };
        let cfg_static = DesConfig {
            ack_timeout_s: 200e-3,
            max_attempts: 8,
            ..DesConfig::default()
        };
        let cfg_adaptive = DesConfig {
            backoff: BackoffConfig::adaptive(),
            ..cfg_static
        };
        let mut a = StdRng::seed_from_u64(11);
        let slow = simulate_actuation(&lossy_wire, &assignments(32), &cfg_static, &mut a);
        let mut b = StdRng::seed_from_u64(11);
        let fast = simulate_actuation(&lossy_wire, &assignments(32), &cfg_adaptive, &mut b);
        assert!(slow.complete() && fast.complete());
        // Every retry beyond the first one saves ~200 ms - RTT; elements lost
        // once still pay the initial (static) timer, so the overall win is
        // bounded by the deepest retry chain, not a fixed factor.
        assert!(
            fast.done_s < 0.75 * slow.done_s,
            "adaptive {} vs static {}",
            fast.done_s,
            slow.done_s
        );
    }

    #[test]
    fn burst_loss_forces_more_retransmissions() {
        let count_retx = |faults: &mut FaultPlan, seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            let r = simulate_actuation_with(
                &Transport::ism(),
                &assignments(48),
                &DesConfig {
                    max_attempts: 12,
                    ..DesConfig::default()
                },
                faults,
                None,
                &mut rng,
            );
            r.trace
                .iter()
                .filter(|e| matches!(e, TraceEvent::CommandSent { attempt, .. } if *attempt > 0))
                .count()
        };
        let clean = count_retx(&mut FaultPlan::none(), 13);
        // A fast-cycling chain (enter 30%, exit 15% per frame, 95% loss in
        // burst) so bursts reliably occur within one short actuation.
        let chain = GilbertElliott::new(0.3, 0.15, 0.02, 0.95);
        let bursty = count_retx(&mut FaultPlan::bursty(chain), 13);
        assert!(
            bursty > clean + 10,
            "jammed bursts must force retransmissions: {bursty} vs {clean}"
        );
    }

    #[test]
    fn metrics_do_not_perturb_the_simulation() {
        let mut metrics = ControlMetrics::new();
        let mut faults = FaultPlan::none();
        let mut a = StdRng::seed_from_u64(14);
        let instrumented = simulate_actuation_with(
            &Transport::ism(),
            &assignments(24),
            &DesConfig::default(),
            &mut faults,
            Some(&mut metrics),
            &mut a,
        );
        let mut b = StdRng::seed_from_u64(14);
        let bare = simulate_actuation(
            &Transport::ism(),
            &assignments(24),
            &DesConfig::default(),
            &mut b,
        );
        assert_eq!(instrumented.done_s, bare.done_s);
        assert_eq!(instrumented.frames, bare.frames);
        assert_eq!(metrics.actuations, 1);
        assert_eq!(
            metrics.frames_tx + metrics.acks_rx + metrics.acks_lost,
            instrumented.frames as u64,
            "commands + delivered acks + lost acks account for every frame"
        );
    }
}
