//! Discrete-event simulation of the control plane.
//!
//! The round-based [`actuate`](crate::actuation::actuate) answers "how long
//! does a batch take"; this simulator answers the finer-grained questions a
//! §4.2 control-plane design raises: how do ack timeouts interact with
//! transport latency, what does the wire look like under retransmission
//! pressure, and when do commands for the *next* reconfiguration overtake
//! stragglers from the last one. Events are processed from a time-ordered
//! queue; every transmission, delivery, loss, ack and timeout is traced.

use crate::message::Message;
use crate::transport::Transport;
use rand::Rng;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A traced control-plane event.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// Controller put a command frame on the medium.
    CommandSent {
        /// Time, seconds.
        t: f64,
        /// Sequence number.
        seq: u16,
        /// Addressed element.
        element: u16,
        /// Attempt number (0 = first transmission).
        attempt: usize,
    },
    /// An element applied its state and acked.
    Applied {
        /// Time, seconds.
        t: f64,
        /// Element id.
        element: u16,
        /// State applied.
        state: u8,
    },
    /// The controller received an ack.
    AckReceived {
        /// Time, seconds.
        t: f64,
        /// Element id.
        element: u16,
    },
    /// A frame (command or ack) was lost on the medium.
    Lost {
        /// Time, seconds.
        t: f64,
        /// Element id.
        element: u16,
    },
    /// A retransmission timer fired.
    TimerFired {
        /// Time, seconds.
        t: f64,
        /// Element id.
        element: u16,
    },
    /// The controller gave up on an element.
    GaveUp {
        /// Time, seconds.
        t: f64,
        /// Element id.
        element: u16,
    },
}

impl TraceEvent {
    /// The event's timestamp.
    pub fn time(&self) -> f64 {
        match self {
            TraceEvent::CommandSent { t, .. }
            | TraceEvent::Applied { t, .. }
            | TraceEvent::AckReceived { t, .. }
            | TraceEvent::Lost { t, .. }
            | TraceEvent::TimerFired { t, .. }
            | TraceEvent::GaveUp { t, .. } => *t,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Pending {
    CommandArrives { element: u16, state: u8, delivered: bool },
    AckArrives { element: u16, delivered: bool },
    Timer { element: u16 },
}

#[derive(Debug, Clone, Copy)]
struct QueuedEvent {
    t: f64,
    // Tie-break for determinism when times collide.
    seq: u64,
    what: Pending,
}

impl PartialEq for QueuedEvent {
    fn eq(&self, other: &Self) -> bool {
        self.t == other.t && self.seq == other.seq
    }
}
impl Eq for QueuedEvent {}
impl PartialOrd for QueuedEvent {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueuedEvent {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: invert for earliest-first.
        other
            .t
            .total_cmp(&self.t)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Simulator parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DesConfig {
    /// Ack timeout before retransmission, seconds.
    pub ack_timeout_s: f64,
    /// Maximum transmissions per element (first + retries).
    pub max_attempts: usize,
    /// Worst-case controller-element distance, meters.
    pub distance_m: f64,
    /// Element switch settling time before the ack goes out, seconds.
    pub settle_s: f64,
}

impl Default for DesConfig {
    fn default() -> Self {
        DesConfig {
            ack_timeout_s: 20e-3,
            max_attempts: 6,
            distance_m: 15.0,
            settle_s: 2e-6,
        }
    }
}

/// Simulation outcome.
#[derive(Debug, Clone)]
pub struct DesReport {
    /// Every event, time-ordered.
    pub trace: Vec<TraceEvent>,
    /// Time of the last element's state application (not ack), seconds.
    pub last_apply_s: f64,
    /// Time the controller confirmed the final ack (or gave up), seconds.
    pub done_s: f64,
    /// Elements the controller gave up on.
    pub failed: Vec<u16>,
    /// Total frames transmitted (commands + acks).
    pub frames: usize,
}

impl DesReport {
    /// True when every element confirmed.
    pub fn complete(&self) -> bool {
        self.failed.is_empty()
    }
}

/// Runs the event simulation for one batch actuation: each assignment is a
/// unicast command with an ack timer; losses trigger retransmission until
/// the attempt budget runs out. (Unicast per element models the worst case
/// of the broadcast schemes in [`actuate`](crate::actuation::actuate).)
pub fn simulate_actuation<R: Rng + ?Sized>(
    transport: &Transport,
    assignments: &[(u16, u8)],
    cfg: &DesConfig,
    rng: &mut R,
) -> DesReport {
    let mut queue: BinaryHeap<QueuedEvent> = BinaryHeap::new();
    let mut trace = Vec::new();
    let mut seqno: u64 = 0;
    let mut frames = 0usize;

    let n = assignments.len();
    let mut acked = vec![false; n];
    let mut attempts = vec![0usize; n];
    let mut failed = Vec::new();
    let index_of = |element: u16| assignments.iter().position(|&(e, _)| e == element);

    // Helper to enqueue.
    let push = |queue: &mut BinaryHeap<QueuedEvent>, seqno: &mut u64, t: f64, what: Pending| {
        *seqno += 1;
        queue.push(QueuedEvent { t, seq: *seqno, what });
    };

    // Initial transmissions: serialized back-to-back on the shared medium.
    let mut wire_free_at = 0.0f64;
    for (i, &(element, state)) in assignments.iter().enumerate() {
        let msg = Message::SetState { seq: i as u16, element, state };
        let d = transport.deliver(msg.wire_len(), cfg.distance_m, rng);
        frames += 1;
        trace.push(TraceEvent::CommandSent { t: wire_free_at, seq: i as u16, element, attempt: 0 });
        attempts[i] = 1;
        push(
            &mut queue,
            &mut seqno,
            wire_free_at + d.latency_s,
            Pending::CommandArrives { element, state, delivered: d.delivered },
        );
        push(&mut queue, &mut seqno, wire_free_at + cfg.ack_timeout_s, Pending::Timer { element });
        // Serialization occupies the wire for the latency's serialization part;
        // approximate with the full one-way latency for simplicity.
        wire_free_at += msg.wire_len() as f64 * 8.0 / bitrate(transport);
    }

    let mut last_apply = 0.0f64;
    let mut done = 0.0f64;

    while let Some(QueuedEvent { t, what, .. }) = queue.pop() {
        match what {
            Pending::CommandArrives { element, state, delivered } => {
                if !delivered {
                    trace.push(TraceEvent::Lost { t, element });
                    continue;
                }
                let i = index_of(element).expect("known element");
                if acked[i] {
                    continue; // duplicate of an already-confirmed command
                }
                trace.push(TraceEvent::Applied { t: t + cfg.settle_s, element, state });
                last_apply = last_apply.max(t + cfg.settle_s);
                let ack = Message::Ack { seq: element };
                let d = transport.deliver(ack.wire_len(), cfg.distance_m, rng);
                frames += 1;
                if d.delivered {
                    push(
                        &mut queue,
                        &mut seqno,
                        t + cfg.settle_s + d.latency_s,
                        Pending::AckArrives { element, delivered: true },
                    );
                } else {
                    trace.push(TraceEvent::Lost { t: t + cfg.settle_s, element });
                }
            }
            Pending::AckArrives { element, .. } => {
                let i = index_of(element).expect("known element");
                if !acked[i] {
                    acked[i] = true;
                    trace.push(TraceEvent::AckReceived { t, element });
                    done = done.max(t);
                }
            }
            Pending::Timer { element } => {
                let i = index_of(element).expect("known element");
                if acked[i] {
                    continue;
                }
                trace.push(TraceEvent::TimerFired { t, element });
                if attempts[i] >= cfg.max_attempts {
                    trace.push(TraceEvent::GaveUp { t, element });
                    failed.push(element);
                    done = done.max(t);
                    continue;
                }
                let state = assignments[i].1;
                let msg = Message::SetState { seq: i as u16, element, state };
                let d = transport.deliver(msg.wire_len(), cfg.distance_m, rng);
                frames += 1;
                attempts[i] += 1;
                trace.push(TraceEvent::CommandSent {
                    t,
                    seq: i as u16,
                    element,
                    attempt: attempts[i] - 1,
                });
                push(
                    &mut queue,
                    &mut seqno,
                    t + d.latency_s,
                    Pending::CommandArrives { element, state, delivered: d.delivered },
                );
                push(&mut queue, &mut seqno, t + cfg.ack_timeout_s, Pending::Timer { element });
            }
        }
    }

    trace.sort_by(|a, b| a.time().total_cmp(&b.time()));
    DesReport {
        trace,
        last_apply_s: last_apply,
        done_s: done,
        failed,
        frames,
    }
}

fn bitrate(t: &Transport) -> f64 {
    match t {
        Transport::WiredBus { bitrate_bps, .. } => *bitrate_bps,
        Transport::IsmRadio { bitrate_bps, .. } => *bitrate_bps,
        Transport::Ultrasound { bitrate_bps, .. } => *bitrate_bps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn assignments(n: u16) -> Vec<(u16, u8)> {
        (0..n).map(|e| (e, 2)).collect()
    }

    #[test]
    fn wired_batch_completes_quickly() {
        let mut rng = StdRng::seed_from_u64(1);
        let r = simulate_actuation(
            &Transport::wired(),
            &assignments(32),
            &DesConfig::default(),
            &mut rng,
        );
        assert!(r.complete());
        assert!(r.done_s < 10e-3, "done at {}", r.done_s);
        assert!(r.last_apply_s <= r.done_s);
        // One command + one ack per element, no retries on a clean wire.
        assert_eq!(r.frames, 64);
    }

    #[test]
    fn trace_is_time_ordered_and_consistent() {
        let mut rng = StdRng::seed_from_u64(2);
        let r = simulate_actuation(
            &Transport::ism(),
            &assignments(12),
            &DesConfig::default(),
            &mut rng,
        );
        for w in r.trace.windows(2) {
            assert!(w[0].time() <= w[1].time() + 1e-12);
        }
        // Every ack received must follow an application of that element.
        for (i, ev) in r.trace.iter().enumerate() {
            if let TraceEvent::AckReceived { element, .. } = ev {
                let applied_before = r.trace[..i]
                    .iter()
                    .any(|e| matches!(e, TraceEvent::Applied { element: el, .. } if el == element));
                assert!(applied_before, "ack without application for {element}");
            }
        }
    }

    #[test]
    fn lossy_transport_retransmits_on_timeout() {
        let mut rng = StdRng::seed_from_u64(3);
        let r = simulate_actuation(
            &Transport::ultrasound(),
            &assignments(20),
            &DesConfig {
                ack_timeout_s: 80e-3,
                max_attempts: 10,
                ..DesConfig::default()
            },
            &mut rng,
        );
        let timers = r
            .trace
            .iter()
            .filter(|e| matches!(e, TraceEvent::TimerFired { .. }))
            .count();
        assert!(timers > 0, "5% loss over 20 elements should fire timers");
        assert!(r.complete(), "failed: {:?}", r.failed);
    }

    #[test]
    fn attempt_budget_exhaustion_gives_up() {
        // A pathological transport that loses everything.
        let black_hole = Transport::IsmRadio {
            bitrate_bps: 250e3,
            loss_prob: 1.0,
            mac_latency_s: 1e-3,
        };
        let mut rng = StdRng::seed_from_u64(4);
        let r = simulate_actuation(
            &black_hole,
            &assignments(3),
            &DesConfig {
                max_attempts: 3,
                ack_timeout_s: 5e-3,
                ..DesConfig::default()
            },
            &mut rng,
        );
        assert_eq!(r.failed.len(), 3);
        assert!(!r.complete());
        // 3 attempts per element, no acks.
        assert_eq!(r.frames, 9);
        let gave_up = r
            .trace
            .iter()
            .filter(|e| matches!(e, TraceEvent::GaveUp { .. }))
            .count();
        assert_eq!(gave_up, 3);
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed| {
            simulate_actuation(
                &Transport::ism(),
                &assignments(10),
                &DesConfig::default(),
                &mut StdRng::seed_from_u64(seed),
            )
        };
        let a = run(7);
        let b = run(7);
        assert_eq!(a.frames, b.frames);
        assert_eq!(a.done_s, b.done_s);
        assert_eq!(a.trace.len(), b.trace.len());
    }

    #[test]
    fn empty_batch_trivially_done() {
        let mut rng = StdRng::seed_from_u64(5);
        let r = simulate_actuation(&Transport::wired(), &[], &DesConfig::default(), &mut rng);
        assert!(r.complete());
        assert_eq!(r.frames, 0);
        assert_eq!(r.done_s, 0.0);
    }

    #[test]
    fn des_and_round_model_agree_on_scale() {
        // The DES (unicast worst case) must be within an order of magnitude
        // of the round-based broadcast model for the same job.
        let mut rng = StdRng::seed_from_u64(6);
        let des = simulate_actuation(
            &Transport::ism(),
            &assignments(64),
            &DesConfig::default(),
            &mut rng,
        );
        let mut rng2 = StdRng::seed_from_u64(6);
        let rounds = crate::actuation::actuate(
            &Transport::ism(),
            &assignments(64),
            15.0,
            crate::actuation::AckPolicy::PerElement { max_retries: 6 },
            &mut rng2,
        );
        assert!(des.complete() && rounds.complete());
        let ratio = des.done_s / rounds.completion_s;
        assert!((0.1..50.0).contains(&ratio), "DES {} vs rounds {}", des.done_s, rounds.completion_s);
    }
}
