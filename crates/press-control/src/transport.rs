//! Control-plane transports: wired, low-rate ISM wireless, ultrasound.
//!
//! §4.2 of the paper: "Likely wireless control plane candidates are
//! low-frequency, low-rate bands (perhaps ISM or whitespace frequencies)
//! that penetrate walls well and travel long distances. Other candidates
//! include ultrasound in order to easily scope the control to a single
//! indoor room, as well as wires between some subsets of the array
//! elements." Each candidate becomes a delivery model: serialization at a
//! bit rate, a propagation delay, a loss probability, and whether delivery
//! is broadcast (one transmission reaches every element) or unicast.

use press_propagation::fading::gaussian;
use rand::Rng;

/// Outcome of attempting to deliver one frame.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Delivery {
    /// Whether the frame arrived intact.
    pub delivered: bool,
    /// One-way latency (serialization + propagation + stack jitter), seconds.
    /// Meaningful even for lost frames (the airtime was still spent).
    pub latency_s: f64,
}

/// A control-plane transport model.
#[derive(Debug, Clone, PartialEq)]
pub enum Transport {
    /// A shared wire (RS-485-class bus embedded in the wall).
    WiredBus {
        /// Serialization rate, bits/s.
        bitrate_bps: f64,
        /// Per-frame loss probability (connector/EMI faults; tiny).
        loss_prob: f64,
    },
    /// A sub-GHz low-rate ISM radio channel (802.15.4-class).
    IsmRadio {
        /// Serialization rate, bits/s.
        bitrate_bps: f64,
        /// Per-frame loss probability.
        loss_prob: f64,
        /// Mean MAC/backoff latency added per frame, seconds.
        mac_latency_s: f64,
    },
    /// In-room ultrasound signalling.
    Ultrasound {
        /// Serialization rate, bits/s (acoustic links are slow).
        bitrate_bps: f64,
        /// Per-frame loss probability.
        loss_prob: f64,
    },
}

impl Transport {
    /// A 1 Mb/s wall bus with negligible loss.
    pub fn wired() -> Transport {
        Transport::WiredBus {
            bitrate_bps: 1e6,
            loss_prob: 1e-6,
        }
    }

    /// A 250 kb/s 802.15.4-class control radio with 2% loss and ~2 ms MAC.
    pub fn ism() -> Transport {
        Transport::IsmRadio {
            bitrate_bps: 250e3,
            loss_prob: 0.02,
            mac_latency_s: 2e-3,
        }
    }

    /// A 4 kb/s ultrasound channel with 5% loss.
    pub fn ultrasound() -> Transport {
        Transport::Ultrasound {
            bitrate_bps: 4e3,
            loss_prob: 0.05,
        }
    }

    /// Whether one transmission reaches all elements at once.
    pub fn is_broadcast(&self) -> bool {
        match self {
            Transport::WiredBus { .. } => true,
            Transport::IsmRadio { .. } => true,
            Transport::Ultrasound { .. } => true,
        }
    }

    /// Propagation speed, m/s.
    pub fn propagation_speed(&self) -> f64 {
        match self {
            // Signal velocity in copper ~0.66c.
            Transport::WiredBus { .. } => 2.0e8,
            Transport::IsmRadio { .. } => 299_792_458.0,
            Transport::Ultrasound { .. } => 343.0,
        }
    }

    /// The transport's nominal (steady-state) per-frame loss probability.
    pub fn loss_prob(&self) -> f64 {
        match self {
            Transport::WiredBus { loss_prob, .. }
            | Transport::IsmRadio { loss_prob, .. }
            | Transport::Ultrasound { loss_prob, .. } => *loss_prob,
        }
    }

    /// Serialization rate, bits/s.
    pub fn bitrate_bps(&self) -> f64 {
        match self {
            Transport::WiredBus { bitrate_bps, .. }
            | Transport::IsmRadio { bitrate_bps, .. }
            | Transport::Ultrasound { bitrate_bps, .. } => *bitrate_bps,
        }
    }

    /// Attempts delivery of a frame of `frame_len` bytes over `distance_m`.
    pub fn deliver<R: Rng + ?Sized>(
        &self,
        frame_len: usize,
        distance_m: f64,
        rng: &mut R,
    ) -> Delivery {
        self.deliver_with_loss(frame_len, distance_m, self.loss_prob(), rng)
    }

    /// Like [`deliver`](Self::deliver) but with the loss probability
    /// overridden — the hook fault injectors (burst-loss processes, jammed
    /// rooms) use to drive the channel into a different loss regime while
    /// keeping the transport's latency model. With `loss ==`
    /// [`loss_prob`](Self::loss_prob) the RNG draw sequence is identical to
    /// `deliver`, so un-faulted runs reproduce bit-for-bit.
    pub fn deliver_with_loss<R: Rng + ?Sized>(
        &self,
        frame_len: usize,
        distance_m: f64,
        loss: f64,
        rng: &mut R,
    ) -> Delivery {
        let bits = (frame_len * 8) as f64;
        let extra = match self {
            Transport::WiredBus { .. } | Transport::Ultrasound { .. } => 0.0,
            Transport::IsmRadio { mac_latency_s, .. } => {
                // Exponential-ish MAC latency via |gaussian| around the mean.
                (1.0 + 0.5 * gaussian(rng).abs()) * mac_latency_s
            }
        };
        let latency = bits / self.bitrate_bps() + distance_m / self.propagation_speed() + extra;
        Delivery {
            delivered: rng.gen::<f64>() >= loss,
            latency_s: latency,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn wired_is_fast_and_reliable() {
        let mut rng = StdRng::seed_from_u64(1);
        let d = Transport::wired().deliver(8, 10.0, &mut rng);
        assert!(d.delivered);
        // 64 bits at 1 Mb/s = 64 us + negligible propagation.
        assert!((d.latency_s - 64e-6).abs() < 1e-6, "{}", d.latency_s);
    }

    #[test]
    fn ultrasound_dominated_by_acoustics() {
        let mut rng = StdRng::seed_from_u64(2);
        let d = Transport::ultrasound().deliver(8, 6.0, &mut rng);
        // 64 bits at 4 kb/s = 16 ms serialization + 17.5 ms propagation.
        assert!(d.latency_s > 0.03, "{}", d.latency_s);
    }

    #[test]
    fn ism_slower_than_wire_faster_than_sound() {
        let mut rng = StdRng::seed_from_u64(3);
        let wire = Transport::wired().deliver(8, 6.0, &mut rng).latency_s;
        let ism = Transport::ism().deliver(8, 6.0, &mut rng).latency_s;
        let sound = Transport::ultrasound().deliver(8, 6.0, &mut rng).latency_s;
        assert!(wire < ism && ism < sound, "{wire} {ism} {sound}");
    }

    #[test]
    fn loss_rate_statistically_matches() {
        let t = Transport::ism();
        let mut rng = StdRng::seed_from_u64(4);
        let n = 20_000;
        let lost = (0..n)
            .filter(|_| !t.deliver(8, 5.0, &mut rng).delivered)
            .count();
        let rate = lost as f64 / n as f64;
        assert!((rate - 0.02).abs() < 0.005, "loss rate {rate}");
    }

    #[test]
    fn latency_scales_with_frame_length() {
        let t = Transport::ultrasound();
        let mut rng = StdRng::seed_from_u64(5);
        let short = t.deliver(8, 1.0, &mut rng).latency_s;
        let long = t.deliver(80, 1.0, &mut rng).latency_s;
        assert!((long - short - 72.0 * 8.0 / 4e3).abs() < 1e-9);
    }

    #[test]
    fn loss_override_preserves_draw_sequence() {
        // deliver() and deliver_with_loss(nominal) must consume the same RNG
        // draws and produce the same outcome — fault-free fault injection is
        // a no-op.
        for t in [
            Transport::wired(),
            Transport::ism(),
            Transport::ultrasound(),
        ] {
            let mut a = StdRng::seed_from_u64(9);
            let mut b = StdRng::seed_from_u64(9);
            for _ in 0..50 {
                let da = t.deliver(8, 7.0, &mut a);
                let db = t.deliver_with_loss(8, 7.0, t.loss_prob(), &mut b);
                assert_eq!(da, db);
            }
        }
    }

    #[test]
    fn loss_override_changes_regime() {
        let t = Transport::wired();
        let mut rng = StdRng::seed_from_u64(10);
        let lost = (0..1000)
            .filter(|_| !t.deliver_with_loss(8, 5.0, 1.0, &mut rng).delivered)
            .count();
        assert_eq!(lost, 1000, "loss=1.0 must drop everything");
    }

    #[test]
    fn all_transports_broadcast() {
        assert!(Transport::wired().is_broadcast());
        assert!(Transport::ism().is_broadcast());
        assert!(Transport::ultrasound().is_broadcast());
    }
}
