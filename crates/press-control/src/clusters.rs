//! Hybrid control topologies: wireless cluster heads, wired element groups.
//!
//! §4.2 of the paper lists "wires between some subsets of the array
//! elements" among the control-plane candidates. The natural hybrid is
//! clusters: a low-rate wireless hop reaches each cluster's head, and a
//! short wired bus fans the command out within the cluster — wiring an
//! entire building is impractical, but wiring the elements inside one wall
//! panel is trivial. This module computes actuation latency and message
//! cost across the cluster-size spectrum, from fully wireless (cluster
//! size 1) to fully wired (one cluster).

use crate::actuation::{actuate, AckPolicy, ActuationReport};
use crate::transport::Transport;
use rand::Rng;

/// A hybrid clustered control plane.
#[derive(Debug, Clone)]
pub struct ClusteredControl {
    /// Transport from the controller to the cluster heads.
    pub backbone: Transport,
    /// Transport within each cluster (head to members).
    pub local: Transport,
    /// Elements per cluster.
    pub cluster_size: usize,
    /// Controller → head worst-case range, meters.
    pub backbone_range_m: f64,
    /// Head → member worst-case range, meters (one wall panel).
    pub local_range_m: f64,
}

impl ClusteredControl {
    /// The natural hybrid: ISM radio to the heads, wired panel buses inside.
    pub fn ism_heads_wired_panels(cluster_size: usize) -> ClusteredControl {
        ClusteredControl {
            backbone: Transport::ism(),
            local: Transport::wired(),
            cluster_size: cluster_size.max(1),
            backbone_range_m: 20.0,
            local_range_m: 2.0,
        }
    }

    /// Actuates `assignments` across the clustered topology: the backbone
    /// delivers each cluster's batch to its head (acked, retried), then all
    /// cluster buses run in parallel. Returns the end-to-end report with
    /// completion = slowest backbone delivery + slowest local fan-out.
    pub fn actuate<R: Rng + ?Sized>(
        &self,
        assignments: &[(u16, u8)],
        rng: &mut R,
    ) -> ActuationReport {
        if assignments.is_empty() {
            return ActuationReport {
                completion_s: 0.0,
                frames_sent: 0,
                failed: Vec::new(),
                unconfirmed: Vec::new(),
                retry_rounds: 0,
            };
        }
        let mut total_frames = 0usize;
        let mut failed = Vec::new();
        let mut unconfirmed = Vec::new();
        let mut backbone_worst = 0.0f64;
        let mut local_worst = 0.0f64;
        let mut retry_rounds = 0usize;

        for chunk in assignments.chunks(self.cluster_size) {
            // One backbone message per cluster head carrying the sub-batch.
            let head: Vec<(u16, u8)> = vec![chunk[0]];
            let backbone_report = actuate(
                &self.backbone,
                &head,
                self.backbone_range_m,
                AckPolicy::PerElement { max_retries: 8 },
                rng,
            );
            total_frames += backbone_report.frames_sent;
            retry_rounds = retry_rounds.max(backbone_report.retry_rounds);
            if !backbone_report.complete() {
                // The whole cluster is unreachable.
                failed.extend(chunk.iter().map(|&(e, _)| e));
                continue;
            }
            backbone_worst = backbone_worst.max(backbone_report.completion_s);

            // Local wired fan-out inside the cluster (runs after its head
            // got the batch; clusters run in parallel with each other).
            let local_report = actuate(
                &self.local,
                chunk,
                self.local_range_m,
                AckPolicy::PerElement { max_retries: 4 },
                rng,
            );
            total_frames += local_report.frames_sent;
            retry_rounds = retry_rounds.max(local_report.retry_rounds);
            failed.extend(local_report.failed.iter());
            unconfirmed.extend(local_report.unconfirmed.iter());
            local_worst = local_worst.max(local_report.completion_s);
        }

        ActuationReport {
            completion_s: backbone_worst + local_worst,
            frames_sent: total_frames,
            failed,
            unconfirmed,
            retry_rounds,
        }
    }

    /// Number of backbone endpoints (cluster heads) this topology needs for
    /// `n` elements — the wiring cost driver.
    pub fn n_heads(&self, n_elements: usize) -> usize {
        n_elements.div_ceil(self.cluster_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn assignments(n: u16) -> Vec<(u16, u8)> {
        (0..n).map(|e| (e, 1)).collect()
    }

    #[test]
    fn clustering_reduces_backbone_endpoints() {
        let c = ClusteredControl::ism_heads_wired_panels(16);
        assert_eq!(c.n_heads(256), 16);
        assert_eq!(c.n_heads(257), 17);
        let flat = ClusteredControl::ism_heads_wired_panels(1);
        assert_eq!(flat.n_heads(256), 256);
    }

    #[test]
    fn clustered_actuation_completes() {
        let c = ClusteredControl::ism_heads_wired_panels(16);
        let mut rng = StdRng::seed_from_u64(1);
        let r = c.actuate(&assignments(128), &mut rng);
        assert!(r.complete(), "failed: {:?}", r.failed);
        assert!(r.completion_s > 0.0);
    }

    #[test]
    fn bigger_clusters_fewer_backbone_messages() {
        let mut rng = StdRng::seed_from_u64(2);
        let small =
            ClusteredControl::ism_heads_wired_panels(4).actuate(&assignments(128), &mut rng);
        let mut rng = StdRng::seed_from_u64(2);
        let large =
            ClusteredControl::ism_heads_wired_panels(32).actuate(&assignments(128), &mut rng);
        assert!(
            large.frames_sent < small.frames_sent,
            "large {} vs small {}",
            large.frames_sent,
            small.frames_sent
        );
    }

    #[test]
    fn hybrid_beats_fully_wireless_on_big_arrays() {
        // 512 elements: per-element ISM unicast vs 32-element wired panels.
        let mut rng = StdRng::seed_from_u64(3);
        let wireless = crate::actuation::actuate(
            &Transport::ism(),
            &assignments(512),
            20.0,
            AckPolicy::PerElement { max_retries: 8 },
            &mut rng,
        );
        let mut rng = StdRng::seed_from_u64(3);
        let hybrid =
            ClusteredControl::ism_heads_wired_panels(32).actuate(&assignments(512), &mut rng);
        assert!(hybrid.complete() && wireless.complete());
        assert!(
            hybrid.completion_s < wireless.completion_s,
            "hybrid {} vs wireless {}",
            hybrid.completion_s,
            wireless.completion_s
        );
    }

    #[test]
    fn empty_batch_is_trivial() {
        let c = ClusteredControl::ism_heads_wired_panels(8);
        let mut rng = StdRng::seed_from_u64(4);
        let r = c.actuate(&[], &mut rng);
        assert!(r.complete());
        assert_eq!(r.frames_sent, 0);
    }

    #[test]
    fn deterministic_per_seed() {
        let c = ClusteredControl::ism_heads_wired_panels(8);
        let a = c.actuate(&assignments(64), &mut StdRng::seed_from_u64(5));
        let b = c.actuate(&assignments(64), &mut StdRng::seed_from_u64(5));
        assert_eq!(a.completion_s, b.completion_s);
        assert_eq!(a.frames_sent, b.frames_sent);
    }
}
