//! Hybrid control topologies: wireless cluster heads, wired element groups.
//!
//! §4.2 of the paper lists "wires between some subsets of the array
//! elements" among the control-plane candidates. The natural hybrid is
//! clusters: a low-rate wireless hop reaches each cluster's head, and a
//! short wired bus fans the command out within the cluster — wiring an
//! entire building is impractical, but wiring the elements inside one wall
//! panel is trivial. This module computes actuation latency and message
//! cost across the cluster-size spectrum, from fully wireless (cluster
//! size 1) to fully wired (one cluster).

use crate::actuation::{actuate, AckPolicy, ActuationReport};
use crate::transport::Transport;
use rand::Rng;

/// A hybrid clustered control plane.
#[derive(Debug, Clone)]
pub struct ClusteredControl {
    /// Transport from the controller to the cluster heads.
    pub backbone: Transport,
    /// Transport within each cluster (head to members).
    pub local: Transport,
    /// Elements per cluster.
    pub cluster_size: usize,
    /// Controller → head worst-case range, meters.
    pub backbone_range_m: f64,
    /// Head → member worst-case range, meters (one wall panel).
    pub local_range_m: f64,
}

impl ClusteredControl {
    /// The natural hybrid: ISM radio to the heads, wired panel buses inside.
    pub fn ism_heads_wired_panels(cluster_size: usize) -> ClusteredControl {
        ClusteredControl {
            backbone: Transport::ism(),
            local: Transport::wired(),
            cluster_size: cluster_size.max(1),
            backbone_range_m: 20.0,
            local_range_m: 2.0,
        }
    }

    /// Actuates `assignments` across the clustered topology: the backbone
    /// delivers each cluster's batch to its head (acked, retried), then all
    /// cluster buses run in parallel. Returns the end-to-end report with
    /// completion = slowest backbone delivery + slowest local fan-out.
    pub fn actuate<R: Rng + ?Sized>(
        &self,
        assignments: &[(u16, u8)],
        rng: &mut R,
    ) -> ActuationReport {
        if assignments.is_empty() {
            return ActuationReport {
                completion_s: 0.0,
                frames_sent: 0,
                failed: Vec::new(),
                unconfirmed: Vec::new(),
                retry_rounds: 0,
            };
        }
        let mut total_frames = 0usize;
        let mut failed = Vec::new();
        let mut unconfirmed = Vec::new();
        let mut backbone_worst = 0.0f64;
        let mut local_worst = 0.0f64;
        let mut retry_rounds = 0usize;

        for chunk in assignments.chunks(self.cluster_size) {
            // One backbone message per cluster head carrying the sub-batch.
            let head: Vec<(u16, u8)> = vec![chunk[0]];
            let backbone_report = actuate(
                &self.backbone,
                &head,
                self.backbone_range_m,
                AckPolicy::PerElement { max_retries: 8 },
                rng,
            );
            total_frames += backbone_report.frames_sent;
            retry_rounds = retry_rounds.max(backbone_report.retry_rounds);
            if !backbone_report.complete() {
                // The whole cluster is unreachable.
                failed.extend(chunk.iter().map(|&(e, _)| e));
                continue;
            }
            backbone_worst = backbone_worst.max(backbone_report.completion_s);

            // Local wired fan-out inside the cluster (runs after its head
            // got the batch; clusters run in parallel with each other).
            let local_report = actuate(
                &self.local,
                chunk,
                self.local_range_m,
                AckPolicy::PerElement { max_retries: 4 },
                rng,
            );
            total_frames += local_report.frames_sent;
            retry_rounds = retry_rounds.max(local_report.retry_rounds);
            failed.extend(local_report.failed.iter());
            unconfirmed.extend(local_report.unconfirmed.iter());
            local_worst = local_worst.max(local_report.completion_s);
        }

        ActuationReport {
            completion_s: backbone_worst + local_worst,
            frames_sent: total_frames,
            failed,
            unconfirmed,
            retry_rounds,
        }
    }

    /// Number of backbone endpoints (cluster heads) this topology needs for
    /// `n` elements — the wiring cost driver.
    pub fn n_heads(&self, n_elements: usize) -> usize {
        n_elements.div_ceil(self.cluster_size)
    }
}

/// RF-coupling graph over abstract node indices, partitioned into
/// connected components by union-find.
///
/// [`ClusteredControl`] partitions elements by *wiring* — who shares a
/// panel bus. Campus-scale scheduling needs the orthogonal cut: who is
/// *RF-coupled* to whom. Callers add one node per unit of work (links,
/// elements — the graph is index-based and deliberately knows nothing
/// about either) and an edge per coupling relation (shared reachable
/// array element, co-channel proximity); [`components`](Self::components)
/// then yields the independent shards a scheduler may optimize in
/// parallel.
///
/// Determinism: components are returned sorted by their smallest member,
/// members ascending — a pure function of the edge *set*, independent of
/// the order edges were added.
#[derive(Debug, Clone)]
pub struct CouplingGraph {
    /// Union-find parent per node (path-halving on find).
    parent: Vec<usize>,
}

impl CouplingGraph {
    /// A graph of `n` isolated nodes.
    pub fn new(n: usize) -> CouplingGraph {
        CouplingGraph {
            parent: (0..n).collect(),
        }
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.parent.len()
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    /// Declares nodes `a` and `b` RF-coupled (undirected). Panics if
    /// either index is out of range.
    pub fn couple(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            // Root toward the smaller index so component identity is
            // stable regardless of edge insertion order.
            let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
            self.parent[hi] = lo;
        }
    }

    /// Whether `a` and `b` currently share a component.
    pub fn coupled(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// The connected components, sorted by smallest member, members
    /// ascending. Isolated nodes come back as singleton components.
    pub fn components(&mut self) -> Vec<Vec<usize>> {
        let n = self.n_nodes();
        let mut by_root: Vec<(usize, usize)> = (0..n).map(|x| (self.find(x), x)).collect();
        by_root.sort_unstable();
        let mut out: Vec<Vec<usize>> = Vec::new();
        for (root, node) in by_root {
            match out.last_mut() {
                // Roots are always the smallest member of their component,
                // so a new root starts a new (already ordered) group.
                Some(group) if group[0] == root => group.push(node),
                _ => out.push(vec![node]),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn assignments(n: u16) -> Vec<(u16, u8)> {
        (0..n).map(|e| (e, 1)).collect()
    }

    #[test]
    fn isolated_nodes_are_singleton_components() {
        let mut g = CouplingGraph::new(3);
        assert_eq!(g.components(), vec![vec![0], vec![1], vec![2]]);
    }

    #[test]
    fn components_are_transitive_and_sorted() {
        let mut g = CouplingGraph::new(6);
        g.couple(4, 1);
        g.couple(1, 5);
        g.couple(3, 2);
        assert!(g.coupled(4, 5), "coupling is transitive");
        assert!(!g.coupled(0, 1));
        assert_eq!(g.components(), vec![vec![0], vec![1, 4, 5], vec![2, 3]]);
    }

    #[test]
    fn components_are_independent_of_edge_order() {
        let edges = [(0usize, 3usize), (3, 7), (2, 5), (5, 6), (1, 4)];
        let mut fwd = CouplingGraph::new(8);
        for &(a, b) in &edges {
            fwd.couple(a, b);
        }
        let mut rev = CouplingGraph::new(8);
        for &(a, b) in edges.iter().rev() {
            rev.couple(b, a);
        }
        assert_eq!(fwd.components(), rev.components());
    }

    #[test]
    fn clustering_reduces_backbone_endpoints() {
        let c = ClusteredControl::ism_heads_wired_panels(16);
        assert_eq!(c.n_heads(256), 16);
        assert_eq!(c.n_heads(257), 17);
        let flat = ClusteredControl::ism_heads_wired_panels(1);
        assert_eq!(flat.n_heads(256), 256);
    }

    #[test]
    fn clustered_actuation_completes() {
        let c = ClusteredControl::ism_heads_wired_panels(16);
        let mut rng = StdRng::seed_from_u64(1);
        let r = c.actuate(&assignments(128), &mut rng);
        assert!(r.complete(), "failed: {:?}", r.failed);
        assert!(r.completion_s > 0.0);
    }

    #[test]
    fn bigger_clusters_fewer_backbone_messages() {
        let mut rng = StdRng::seed_from_u64(2);
        let small =
            ClusteredControl::ism_heads_wired_panels(4).actuate(&assignments(128), &mut rng);
        let mut rng = StdRng::seed_from_u64(2);
        let large =
            ClusteredControl::ism_heads_wired_panels(32).actuate(&assignments(128), &mut rng);
        assert!(
            large.frames_sent < small.frames_sent,
            "large {} vs small {}",
            large.frames_sent,
            small.frames_sent
        );
    }

    #[test]
    fn hybrid_beats_fully_wireless_on_big_arrays() {
        // 512 elements: per-element ISM unicast vs 32-element wired panels.
        let mut rng = StdRng::seed_from_u64(3);
        let wireless = crate::actuation::actuate(
            &Transport::ism(),
            &assignments(512),
            20.0,
            AckPolicy::PerElement { max_retries: 8 },
            &mut rng,
        );
        let mut rng = StdRng::seed_from_u64(3);
        let hybrid =
            ClusteredControl::ism_heads_wired_panels(32).actuate(&assignments(512), &mut rng);
        assert!(hybrid.complete() && wireless.complete());
        assert!(
            hybrid.completion_s < wireless.completion_s,
            "hybrid {} vs wireless {}",
            hybrid.completion_s,
            wireless.completion_s
        );
    }

    #[test]
    fn empty_batch_is_trivial() {
        let c = ClusteredControl::ism_heads_wired_panels(8);
        let mut rng = StdRng::seed_from_u64(4);
        let r = c.actuate(&[], &mut rng);
        assert!(r.complete());
        assert_eq!(r.frames_sent, 0);
    }

    #[test]
    fn deterministic_per_seed() {
        let c = ClusteredControl::ism_heads_wired_panels(8);
        let a = c.actuate(&assignments(64), &mut StdRng::seed_from_u64(5));
        let b = c.actuate(&assignments(64), &mut StdRng::seed_from_u64(5));
        assert_eq!(a.completion_s, b.completion_s);
        assert_eq!(a.frames_sent, b.frames_sent);
    }
}
