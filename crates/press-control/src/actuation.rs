//! Actuation: getting a configuration onto the array, reliably, in time.
//!
//! A discrete-event simulation of the controller pushing a configuration to
//! `N` elements over a [`Transport`]: batch broadcast with per-element
//! acknowledgements and retransmission of the stragglers. The output —
//! completion time, messages spent, retries — is what the §2 timing
//! argument needs: can this control plane reconfigure the array inside a
//! channel coherence time (80 ms standing, 6 ms running), or even at the
//! paper's packet-level 1–2 ms aspiration?

use crate::message::Message;
use crate::transport::Transport;
use rand::Rng;

/// Per-element acknowledgement policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AckPolicy {
    /// Fire-and-forget: no acknowledgements, no retries. Fastest, may leave
    /// elements stale on loss.
    None,
    /// Every element acks; lost assignments are retransmitted (unicast) up
    /// to the retry limit.
    PerElement {
        /// Maximum retransmissions per element.
        max_retries: usize,
    },
}

/// Result of one actuation round.
#[derive(Debug, Clone, PartialEq)]
pub struct ActuationReport {
    /// Time from first transmission to the last element applying its state
    /// (or the last ack arriving, with acks), seconds.
    pub completion_s: f64,
    /// Total frames transmitted (commands + acks).
    pub frames_sent: usize,
    /// Elements that still did not apply the configuration.
    pub failed_elements: Vec<u16>,
    /// Retransmission rounds used.
    pub retry_rounds: usize,
}

impl ActuationReport {
    /// Whether every element applied the configuration.
    pub fn complete(&self) -> bool {
        self.failed_elements.is_empty()
    }
}

/// Actuates `assignments` (element id → state) over the transport.
///
/// Broadcast transports send one [`Message::BatchSet`] to all elements per
/// round; each element independently loses the frame with the transport's
/// loss probability. With [`AckPolicy::PerElement`], acks are unicast back
/// (also lossy) and un-acked elements are re-addressed in the next round
/// with a shrinking batch.
///
/// `distance_m` is the worst-case controller↔element distance (latency is
/// conservative).
pub fn actuate<R: Rng + ?Sized>(
    transport: &Transport,
    assignments: &[(u16, u8)],
    distance_m: f64,
    policy: AckPolicy,
    rng: &mut R,
) -> ActuationReport {
    let mut clock = 0.0f64;
    let mut frames = 0usize;
    let mut pending: Vec<(u16, u8)> = assignments.to_vec();
    let mut seq: u16 = 1;
    let max_rounds = match policy {
        AckPolicy::None => 1,
        AckPolicy::PerElement { max_retries } => max_retries + 1,
    };
    let mut rounds = 0usize;
    let mut last_apply = 0.0f64;

    while !pending.is_empty() && rounds < max_rounds {
        rounds += 1;
        let batch = Message::BatchSet {
            seq,
            assignments: pending.clone(),
        };
        seq = seq.wrapping_add(1);
        let frame_len = batch.wire_len();
        frames += 1;
        // One broadcast transmission; each addressed element experiences an
        // independent delivery trial on the shared medium.
        let mut still_pending = Vec::new();
        let mut round_end = clock;
        for &(element, state) in &pending {
            let d = transport.deliver(frame_len, distance_m, rng);
            if d.delivered {
                let applied_at = clock + d.latency_s;
                last_apply = last_apply.max(applied_at);
                match policy {
                    AckPolicy::None => {
                        round_end = round_end.max(applied_at);
                    }
                    AckPolicy::PerElement { .. } => {
                        let ack = Message::Ack { seq };
                        let back = transport.deliver(ack.wire_len(), distance_m, rng);
                        frames += 1;
                        if back.delivered {
                            round_end = round_end.max(applied_at + back.latency_s);
                        } else {
                            // Applied but unconfirmed: will be retransmitted
                            // (idempotent), counts as pending for the protocol.
                            still_pending.push((element, state));
                            round_end = round_end.max(applied_at + back.latency_s);
                        }
                    }
                }
            } else {
                let wasted = clock + d.latency_s;
                round_end = round_end.max(wasted);
                still_pending.push((element, state));
            }
        }
        clock = round_end.max(last_apply);
        pending = still_pending;
    }

    ActuationReport {
        completion_s: clock,
        frames_sent: frames,
        failed_elements: pending.iter().map(|&(e, _)| e).collect(),
        retry_rounds: rounds.saturating_sub(1),
    }
}

/// Convenience: does this transport/policy actuate `n_elements` within a
/// coherence budget? Returns `(report, fits)`.
pub fn fits_coherence<R: Rng + ?Sized>(
    transport: &Transport,
    n_elements: usize,
    distance_m: f64,
    policy: AckPolicy,
    budget_s: f64,
    rng: &mut R,
) -> (ActuationReport, bool) {
    let assignments: Vec<(u16, u8)> = (0..n_elements as u16).map(|e| (e, 1)).collect();
    let report = actuate(transport, &assignments, distance_m, policy, rng);
    let fits = report.complete() && report.completion_s <= budget_s;
    (report, fits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn wired_actuation_is_submillisecond() {
        let mut rng = StdRng::seed_from_u64(1);
        let assignments: Vec<(u16, u8)> = (0..64).map(|e| (e, 2)).collect();
        let r = actuate(
            &Transport::wired(),
            &assignments,
            15.0,
            AckPolicy::PerElement { max_retries: 3 },
            &mut rng,
        );
        assert!(r.complete());
        assert!(r.completion_s < 5e-3, "completion {}", r.completion_s);
    }

    #[test]
    fn fire_and_forget_sends_one_frame() {
        let mut rng = StdRng::seed_from_u64(2);
        let assignments: Vec<(u16, u8)> = (0..10).map(|e| (e, 1)).collect();
        let r = actuate(&Transport::wired(), &assignments, 5.0, AckPolicy::None, &mut rng);
        assert_eq!(r.frames_sent, 1);
        assert_eq!(r.retry_rounds, 0);
    }

    #[test]
    fn lossy_transport_retries_and_converges() {
        let mut rng = StdRng::seed_from_u64(3);
        let assignments: Vec<(u16, u8)> = (0..100).map(|e| (e, 3)).collect();
        let r = actuate(
            &Transport::ism(),
            &assignments,
            10.0,
            AckPolicy::PerElement { max_retries: 10 },
            &mut rng,
        );
        assert!(r.complete(), "failed: {:?}", r.failed_elements);
        assert!(r.frames_sent > 100, "acks must be counted");
    }

    #[test]
    fn no_retries_on_lossy_can_fail() {
        // With 5% loss and 200 elements, fire-and-forget almost surely
        // leaves someone stale — quantifying why acks exist.
        let mut rng = StdRng::seed_from_u64(4);
        let assignments: Vec<(u16, u8)> = (0..200).map(|e| (e, 1)).collect();
        let r = actuate(
            &Transport::ultrasound(),
            &assignments,
            5.0,
            AckPolicy::None,
            &mut rng,
        );
        assert!(!r.complete(), "200 elements at 5% loss should drop some");
    }

    #[test]
    fn ultrasound_blows_packet_timescale() {
        let mut rng = StdRng::seed_from_u64(5);
        let (_, fits_packet) = fits_coherence(
            &Transport::ultrasound(),
            64,
            6.0,
            AckPolicy::PerElement { max_retries: 2 },
            2e-3,
            &mut rng,
        );
        assert!(!fits_packet, "acoustics cannot hit 2 ms");
    }

    #[test]
    fn wired_fits_packet_timescale() {
        let mut rng = StdRng::seed_from_u64(6);
        let (report, fits) = fits_coherence(
            &Transport::wired(),
            64,
            15.0,
            AckPolicy::PerElement { max_retries: 2 },
            2e-3,
            &mut rng,
        );
        assert!(fits, "wired 64-element actuation took {}", report.completion_s);
    }

    #[test]
    fn deterministic_per_seed() {
        let assignments: Vec<(u16, u8)> = (0..20).map(|e| (e, 1)).collect();
        let a = actuate(
            &Transport::ism(),
            &assignments,
            5.0,
            AckPolicy::PerElement { max_retries: 5 },
            &mut StdRng::seed_from_u64(7),
        );
        let b = actuate(
            &Transport::ism(),
            &assignments,
            5.0,
            AckPolicy::PerElement { max_retries: 5 },
            &mut StdRng::seed_from_u64(7),
        );
        assert_eq!(a, b);
    }

    #[test]
    fn empty_assignment_is_trivially_complete() {
        let mut rng = StdRng::seed_from_u64(8);
        let r = actuate(&Transport::ism(), &[], 5.0, AckPolicy::None, &mut rng);
        assert!(r.complete());
        assert_eq!(r.frames_sent, 0);
        assert_eq!(r.completion_s, 0.0);
    }
}
