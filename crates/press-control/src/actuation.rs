//! Actuation: getting a configuration onto the array, reliably, in time.
//!
//! A round-based simulation of the controller pushing a configuration to
//! `N` elements over a [`Transport`]: batch broadcast with per-element
//! acknowledgements and retransmission of the stragglers. The output —
//! completion time, messages spent, retries, which elements actually hold
//! the new state — is what the §2 timing argument needs: can this control
//! plane reconfigure the array inside a channel coherence time (80 ms
//! standing, 6 ms running), or even at the paper's packet-level 1–2 ms
//! aspiration?
//!
//! [`actuate_with`] is the full entry point: it accepts a
//! [`FaultPlan`] (burst loss, dead/stuck elements)
//! and an optional [`ControlMetrics`]
//! registry. [`actuate`] is the fault-free, un-instrumented wrapper and is
//! bit-identical to the historical behavior per seed.

use crate::fault::FaultPlan;
use crate::message::Message;
use crate::metrics::ControlMetrics;
use crate::transport::Transport;
use press_trace::{EventKind, TraceSink, Tracer};
use rand::Rng;

/// Per-element acknowledgement policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AckPolicy {
    /// Fire-and-forget: no acknowledgements, no retries. Fastest, may leave
    /// elements stale on loss.
    None,
    /// Every element acks; lost assignments are retransmitted (unicast) up
    /// to the retry limit. Rounds are back-to-back: the controller
    /// retransmits as soon as the previous round's acks are in.
    PerElement {
        /// Maximum retransmissions per element.
        max_retries: usize,
    },
    /// Adaptive retransmission: the controller tracks ack round-trip times
    /// (Jacobson/Karels EWMA), waits an RTT-derived timeout before each
    /// retransmission round, backs that timeout off exponentially while no
    /// progress is made (a burst eats everything), and caps retransmission
    /// batches so one straggler round does not serialize a giant frame.
    Adaptive {
        /// Maximum retransmissions per element.
        max_retries: usize,
        /// Largest retransmission batch per frame (≥1).
        batch_cap: usize,
    },
}

impl AckPolicy {
    fn max_rounds(&self) -> usize {
        match *self {
            AckPolicy::None => 1,
            AckPolicy::PerElement { max_retries } | AckPolicy::Adaptive { max_retries, .. } => {
                max_retries + 1
            }
        }
    }

    fn wants_acks(&self) -> bool {
        !matches!(self, AckPolicy::None)
    }
}

/// Controller-side smoothed round-trip-time estimator (Jacobson/Karels):
/// `SRTT`/`RTTVAR` EWMAs with the classic `SRTT + 4·RTTVAR` retransmission
/// timeout. Shared by the round model and the DES.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RttEstimator {
    srtt: f64,
    rttvar: f64,
    initialized: bool,
}

impl RttEstimator {
    /// A fresh estimator with no samples.
    pub fn new() -> Self {
        RttEstimator::default()
    }

    /// Feeds one measured ack round-trip time.
    pub fn observe(&mut self, rtt_s: f64) {
        if !self.initialized {
            self.srtt = rtt_s;
            self.rttvar = rtt_s / 2.0;
            self.initialized = true;
        } else {
            self.rttvar = 0.75 * self.rttvar + 0.25 * (self.srtt - rtt_s).abs();
            self.srtt = 0.875 * self.srtt + 0.125 * rtt_s;
        }
    }

    /// The smoothed RTT, if any sample arrived yet.
    pub fn srtt(&self) -> Option<f64> {
        self.initialized.then_some(self.srtt)
    }

    /// The retransmission timeout: `SRTT + 4·RTTVAR` once samples exist,
    /// `fallback_s` before.
    pub fn timeout(&self, fallback_s: f64) -> f64 {
        if self.initialized {
            self.srtt + 4.0 * self.rttvar
        } else {
            fallback_s
        }
    }
}

/// Result of one actuation round.
#[derive(Debug, Clone, PartialEq)]
pub struct ActuationReport {
    /// Time from first transmission to the last element applying its state
    /// (or the last ack arriving, with acks), seconds.
    pub completion_s: f64,
    /// Total frames transmitted (commands + acks).
    pub frames_sent: usize,
    /// Elements that never applied the configuration: the array is really
    /// mis-configured there.
    pub failed: Vec<u16>,
    /// Elements that *applied* the configuration but whose acks were all
    /// lost: the array is configured, the controller just cannot prove it.
    /// (Historically these were lumped into the failed set, making
    /// `complete()` report a mis-configured array that was actually fine.)
    pub unconfirmed: Vec<u16>,
    /// Retransmission rounds used.
    pub retry_rounds: usize,
}

impl ActuationReport {
    /// Whether every element applied the configuration — the physical-array
    /// question. Unconfirmed elements count as applied: their state is on
    /// the wall even though the ack never made it back.
    pub fn complete(&self) -> bool {
        self.failed.is_empty()
    }

    /// Whether every element applied *and* was acknowledged — the
    /// controller-knowledge question.
    pub fn confirmed(&self) -> bool {
        self.failed.is_empty() && self.unconfirmed.is_empty()
    }

    /// Whether `element` ended the round holding the commanded state.
    pub fn element_applied(&self, element: u16) -> bool {
        !self.failed.contains(&element)
    }
}

/// Actuates `assignments` (element id → state) over the transport with
/// fault injection and metrics.
///
/// Broadcast transports send one [`Message::BatchSet`] to all addressed
/// elements per round; each element independently loses the frame with the
/// transport's loss probability (composed with the [`FaultPlan`]'s
/// burst-chain loss when one is present). With acks ([`AckPolicy::PerElement`] /
/// [`AckPolicy::Adaptive`]) each element unicasts an ack built from the
/// delivered batch's own sequence number; the controller confirms an
/// element only when the ack's seq matches the batch it sent. Un-acked
/// elements are re-addressed in later rounds with shrinking (and, for
/// `Adaptive`, capped) batches.
///
/// `distance_m` is the worst-case controller↔element distance (latency is
/// conservative). With `FaultPlan::none()` and no metrics this consumes
/// exactly the RNG draws of the historical `actuate` loop.
pub fn actuate_with<R: Rng + ?Sized>(
    transport: &Transport,
    assignments: &[(u16, u8)],
    distance_m: f64,
    policy: AckPolicy,
    faults: &mut FaultPlan,
    metrics: Option<&mut ControlMetrics>,
    rng: &mut R,
) -> ActuationReport {
    actuate_traced(
        transport,
        assignments,
        distance_m,
        policy,
        faults,
        metrics,
        &mut Tracer::null(),
        0.0,
        rng,
    )
}

/// [`actuate_with`] emitting per-frame trace events: `frame_tx` /
/// `frame_lost` / `ack_rx` / `applied` per delivery trial, `backoff` when
/// adaptive pacing stalls the sender, `burst` on every Gilbert–Elliott
/// state transition, and `gave_up` per element that exhausts its retries.
/// Event sim-times are `t0_s` plus the actuation's own clock, so episode
/// traces place wire activity on the episode timeline. Tracing is purely
/// passive — RNG draws and results are bit-identical to [`actuate_with`].
#[allow(clippy::too_many_arguments)]
pub fn actuate_traced<R: Rng + ?Sized, S: TraceSink>(
    transport: &Transport,
    assignments: &[(u16, u8)],
    distance_m: f64,
    policy: AckPolicy,
    faults: &mut FaultPlan,
    mut metrics: Option<&mut ControlMetrics>,
    tracer: &mut Tracer<S>,
    t0_s: f64,
    rng: &mut R,
) -> ActuationReport {
    let mut clock = 0.0f64;
    let mut frames = 0usize;
    let mut pending: Vec<usize> = (0..assignments.len()).collect();
    let mut applied = vec![false; assignments.len()];
    let mut seq: u16 = 1;
    let max_rounds = policy.max_rounds();
    let mut rounds = 0usize;
    let mut last_apply = 0.0f64;
    let mut rtt = RttEstimator::new();
    let mut backoff_exp: u32 = 0;

    while !pending.is_empty() && rounds < max_rounds {
        rounds += 1;
        let round_start = clock;
        // Adaptive retransmission rounds are capped; everything else is one
        // broadcast batch per round.
        let chunks: Vec<Vec<usize>> = match policy {
            AckPolicy::Adaptive { batch_cap, .. } if rounds > 1 => pending
                .chunks(batch_cap.max(1))
                .map(|c| c.to_vec())
                .collect(),
            _ => vec![pending.clone()],
        };
        let mut still_pending = Vec::new();
        let mut round_end = clock;
        let mut chunk_tx = clock;
        let mut progressed = false;
        for chunk in &chunks {
            let batch = Message::BatchSet {
                seq,
                assignments: chunk.iter().map(|&i| assignments[i]).collect(),
            };
            seq = seq.wrapping_add(1);
            let frame_len = batch.wire_len();
            frames += 1;
            // One broadcast transmission; each addressed element experiences
            // an independent delivery trial on the shared medium.
            for &i in chunk {
                let (element, commanded) = assignments[i];
                let burst_before = faults.burst.as_ref().map(|g| g.in_burst());
                let loss = faults.frame_loss(transport.loss_prob(), rng);
                if let Some(before) = burst_before {
                    let now = faults.burst.as_ref().is_some_and(|g| g.in_burst());
                    if now != before {
                        tracer.emit(
                            t0_s + chunk_tx,
                            EventKind::BurstTransition { into_burst: now },
                        );
                    }
                }
                tracer.emit(
                    t0_s + chunk_tx,
                    EventKind::FrameTx {
                        element,
                        attempt: (rounds - 1) as u32,
                    },
                );
                let d = transport.deliver_with_loss(frame_len, distance_m, loss, rng);
                if let Some(m) = metrics.as_deref_mut() {
                    m.frames_tx += 1;
                    m.frame_latency.observe(d.latency_s);
                    if rounds > 1 {
                        m.retries += 1;
                    }
                    if !d.delivered {
                        m.frames_lost += 1;
                    }
                }
                if d.delivered && faults.elements.responds(element) {
                    let applied_at = chunk_tx + d.latency_s;
                    if !applied[i] {
                        applied[i] = true;
                        last_apply = last_apply.max(applied_at);
                        // The realized state is the fault-plan truth: stuck
                        // elements ack the command but hold their own state.
                        let realized = faults
                            .elements
                            .realized_state(element, commanded)
                            .unwrap_or(commanded);
                        tracer.emit(
                            t0_s + applied_at,
                            EventKind::Applied {
                                element,
                                state: realized,
                            },
                        );
                    }
                    if policy.wants_acks() {
                        // The element acks the batch it received — the ack
                        // carries *that* batch's seq, and the controller
                        // confirms only on a seq match.
                        let ack = batch.ack();
                        let ack_loss = faults.frame_loss(transport.loss_prob(), rng);
                        let back =
                            transport.deliver_with_loss(ack.wire_len(), distance_m, ack_loss, rng);
                        frames += 1;
                        round_end = round_end.max(applied_at + back.latency_s);
                        let confirmed = back.delivered && ack.seq() == batch.seq();
                        if let Some(m) = metrics.as_deref_mut() {
                            if confirmed {
                                m.acks_rx += 1;
                            } else {
                                m.acks_lost += 1;
                            }
                        }
                        if confirmed {
                            tracer.emit(
                                t0_s + applied_at + back.latency_s,
                                EventKind::AckRx { element },
                            );
                            rtt.observe(applied_at + back.latency_s - chunk_tx);
                            progressed = true;
                        } else {
                            // Applied but unconfirmed: will be retransmitted
                            // (idempotent), counts as pending for the
                            // protocol.
                            tracer.emit(
                                t0_s + applied_at + back.latency_s,
                                EventKind::FrameLost { element },
                            );
                            still_pending.push(i);
                        }
                    } else {
                        round_end = round_end.max(applied_at);
                    }
                } else {
                    // Frame lost on the medium, or the element is dead and
                    // nobody received it.
                    let wasted = chunk_tx + d.latency_s;
                    tracer.emit(t0_s + wasted, EventKind::FrameLost { element });
                    round_end = round_end.max(wasted);
                    still_pending.push(i);
                }
            }
            chunk_tx += frame_len as f64 * 8.0 / transport.bitrate_bps();
        }
        clock = round_end.max(last_apply);
        // Adaptive pacing: before retransmitting, wait out the RTT-derived
        // ack timeout, doubled for every consecutive barren round (burst
        // avoidance), so the wire is not hammered mid-burst.
        if let AckPolicy::Adaptive { .. } = policy {
            if !still_pending.is_empty() && rounds < max_rounds {
                let fallback = 4.0 * fallback_rtt(transport, distance_m);
                let rto = rtt.timeout(fallback) * f64::from(2u32.saturating_pow(backoff_exp));
                let deadline = round_start + rto.min(MAX_BACKOFF_S);
                if deadline > clock {
                    tracer.emit(
                        t0_s + clock,
                        EventKind::Backoff {
                            wait_s: deadline - clock,
                        },
                    );
                    clock = deadline;
                }
            }
            if progressed {
                backoff_exp = 0;
            } else {
                backoff_exp = (backoff_exp + 1).min(MAX_BACKOFF_DOUBLINGS);
            }
        }
        pending = still_pending;
    }

    let mut failed = Vec::new();
    let mut unconfirmed = Vec::new();
    for &i in &pending {
        if applied[i] {
            unconfirmed.push(assignments[i].0);
        } else {
            tracer.emit(
                t0_s + clock,
                EventKind::GaveUp {
                    element: assignments[i].0,
                },
            );
            failed.push(assignments[i].0);
        }
    }
    let report = ActuationReport {
        completion_s: clock,
        frames_sent: frames,
        failed,
        unconfirmed,
        retry_rounds: rounds.saturating_sub(1),
    };
    if let Some(m) = metrics {
        m.actuations += 1;
        m.completion.observe(report.completion_s);
        m.failed_elements += report.failed.len() as u64;
        m.unconfirmed_elements += report.unconfirmed.len() as u64;
    }
    report
}

/// Ceiling on the adaptive retransmission timeout.
const MAX_BACKOFF_S: f64 = 2.0;
/// Ceiling on consecutive backoff doublings (2^6 = 64×).
const MAX_BACKOFF_DOUBLINGS: u32 = 6;

/// A conservative a-priori one-way latency guess for the adaptive timeout
/// before any RTT sample exists: a small command frame's serialization plus
/// propagation.
fn fallback_rtt(transport: &Transport, distance_m: f64) -> f64 {
    let small_frame_bits = 16.0 * 8.0;
    2.0 * (small_frame_bits / transport.bitrate_bps() + distance_m / transport.propagation_speed())
}

/// Actuates without fault injection or metrics — the historical entry
/// point, bit-identical per seed to the pre-fault-injection code.
pub fn actuate<R: Rng + ?Sized>(
    transport: &Transport,
    assignments: &[(u16, u8)],
    distance_m: f64,
    policy: AckPolicy,
    rng: &mut R,
) -> ActuationReport {
    actuate_with(
        transport,
        assignments,
        distance_m,
        policy,
        &mut FaultPlan::none(),
        None,
        rng,
    )
}

/// Convenience: does this transport/policy actuate `n_elements` within a
/// coherence budget? Returns `(report, fits)`.
///
/// `fits` judges the *applied* state — an array whose elements all hold the
/// commanded configuration fits the budget even if some acks died on the
/// way back.
pub fn fits_coherence<R: Rng + ?Sized>(
    transport: &Transport,
    n_elements: usize,
    distance_m: f64,
    policy: AckPolicy,
    budget_s: f64,
    rng: &mut R,
) -> (ActuationReport, bool) {
    let assignments: Vec<(u16, u8)> = (0..n_elements as u16).map(|e| (e, 1)).collect();
    let report = actuate(transport, &assignments, distance_m, policy, rng);
    let fits = report.complete() && report.completion_s <= budget_s;
    (report, fits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{ElementFaults, GilbertElliott};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn wired_actuation_is_submillisecond() {
        let mut rng = StdRng::seed_from_u64(1);
        let assignments: Vec<(u16, u8)> = (0..64).map(|e| (e, 2)).collect();
        let r = actuate(
            &Transport::wired(),
            &assignments,
            15.0,
            AckPolicy::PerElement { max_retries: 3 },
            &mut rng,
        );
        assert!(r.complete());
        assert!(r.completion_s < 5e-3, "completion {}", r.completion_s);
    }

    #[test]
    fn fire_and_forget_sends_one_frame() {
        let mut rng = StdRng::seed_from_u64(2);
        let assignments: Vec<(u16, u8)> = (0..10).map(|e| (e, 1)).collect();
        let r = actuate(
            &Transport::wired(),
            &assignments,
            5.0,
            AckPolicy::None,
            &mut rng,
        );
        assert_eq!(r.frames_sent, 1);
        assert_eq!(r.retry_rounds, 0);
    }

    #[test]
    fn lossy_transport_retries_and_converges() {
        let mut rng = StdRng::seed_from_u64(3);
        let assignments: Vec<(u16, u8)> = (0..100).map(|e| (e, 3)).collect();
        let r = actuate(
            &Transport::ism(),
            &assignments,
            10.0,
            AckPolicy::PerElement { max_retries: 10 },
            &mut rng,
        );
        assert!(r.complete(), "failed: {:?}", r.failed);
        assert!(r.frames_sent > 100, "acks must be counted");
    }

    #[test]
    fn no_retries_on_lossy_can_fail() {
        // With 5% loss and 200 elements, fire-and-forget almost surely
        // leaves someone stale — quantifying why acks exist.
        let mut rng = StdRng::seed_from_u64(4);
        let assignments: Vec<(u16, u8)> = (0..200).map(|e| (e, 1)).collect();
        let r = actuate(
            &Transport::ultrasound(),
            &assignments,
            5.0,
            AckPolicy::None,
            &mut rng,
        );
        assert!(!r.complete(), "200 elements at 5% loss should drop some");
    }

    #[test]
    fn ultrasound_blows_packet_timescale() {
        let mut rng = StdRng::seed_from_u64(5);
        let (_, fits_packet) = fits_coherence(
            &Transport::ultrasound(),
            64,
            6.0,
            AckPolicy::PerElement { max_retries: 2 },
            2e-3,
            &mut rng,
        );
        assert!(!fits_packet, "acoustics cannot hit 2 ms");
    }

    #[test]
    fn wired_fits_packet_timescale() {
        let mut rng = StdRng::seed_from_u64(6);
        let (report, fits) = fits_coherence(
            &Transport::wired(),
            64,
            15.0,
            AckPolicy::PerElement { max_retries: 2 },
            2e-3,
            &mut rng,
        );
        assert!(
            fits,
            "wired 64-element actuation took {}",
            report.completion_s
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let assignments: Vec<(u16, u8)> = (0..20).map(|e| (e, 1)).collect();
        let a = actuate(
            &Transport::ism(),
            &assignments,
            5.0,
            AckPolicy::PerElement { max_retries: 5 },
            &mut StdRng::seed_from_u64(7),
        );
        let b = actuate(
            &Transport::ism(),
            &assignments,
            5.0,
            AckPolicy::PerElement { max_retries: 5 },
            &mut StdRng::seed_from_u64(7),
        );
        assert_eq!(a, b);
    }

    #[test]
    fn empty_assignment_is_trivially_complete() {
        let mut rng = StdRng::seed_from_u64(8);
        let r = actuate(&Transport::ism(), &[], 5.0, AckPolicy::None, &mut rng);
        assert!(r.complete());
        assert_eq!(r.frames_sent, 0);
        assert_eq!(r.completion_s, 0.0);
    }

    #[test]
    fn ack_seq_matches_batch_seq() {
        // Regression for the ack off-by-one: acks are constructed from the
        // batch the element received and confirmation is seq-checked, so
        // re-introducing "increment seq, then build the ack" leaves every
        // element unconfirmed and this assertion fails.
        let mut rng = StdRng::seed_from_u64(9);
        let assignments: Vec<(u16, u8)> = (0..32).map(|e| (e, 1)).collect();
        let r = actuate(
            &Transport::wired(),
            &assignments,
            10.0,
            AckPolicy::PerElement { max_retries: 3 },
            &mut rng,
        );
        assert!(
            r.confirmed(),
            "wired acks must confirm every element: unconfirmed {:?}, failed {:?}",
            r.unconfirmed,
            r.failed
        );
    }

    #[test]
    fn applied_but_unconfirmed_is_not_failed() {
        // Elements whose state applied but whose acks all died must be
        // reported "configured but unconfirmed", never "mis-configured".
        // Heavy symmetric loss with a single retry reliably produces both
        // populations.
        let lossy = Transport::IsmRadio {
            bitrate_bps: 250e3,
            loss_prob: 0.45,
            mac_latency_s: 1e-3,
        };
        let mut rng = StdRng::seed_from_u64(11);
        let assignments: Vec<(u16, u8)> = (0..64).map(|e| (e, 1)).collect();
        let r = actuate(
            &lossy,
            &assignments,
            10.0,
            AckPolicy::PerElement { max_retries: 1 },
            &mut rng,
        );
        // Every element is in exactly one of applied/confirmed-pending sets.
        for &(e, _) in &assignments {
            let in_failed = r.failed.contains(&e);
            let in_unconfirmed = r.unconfirmed.contains(&e);
            assert!(!(in_failed && in_unconfirmed), "element {e} in both sets");
        }
        assert!(
            !r.unconfirmed.is_empty(),
            "45% loss with 1 retry must leave applied-but-unacked elements"
        );
        // Unconfirmed elements DID apply.
        for &e in &r.unconfirmed {
            assert!(r.element_applied(e));
        }
    }

    #[test]
    fn dead_elements_fail_stuck_elements_ack() {
        let mut faults = FaultPlan::broken(ElementFaults::none().dead(3).stuck(5, 0));
        let mut rng = StdRng::seed_from_u64(12);
        let assignments: Vec<(u16, u8)> = (0..8).map(|e| (e, 2)).collect();
        let r = actuate_with(
            &Transport::wired(),
            &assignments,
            5.0,
            AckPolicy::PerElement { max_retries: 4 },
            &mut faults,
            None,
            &mut rng,
        );
        assert_eq!(r.failed, vec![3], "dead element must exhaust retries");
        assert!(r.unconfirmed.is_empty());
        // The stuck element acked (protocol thinks it applied) — the lie the
        // controller's realized-configuration accounting has to surface.
        assert!(r.element_applied(5));
        assert_eq!(faults.elements.realized_state(5, 2), Some(0));
    }

    #[test]
    fn burst_loss_degrades_fire_and_forget() {
        // Same transport, same seed: a jammed burst chain must lose more
        // elements than the nominal i.i.d. loss.
        let assignments: Vec<(u16, u8)> = (0..256).map(|e| (e, 1)).collect();
        let clean = actuate(
            &Transport::ism(),
            &assignments,
            10.0,
            AckPolicy::None,
            &mut StdRng::seed_from_u64(13),
        );
        let mut faults = FaultPlan::bursty(GilbertElliott::jammed());
        let bursty = actuate_with(
            &Transport::ism(),
            &assignments,
            10.0,
            AckPolicy::None,
            &mut faults,
            None,
            &mut StdRng::seed_from_u64(13),
        );
        assert!(
            bursty.failed.len() > clean.failed.len() + 10,
            "bursty {} vs clean {}",
            bursty.failed.len(),
            clean.failed.len()
        );
    }

    #[test]
    fn adaptive_policy_converges_and_paces_retransmissions() {
        let assignments: Vec<(u16, u8)> = (0..100).map(|e| (e, 3)).collect();
        let adaptive = actuate(
            &Transport::ism(),
            &assignments,
            10.0,
            AckPolicy::Adaptive {
                max_retries: 10,
                batch_cap: 16,
            },
            &mut StdRng::seed_from_u64(14),
        );
        assert!(adaptive.complete(), "failed: {:?}", adaptive.failed);
        let eager = actuate(
            &Transport::ism(),
            &assignments,
            10.0,
            AckPolicy::PerElement { max_retries: 10 },
            &mut StdRng::seed_from_u64(14),
        );
        // Pacing waits out ack timeouts, so the adaptive policy can only be
        // slower than back-to-back rounds on a clean-ish channel…
        assert!(adaptive.completion_s >= eager.completion_s);
        // …but not pathologically so: the RTT estimator keeps the timeout
        // within a small multiple of the real round trip.
        assert!(
            adaptive.completion_s < eager.completion_s + 1.0,
            "adaptive {} vs eager {}",
            adaptive.completion_s,
            eager.completion_s
        );
    }

    #[test]
    fn adaptive_backoff_survives_bursts_fixed_policy_falls_behind() {
        // Under heavy burst loss, exponential backoff waits bursts out and
        // still converges within the retry budget.
        let assignments: Vec<(u16, u8)> = (0..64).map(|e| (e, 1)).collect();
        let mut faults = FaultPlan::bursty(GilbertElliott::interference());
        let r = actuate_with(
            &Transport::ism(),
            &assignments,
            10.0,
            AckPolicy::Adaptive {
                max_retries: 12,
                batch_cap: 16,
            },
            &mut faults,
            None,
            &mut StdRng::seed_from_u64(15),
        );
        assert!(
            r.failed.len() <= 2,
            "adaptive retry should reach almost everyone through bursts: {:?}",
            r.failed
        );
    }

    #[test]
    fn metrics_account_for_frames_and_losses() {
        let mut metrics = ControlMetrics::new();
        let mut faults = FaultPlan::none();
        let assignments: Vec<(u16, u8)> = (0..50).map(|e| (e, 1)).collect();
        let mut rng = StdRng::seed_from_u64(16);
        let r = actuate_with(
            &Transport::ism(),
            &assignments,
            10.0,
            AckPolicy::PerElement { max_retries: 8 },
            &mut faults,
            Some(&mut metrics),
            &mut rng,
        );
        assert_eq!(metrics.actuations, 1);
        assert_eq!(metrics.completion.count(), 1);
        assert!(metrics.frames_tx >= 50);
        assert_eq!(
            metrics.acks_rx as usize,
            50 - r.failed.len() - r.unconfirmed.len(),
            "every confirmed element was acked exactly once"
        );
        assert_eq!(metrics.frame_latency.count(), metrics.frames_tx);
        // Instrumentation must not perturb the simulation.
        let mut rng2 = StdRng::seed_from_u64(16);
        let bare = actuate(
            &Transport::ism(),
            &assignments,
            10.0,
            AckPolicy::PerElement { max_retries: 8 },
            &mut rng2,
        );
        assert_eq!(r, bare);
    }

    #[test]
    fn traced_actuation_is_bit_identical_and_events_are_consistent() {
        use press_trace::MemorySink;

        let lossy = Transport::IsmRadio {
            bitrate_bps: 250e3,
            loss_prob: 0.4,
            mac_latency_s: 1e-3,
        };
        let policy = AckPolicy::Adaptive {
            max_retries: 6,
            batch_cap: 16,
        };
        let assignments: Vec<(u16, u8)> = (0..48).map(|e| (e, 1)).collect();
        let bare = actuate_with(
            &lossy,
            &assignments,
            10.0,
            policy,
            &mut FaultPlan::bursty(GilbertElliott::interference()),
            None,
            &mut StdRng::seed_from_u64(21),
        );
        let mut tracer = Tracer::new(MemorySink::new());
        let traced = actuate_traced(
            &lossy,
            &assignments,
            10.0,
            policy,
            &mut FaultPlan::bursty(GilbertElliott::interference()),
            None,
            &mut tracer,
            5.0,
            &mut StdRng::seed_from_u64(21),
        );
        assert_eq!(traced, bare, "tracing must not perturb the simulation");

        let events = &tracer.sink().events;
        let count = |f: &dyn Fn(&EventKind) -> bool| events.iter().filter(|e| f(&e.kind)).count();
        // frame_tx is per *delivery trial* (each addressed element of a
        // broadcast), so it can only exceed the per-chunk frame count; every
        // element sees at least one trial.
        let tx = count(&|k| matches!(k, EventKind::FrameTx { .. }));
        assert!(tx >= assignments.len());
        // Confirmed elements = assignments - failed - unconfirmed, acked
        // exactly once each (a confirmed element leaves the pending set).
        let acks = count(&|k| matches!(k, EventKind::AckRx { .. }));
        assert_eq!(
            acks,
            assignments.len() - bare.failed.len() - bare.unconfirmed.len()
        );
        assert_eq!(
            count(&|k| matches!(k, EventKind::GaveUp { .. })),
            bare.failed.len()
        );
        // 40% composed loss over 6 retries: losses and backoffs must show up.
        assert!(count(&|k| matches!(k, EventKind::FrameLost { .. })) > 0);
        assert!(count(&|k| matches!(k, EventKind::Backoff { .. })) > 0);
        assert!(count(&|k| matches!(k, EventKind::BurstTransition { .. })) > 0);
        // Sim-times ride on the caller's episode clock offset.
        assert!(events.iter().all(|e| e.t_s >= 5.0));
        // Sequence numbers are monotonic.
        assert!(events.windows(2).all(|w| w[1].seq == w[0].seq + 1));
    }

    #[test]
    fn rtt_estimator_tracks_and_times_out() {
        let mut est = RttEstimator::new();
        assert_eq!(est.timeout(0.5), 0.5, "fallback before samples");
        for _ in 0..50 {
            est.observe(10e-3);
        }
        let srtt = est.srtt().unwrap();
        assert!((srtt - 10e-3).abs() < 1e-4);
        // Converged variance → timeout approaches SRTT.
        assert!(est.timeout(0.5) < 20e-3, "timeout {}", est.timeout(0.5));
    }
}
