//! Control-plane wire protocol.
//!
//! §2 and §4.2 of the paper call for "a mechanism by which the controller
//! can actuate all the array elements rapidly" over a link that "does not
//! interfere with communication in the wireless data plane". The messages a
//! controller exchanges with elements are tiny — set-state commands and
//! acknowledgements — and every byte costs airtime on the low-rate control
//! channels under consideration, so the codec is explicit about its framing:
//!
//! ```text
//! | magic 0xPC (1B) | type (1B) | seq (u16 BE) | payload … | checksum (1B) |
//! ```
//!
//! The checksum is a simple XOR over all preceding bytes — enough to reject
//! corruption in a simulation and cheap enough for a µW element controller.

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Protocol magic byte.
pub const MAGIC: u8 = 0xAC;

/// A control-plane message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Message {
    /// Set one element's switch state.
    SetState {
        /// Sequence number for ack matching.
        seq: u16,
        /// Target element id.
        element: u16,
        /// Switch state to select.
        state: u8,
    },
    /// Set many elements at once (broadcast batch).
    BatchSet {
        /// Sequence number for ack matching.
        seq: u16,
        /// `(element, state)` assignments.
        assignments: Vec<(u16, u8)>,
    },
    /// Element → controller acknowledgement.
    Ack {
        /// Sequence number being acknowledged.
        seq: u16,
    },
    /// Controller liveness probe.
    Ping {
        /// Sequence number.
        seq: u16,
    },
}

/// Decode errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Buffer shorter than a minimal frame.
    Truncated,
    /// First byte was not [`MAGIC`].
    BadMagic(u8),
    /// Unknown message type byte.
    UnknownType(u8),
    /// Checksum mismatch.
    BadChecksum {
        /// Checksum in the frame.
        got: u8,
        /// Checksum computed over the frame body.
        expected: u8,
    },
    /// Batch length field disagrees with the remaining bytes.
    BadLength,
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "frame truncated"),
            CodecError::BadMagic(b) => write!(f, "bad magic byte 0x{b:02x}"),
            CodecError::UnknownType(t) => write!(f, "unknown message type 0x{t:02x}"),
            CodecError::BadChecksum { got, expected } => {
                write!(f, "checksum 0x{got:02x}, expected 0x{expected:02x}")
            }
            CodecError::BadLength => write!(f, "batch length disagrees with frame size"),
        }
    }
}

impl std::error::Error for CodecError {}

const TYPE_SET: u8 = 1;
const TYPE_BATCH: u8 = 2;
const TYPE_ACK: u8 = 3;
const TYPE_PING: u8 = 4;

fn xor_checksum(bytes: &[u8]) -> u8 {
    bytes.iter().fold(0u8, |a, b| a ^ b)
}

impl Message {
    /// The message's sequence number.
    pub fn seq(&self) -> u16 {
        match self {
            Message::SetState { seq, .. }
            | Message::BatchSet { seq, .. }
            | Message::Ack { seq }
            | Message::Ping { seq } => *seq,
        }
    }

    /// The acknowledgement for *this* message: an [`Message::Ack`] carrying
    /// this message's own sequence number. Elements must ack the frame they
    /// actually received — constructing the ack from any controller-side
    /// counter risks acknowledging a different batch (the historical
    /// off-by-one acked the *next* batch's seq).
    pub fn ack(&self) -> Message {
        Message::Ack { seq: self.seq() }
    }

    /// Encodes to a wire frame.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_u8(MAGIC);
        match self {
            Message::SetState {
                seq,
                element,
                state,
            } => {
                buf.put_u8(TYPE_SET);
                buf.put_u16(*seq);
                buf.put_u16(*element);
                buf.put_u8(*state);
            }
            Message::BatchSet { seq, assignments } => {
                buf.put_u8(TYPE_BATCH);
                buf.put_u16(*seq);
                buf.put_u16(assignments.len() as u16);
                for (element, state) in assignments {
                    buf.put_u16(*element);
                    buf.put_u8(*state);
                }
            }
            Message::Ack { seq } => {
                buf.put_u8(TYPE_ACK);
                buf.put_u16(*seq);
            }
            Message::Ping { seq } => {
                buf.put_u8(TYPE_PING);
                buf.put_u16(*seq);
            }
        }
        let ck = xor_checksum(&buf);
        buf.put_u8(ck);
        buf.freeze()
    }

    /// Decodes a wire frame.
    ///
    /// # Errors
    /// Any [`CodecError`] variant; the frame is never partially interpreted.
    pub fn decode(frame: &[u8]) -> Result<Message, CodecError> {
        if frame.len() < 5 {
            return Err(CodecError::Truncated);
        }
        let (body, ck) = frame.split_at(frame.len() - 1);
        let expected = xor_checksum(body);
        if ck[0] != expected {
            return Err(CodecError::BadChecksum {
                got: ck[0],
                expected,
            });
        }
        let mut buf = body;
        let magic = buf.get_u8();
        if magic != MAGIC {
            return Err(CodecError::BadMagic(magic));
        }
        let mtype = buf.get_u8();
        let seq = buf.get_u16();
        match mtype {
            TYPE_SET => {
                if buf.remaining() != 3 {
                    return Err(CodecError::BadLength);
                }
                let element = buf.get_u16();
                let state = buf.get_u8();
                Ok(Message::SetState {
                    seq,
                    element,
                    state,
                })
            }
            TYPE_BATCH => {
                if buf.remaining() < 2 {
                    return Err(CodecError::Truncated);
                }
                let n = buf.get_u16() as usize;
                if buf.remaining() != n * 3 {
                    return Err(CodecError::BadLength);
                }
                let assignments = (0..n)
                    .map(|_| {
                        let e = buf.get_u16();
                        let s = buf.get_u8();
                        (e, s)
                    })
                    .collect();
                Ok(Message::BatchSet { seq, assignments })
            }
            TYPE_ACK => {
                if buf.remaining() != 0 {
                    return Err(CodecError::BadLength);
                }
                Ok(Message::Ack { seq })
            }
            TYPE_PING => {
                if buf.remaining() != 0 {
                    return Err(CodecError::BadLength);
                }
                Ok(Message::Ping { seq })
            }
            t => Err(CodecError::UnknownType(t)),
        }
    }

    /// Encoded length in bytes (airtime accounting).
    pub fn wire_len(&self) -> usize {
        self.encode().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(m: Message) {
        let frame = m.encode();
        let back = Message::decode(&frame).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn roundtrip_all_variants() {
        roundtrip(Message::SetState {
            seq: 7,
            element: 300,
            state: 3,
        });
        roundtrip(Message::Ack { seq: 65535 });
        roundtrip(Message::Ping { seq: 0 });
        roundtrip(Message::BatchSet {
            seq: 9,
            assignments: vec![(0, 1), (1, 3), (500, 0)],
        });
        roundtrip(Message::BatchSet {
            seq: 1,
            assignments: vec![],
        });
    }

    #[test]
    fn truncated_rejected() {
        assert_eq!(Message::decode(&[MAGIC, 1]), Err(CodecError::Truncated));
        assert_eq!(Message::decode(&[]), Err(CodecError::Truncated));
    }

    #[test]
    fn corruption_detected() {
        let mut frame = Message::SetState {
            seq: 1,
            element: 2,
            state: 3,
        }
        .encode()
        .to_vec();
        frame[4] ^= 0xFF;
        assert!(matches!(
            Message::decode(&frame),
            Err(CodecError::BadChecksum { .. })
        ));
    }

    #[test]
    fn bad_magic_detected() {
        let mut frame = Message::Ping { seq: 1 }.encode().to_vec();
        frame[0] = 0x00;
        // Fix the checksum so magic is the failure detected.
        let n = frame.len();
        frame[n - 1] = frame[..n - 1].iter().fold(0, |a, b| a ^ b);
        assert_eq!(Message::decode(&frame), Err(CodecError::BadMagic(0)));
    }

    #[test]
    fn unknown_type_detected() {
        let mut frame = vec![MAGIC, 0x77, 0, 1];
        frame.push(frame.iter().fold(0, |a: u8, b| a ^ b));
        assert_eq!(Message::decode(&frame), Err(CodecError::UnknownType(0x77)));
    }

    #[test]
    fn batch_length_mismatch_detected() {
        let good = Message::BatchSet {
            seq: 2,
            assignments: vec![(1, 1)],
        }
        .encode()
        .to_vec();
        // Claim 2 assignments but carry 1.
        let mut bad = good.clone();
        bad[5] = 2; // low byte of the count
        let n = bad.len();
        bad[n - 1] = bad[..n - 1].iter().fold(0, |a, b| a ^ b);
        assert_eq!(Message::decode(&bad), Err(CodecError::BadLength));
    }

    #[test]
    fn wire_len_scales_with_batch() {
        let one = Message::BatchSet {
            seq: 0,
            assignments: vec![(0, 0)],
        }
        .wire_len();
        let ten = Message::BatchSet {
            seq: 0,
            assignments: (0..10).map(|i| (i, 0)).collect(),
        }
        .wire_len();
        assert_eq!(ten - one, 27, "3 bytes per extra assignment");
    }

    #[test]
    fn ack_carries_the_acked_messages_seq() {
        // Regression: the ack for a batch must carry the batch's own seq,
        // not a successor counter value.
        let batch = Message::BatchSet {
            seq: 41,
            assignments: vec![(1, 2)],
        };
        assert_eq!(batch.ack(), Message::Ack { seq: 41 });
        let set = Message::SetState {
            seq: 7,
            element: 3,
            state: 1,
        };
        assert_eq!(set.ack().seq(), 7);
    }

    #[test]
    fn seq_accessor() {
        assert_eq!(Message::Ack { seq: 42 }.seq(), 42);
        assert_eq!(
            Message::BatchSet {
                seq: 7,
                assignments: vec![]
            }
            .seq(),
            7
        );
    }
}
