//! Fault injection for the control plane: burst loss and broken elements.
//!
//! The RIS engineering literature (Liu et al., arXiv:2104.14985; Basar et
//! al., arXiv:2312.16874) singles out control-link reliability as the
//! make-or-break problem for deployed surfaces, and independent per-frame
//! loss is the *kindest* possible unreliability. Real control channels fail
//! in bursts (a microwave oven, a colliding WiFi transmission, a forklift
//! between the controller and the wall) and real elements fail outright
//! (a stuck varactor bias line, a dead element MCU). This module supplies
//! both:
//!
//! * [`GilbertElliott`] — the classic two-state burst-loss Markov chain:
//!   a *good* state with low loss and a *bad* (burst) state with high loss,
//!   stepped once per delivery trial;
//! * [`ElementFaults`] — per-element failure modes: *dead* elements that
//!   never apply or acknowledge anything, and *stuck* elements that
//!   acknowledge commands but remain frozen in one switch state, silently
//!   mis-configuring the array even under a perfectly reliable protocol;
//! * [`FaultPlan`] — the bundle the actuation entry points accept.
//!
//! An empty plan ([`FaultPlan::none`]) draws nothing from the RNG, so
//! un-faulted runs stay bit-identical to the pre-fault-injection code.

use rand::Rng;
use std::collections::BTreeMap;

/// Two-state Gilbert–Elliott burst-loss process.
///
/// The chain is stepped once per delivery trial; while in the *bad* state
/// consecutive trials share the elevated loss probability, which is exactly
/// the temporal correlation independent Bernoulli loss cannot express.
#[derive(Debug, Clone, PartialEq)]
pub struct GilbertElliott {
    /// Per-trial probability of entering a burst (good → bad).
    pub p_enter_burst: f64,
    /// Per-trial probability of leaving a burst (bad → good).
    pub p_exit_burst: f64,
    /// Frame loss probability in the good state.
    pub loss_good: f64,
    /// Frame loss probability inside a burst.
    pub loss_bad: f64,
    in_burst: bool,
}

impl GilbertElliott {
    /// Builds a chain starting in the good state.
    pub fn new(p_enter_burst: f64, p_exit_burst: f64, loss_good: f64, loss_bad: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p_enter_burst),
            "p_enter_burst out of range"
        );
        assert!(
            (0.0..=1.0).contains(&p_exit_burst),
            "p_exit_burst out of range"
        );
        GilbertElliott {
            p_enter_burst,
            p_exit_burst,
            loss_good,
            loss_bad,
            in_burst: false,
        }
    }

    /// Occasional short interference bursts: ~2% of trials in-burst,
    /// mean burst length 5 frames, 60% loss inside a burst.
    pub fn interference() -> Self {
        GilbertElliott::new(0.004, 0.2, 0.005, 0.6)
    }

    /// A hostile channel: long frequent bursts (mean length 20 frames,
    /// ~17% of trials in-burst) that drop nearly everything.
    pub fn jammed() -> Self {
        GilbertElliott::new(0.01, 0.05, 0.02, 0.95)
    }

    /// Whether the chain is currently inside a burst.
    pub fn in_burst(&self) -> bool {
        self.in_burst
    }

    /// Steps the chain one trial and returns the loss probability governing
    /// that trial. Consumes exactly one RNG draw.
    pub fn advance<R: Rng + ?Sized>(&mut self, rng: &mut R) -> f64 {
        let u = rng.gen::<f64>();
        if self.in_burst {
            if u < self.p_exit_burst {
                self.in_burst = false;
            }
        } else if u < self.p_enter_burst {
            self.in_burst = true;
        }
        if self.in_burst {
            self.loss_bad
        } else {
            self.loss_good
        }
    }

    /// Long-run fraction of trials spent in the burst state.
    pub fn burst_occupancy(&self) -> f64 {
        let denom = self.p_enter_burst + self.p_exit_burst;
        // Exact zero guard: both probabilities zero means a frozen chain, and
        // anything else would divide by zero below.
        // press-lint: allow(float-ordering)
        if denom == 0.0 {
            return 0.0;
        }
        self.p_enter_burst / denom
    }

    /// Long-run average frame loss probability.
    pub fn steady_state_loss(&self) -> f64 {
        let pi_bad = self.burst_occupancy();
        pi_bad * self.loss_bad + (1.0 - pi_bad) * self.loss_good
    }
}

/// How a single element is broken.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ElementFaultKind {
    /// The element's controller is dead: commands are received by nobody,
    /// nothing is ever applied or acknowledged.
    Dead,
    /// The switch is stuck in one state: the element *acknowledges*
    /// commands (its MCU is alive) but the array never leaves this state —
    /// the protocol believes the element is configured when it is not.
    Stuck(u8),
}

/// Per-element fault assignments, keyed by element id.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ElementFaults {
    faults: BTreeMap<u16, ElementFaultKind>,
}

impl ElementFaults {
    /// No broken elements.
    pub fn none() -> Self {
        ElementFaults::default()
    }

    /// Marks an element dead.
    pub fn dead(mut self, element: u16) -> Self {
        self.faults.insert(element, ElementFaultKind::Dead);
        self
    }

    /// Marks an element stuck in `state`.
    pub fn stuck(mut self, element: u16, state: u8) -> Self {
        self.faults.insert(element, ElementFaultKind::Stuck(state));
        self
    }

    /// Draws a deterministic random fault population: `n_dead` dead and
    /// `n_stuck` stuck elements (stuck state uniform in `0..n_states`)
    /// among element ids `0..n_elements`, without collisions.
    pub fn seeded<R: Rng + ?Sized>(
        n_elements: u16,
        n_dead: usize,
        n_stuck: usize,
        n_states: u8,
        rng: &mut R,
    ) -> Self {
        let mut faults = ElementFaults::none();
        let mut picked = Vec::new();
        let pick = |rng: &mut R, picked: &mut Vec<u16>| -> Option<u16> {
            if picked.len() >= n_elements as usize {
                return None;
            }
            loop {
                let e = rng.gen_range(0..n_elements as u32) as u16;
                if !picked.contains(&e) {
                    picked.push(e);
                    return Some(e);
                }
            }
        };
        for _ in 0..n_dead {
            if let Some(e) = pick(rng, &mut picked) {
                faults = faults.dead(e);
            }
        }
        for _ in 0..n_stuck {
            if let Some(e) = pick(rng, &mut picked) {
                let s = rng.gen_range(0..n_states.max(1) as u32) as u8;
                faults = faults.stuck(e, s);
            }
        }
        faults
    }

    /// True when no element is broken.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Number of broken elements.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// The element's fault, if any.
    pub fn get(&self, element: u16) -> Option<ElementFaultKind> {
        self.faults.get(&element).copied()
    }

    /// Whether the element responds to commands at all (acks, applies).
    pub fn responds(&self, element: u16) -> bool {
        !matches!(self.faults.get(&element), Some(ElementFaultKind::Dead))
    }

    /// The switch state the element actually ends up in after being
    /// commanded to `commanded`: `None` when the element is dead (it keeps
    /// whatever state it had), the stuck state for stuck elements, and the
    /// commanded state otherwise.
    pub fn realized_state(&self, element: u16, commanded: u8) -> Option<u8> {
        match self.faults.get(&element) {
            Some(ElementFaultKind::Dead) => None,
            Some(ElementFaultKind::Stuck(s)) => Some(*s),
            None => Some(commanded),
        }
    }

    /// Iterates `(element, fault)` pairs in element order.
    pub fn iter(&self) -> impl Iterator<Item = (u16, ElementFaultKind)> + '_ {
        self.faults.iter().map(|(&e, &f)| (e, f))
    }
}

/// The fault bundle an actuation run is subjected to.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Burst-loss process on the shared medium, if any. Stepped once per
    /// delivery trial; its loss probability *composes* with the transport's
    /// nominal loss (independent mechanisms: the medium can drop a frame on
    /// its own, and interference can kill it on top).
    pub burst: Option<GilbertElliott>,
    /// Broken elements.
    pub elements: ElementFaults,
}

impl FaultPlan {
    /// No faults: draws nothing, changes nothing.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Burst loss only.
    pub fn bursty(chain: GilbertElliott) -> Self {
        FaultPlan {
            burst: Some(chain),
            elements: ElementFaults::none(),
        }
    }

    /// Element faults only.
    pub fn broken(elements: ElementFaults) -> Self {
        FaultPlan {
            burst: None,
            elements,
        }
    }

    /// True when the plan injects nothing.
    pub fn is_ideal(&self) -> bool {
        self.burst.is_none() && self.elements.is_empty()
    }

    /// The loss probability governing the next delivery trial. With a burst
    /// chain present it is stepped (one RNG draw) and its loss composes with
    /// the transport's nominal loss as independent drop mechanisms:
    /// `1 − (1−nominal)·(1−burst)`. Without a chain the nominal passes
    /// through untouched (no draw).
    pub fn frame_loss<R: Rng + ?Sized>(&mut self, nominal: f64, rng: &mut R) -> f64 {
        match &mut self.burst {
            Some(chain) => {
                let burst = chain.advance(rng);
                1.0 - (1.0 - nominal) * (1.0 - burst)
            }
            None => nominal,
        }
    }
}

/// Parameters of a [`GilbertElliott`] chain in plain-data form, as carried
/// by fault-injection commands on the daemon wire protocol.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurstSpec {
    /// Per-trial probability of entering a burst (good → bad).
    pub p_enter_burst: f64,
    /// Per-trial probability of leaving a burst (bad → good).
    pub p_exit_burst: f64,
    /// Frame loss probability in the good state.
    pub loss_good: f64,
    /// Frame loss probability inside a burst.
    pub loss_bad: f64,
}

impl BurstSpec {
    /// The chain these parameters describe, starting in the good state.
    pub fn to_chain(self) -> GilbertElliott {
        GilbertElliott::new(
            self.p_enter_burst,
            self.p_exit_burst,
            self.loss_good,
            self.loss_bad,
        )
    }
}

impl From<&GilbertElliott> for BurstSpec {
    fn from(chain: &GilbertElliott) -> BurstSpec {
        BurstSpec {
            p_enter_burst: chain.p_enter_burst,
            p_exit_burst: chain.p_exit_burst,
            loss_good: chain.loss_good,
            loss_bad: chain.loss_bad,
        }
    }
}

/// A [`FaultPlan`] in plain-data form: the payload of a fault-injection
/// command. Unlike the plan it builds, a spec is `PartialEq`-comparable and
/// carries no chain state, so it round-trips losslessly through a wire
/// protocol.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultSpec {
    /// Burst-loss chain parameters, if any.
    pub burst: Option<BurstSpec>,
    /// Elements whose controllers are dead.
    pub dead: Vec<u16>,
    /// `(element, state)` pairs of stuck switches.
    pub stuck: Vec<(u16, u8)>,
}

impl FaultSpec {
    /// A spec injecting nothing.
    pub fn none() -> FaultSpec {
        FaultSpec::default()
    }

    /// True when the spec injects nothing.
    pub fn is_ideal(&self) -> bool {
        self.burst.is_none() && self.dead.is_empty() && self.stuck.is_empty()
    }

    /// Builds the runnable plan. Dead markings win over stuck markings for
    /// an element listed in both (matching `ElementFaults` builder order).
    pub fn to_plan(&self) -> FaultPlan {
        let mut elements = ElementFaults::none();
        for &(e, s) in &self.stuck {
            elements = elements.stuck(e, s);
        }
        for &e in &self.dead {
            elements = elements.dead(e);
        }
        FaultPlan {
            burst: self.burst.map(BurstSpec::to_chain),
            elements,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fault_spec_builds_the_plan_it_describes() {
        let spec = FaultSpec {
            burst: Some(BurstSpec {
                p_enter_burst: 0.004,
                p_exit_burst: 0.2,
                loss_good: 0.005,
                loss_bad: 0.6,
            }),
            dead: vec![3],
            stuck: vec![(5, 2), (3, 1)],
        };
        assert!(!spec.is_ideal());
        let plan = spec.to_plan();
        assert_eq!(plan.burst, Some(GilbertElliott::interference()));
        // Element 3 is listed both stuck and dead: dead wins.
        assert_eq!(plan.elements.get(3), Some(ElementFaultKind::Dead));
        assert_eq!(plan.elements.get(5), Some(ElementFaultKind::Stuck(2)));
        assert!(FaultSpec::none().is_ideal());
        assert!(FaultSpec::none().to_plan().is_ideal());
    }

    #[test]
    fn steady_state_loss_matches_empirical() {
        let mut ge = GilbertElliott::interference();
        let expected = ge.steady_state_loss();
        let mut rng = StdRng::seed_from_u64(1);
        let n = 200_000;
        let mut lost = 0usize;
        for _ in 0..n {
            let p = ge.advance(&mut rng);
            if rng.gen::<f64>() < p {
                lost += 1;
            }
        }
        let rate = lost as f64 / n as f64;
        assert!(
            (rate - expected).abs() < 0.15 * expected.max(0.01),
            "empirical {rate} vs analytic {expected}"
        );
    }

    #[test]
    fn bursts_are_temporally_correlated() {
        // Inside a burst the next trial is very likely still a burst: count
        // bad→bad transitions vs the unconditional bad rate.
        let mut ge = GilbertElliott::interference();
        let mut rng = StdRng::seed_from_u64(2);
        let mut bad_after_bad = 0usize;
        let mut bad_total = 0usize;
        let mut prev_bad = false;
        let n = 100_000;
        for _ in 0..n {
            ge.advance(&mut rng);
            let bad = ge.in_burst();
            if bad {
                bad_total += 1;
                if prev_bad {
                    bad_after_bad += 1;
                }
            }
            prev_bad = bad;
        }
        let occupancy = bad_total as f64 / n as f64;
        let persistence = bad_after_bad as f64 / bad_total.max(1) as f64;
        assert!(
            persistence > 3.0 * occupancy,
            "persistence {persistence} vs occupancy {occupancy}: not bursty"
        );
    }

    #[test]
    fn burst_occupancy_analytic() {
        let ge = GilbertElliott::new(0.01, 0.04, 0.0, 1.0);
        assert!((ge.burst_occupancy() - 0.2).abs() < 1e-12);
        assert!((ge.steady_state_loss() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn element_fault_realized_states() {
        let f = ElementFaults::none().dead(3).stuck(5, 2);
        assert_eq!(f.realized_state(0, 1), Some(1));
        assert_eq!(f.realized_state(3, 1), None);
        assert_eq!(f.realized_state(5, 1), Some(2));
        assert!(f.responds(0) && f.responds(5));
        assert!(!f.responds(3));
        assert_eq!(f.len(), 2);
    }

    #[test]
    fn seeded_faults_are_deterministic_and_disjoint() {
        let a = ElementFaults::seeded(64, 3, 4, 4, &mut StdRng::seed_from_u64(7));
        let b = ElementFaults::seeded(64, 3, 4, 4, &mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
        assert_eq!(a.len(), 7, "collisions must be re-drawn");
    }

    #[test]
    fn burst_loss_composes_with_nominal_loss() {
        // A bursty plan must never *reduce* the medium's own loss: the two
        // mechanisms are independent, so the combined probability is
        // 1 − (1−nominal)(1−burst) ≥ max(nominal, burst).
        let mut plan = FaultPlan::bursty(GilbertElliott::new(0.0, 1.0, 0.2, 0.9));
        let mut rng = StdRng::seed_from_u64(4);
        let p = plan.frame_loss(0.5, &mut rng);
        // Chain stays in the good state (p_enter = 0): 1 − 0.5·0.8 = 0.6.
        assert!((p - 0.6).abs() < 1e-12, "composed loss {p}");
    }

    #[test]
    fn ideal_plan_draws_nothing() {
        let mut plan = FaultPlan::none();
        assert!(plan.is_ideal());
        let mut rng = StdRng::seed_from_u64(3);
        let before = rng.gen::<u64>();
        let mut rng2 = StdRng::seed_from_u64(3);
        assert_eq!(plan.frame_loss(0.05, &mut rng2), 0.05);
        assert_eq!(rng2.gen::<u64>(), before, "no RNG draw for ideal plan");
    }
}
