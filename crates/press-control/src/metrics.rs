//! Control-plane observability: counters and histograms, exported to CSV.
//!
//! Deployed surfaces live or die by their control-plane health, and §4.2's
//! timing argument is a statement about *distributions* — how often does an
//! actuation fit the coherence budget, not just whether one seeded run did.
//! This registry is the lightweight instrument: the actuation entry points
//! ([`actuate_with`](crate::actuation::actuate_with),
//! [`simulate_actuation_with`](crate::des::simulate_actuation_with)) accept
//! an optional `&mut ControlMetrics` and record every frame, loss, retry
//! and completion into it. The registry is plain data — no atomics, no
//! globals — so sweeps own one per scenario cell and export rows.

use std::fmt;

/// A fixed-bucket histogram over `f64` observations.
///
/// Buckets are `(-inf, bounds[0]], (bounds[0], bounds[1]], …, (last, +inf)`;
/// the exact count, sum, min and max are tracked alongside so means are not
/// quantized.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    nan_count: u64,
}

impl Histogram {
    /// Builds a histogram with explicit ascending bucket upper bounds.
    pub fn new(bounds: Vec<f64>) -> Self {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        let n = bounds.len() + 1;
        Histogram {
            bounds,
            counts: vec![0; n],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            nan_count: 0,
        }
    }

    /// Exponential bounds: `start, start·factor, …` (`n` bounds). The
    /// default latency/completion grids use this.
    pub fn exponential(start: f64, factor: f64, n: usize) -> Self {
        assert!(
            start > 0.0 && factor > 1.0,
            "need positive start, factor > 1"
        );
        let mut bounds = Vec::with_capacity(n);
        let mut b = start;
        for _ in 0..n {
            bounds.push(b);
            b *= factor;
        }
        Histogram::new(bounds)
    }

    /// A latency grid: 1 µs to ~1000 s in half-decade steps.
    pub fn latency_grid() -> Self {
        Histogram::exponential(1e-6, 10f64.sqrt(), 18)
    }

    /// Records one observation. NaN observations are counted separately
    /// (see [`nans`](Self::nans)) and excluded from the buckets and the
    /// moments — before this guard a NaN fell through `position` into the
    /// overflow bucket and poisoned `sum`/`min`/`max` permanently.
    pub fn observe(&mut self, v: f64) {
        if v.is_nan() {
            self.nan_count += 1;
            return;
        }
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of (non-NaN) observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Number of NaN observations rejected from the distribution.
    pub fn nans(&self) -> u64 {
        self.nan_count
    }

    /// Mean of the observations (NaN when empty).
    pub fn mean(&self) -> f64 {
        self.sum / self.count as f64
    }

    /// Exact sum of all (non-NaN) observations. Zero when empty — the
    /// Prometheus `_sum` sample, alongside [`count`](Self::count)'s
    /// `_count`.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Smallest observation (+inf when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (-inf when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Approximate quantile (0..=1) from the bucket boundaries: returns the
    /// upper bound of the bucket containing the q-quantile (the exact max
    /// for the overflow bucket). NaN when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return f64::NAN;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return if i < self.bounds.len() {
                    self.bounds[i]
                } else {
                    self.max
                };
            }
        }
        self.max
    }

    /// Bucket-interpolated quantile estimate (0..=1): linear interpolation
    /// within the bucket containing the q-quantile, with the bucket edges
    /// clamped to the observed `min`/`max` so the estimate never leaves the
    /// observed range. Sharper than [`quantile`](Self::quantile) (which
    /// reports the bucket's upper bound) on wide exponential grids. NaN
    /// when empty.
    pub fn quantile_est(&self, q: f64) -> f64 {
        if self.count == 0 {
            return f64::NAN;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c >= target {
                let lo = if i == 0 {
                    self.min
                } else {
                    self.bounds[i - 1].max(self.min)
                };
                let hi = if i < self.bounds.len() {
                    self.bounds[i].min(self.max)
                } else {
                    self.max
                };
                let frac = (target - seen) as f64 / c as f64;
                return lo + (hi - lo) * frac;
            }
            seen += c;
        }
        self.max
    }

    /// Merges another histogram with identical bounds into this one.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.bounds, other.bounds, "histogram bounds differ");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.nan_count += other.nan_count;
    }

    /// `(upper_bound, count)` pairs, the overflow bucket as `+inf`.
    pub fn buckets(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        self.bounds
            .iter()
            .copied()
            .chain(std::iter::once(f64::INFINITY))
            .zip(self.counts.iter().copied())
    }
}

/// The control-plane metrics registry one actuation campaign accumulates.
#[derive(Debug, Clone, PartialEq)]
pub struct ControlMetrics {
    /// Command frames put on the medium.
    pub frames_tx: u64,
    /// Command frames lost before reaching their element.
    pub frames_lost: u64,
    /// Acks received by the controller.
    pub acks_rx: u64,
    /// Acks lost on the way back.
    pub acks_lost: u64,
    /// Retransmission attempts (frames beyond each element's first).
    pub retries: u64,
    /// Elements given up on with no applied state.
    pub failed_elements: u64,
    /// Elements that applied but were never confirmed.
    pub unconfirmed_elements: u64,
    /// Actuation rounds recorded.
    pub actuations: u64,
    /// One-way frame latency distribution, seconds.
    pub frame_latency: Histogram,
    /// Batch completion-time distribution, seconds.
    pub completion: Histogram,
}

impl Default for ControlMetrics {
    fn default() -> Self {
        ControlMetrics::new()
    }
}

impl ControlMetrics {
    /// An empty registry with the default latency grids.
    pub fn new() -> Self {
        ControlMetrics {
            frames_tx: 0,
            frames_lost: 0,
            acks_rx: 0,
            acks_lost: 0,
            retries: 0,
            failed_elements: 0,
            unconfirmed_elements: 0,
            actuations: 0,
            frame_latency: Histogram::latency_grid(),
            completion: Histogram::latency_grid(),
        }
    }

    /// Fraction of command frames lost (0 when none were sent).
    pub fn frame_loss_rate(&self) -> f64 {
        if self.frames_tx == 0 {
            0.0
        } else {
            self.frames_lost as f64 / self.frames_tx as f64
        }
    }

    /// Merges another registry into this one.
    pub fn merge(&mut self, other: &ControlMetrics) {
        self.frames_tx += other.frames_tx;
        self.frames_lost += other.frames_lost;
        self.acks_rx += other.acks_rx;
        self.acks_lost += other.acks_lost;
        self.retries += other.retries;
        self.failed_elements += other.failed_elements;
        self.unconfirmed_elements += other.unconfirmed_elements;
        self.actuations += other.actuations;
        self.frame_latency.merge(&other.frame_latency);
        self.completion.merge(&other.completion);
    }

    /// The CSV header matching [`csv_row`](Self::csv_row). The trailing
    /// `*_est` columns are bucket-interpolated tail estimates
    /// ([`Histogram::quantile_est`]), appended after the original columns
    /// so existing consumers keep their offsets.
    pub fn csv_header() -> &'static str {
        "frames_tx,frames_lost,loss_rate,acks_rx,acks_lost,retries,failed,unconfirmed,\
         actuations,lat_mean_s,lat_p95_s,completion_mean_s,completion_p95_s,completion_max_s,\
         lat_p50_est_s,lat_p95_est_s,lat_p99_est_s,\
         completion_p50_est_s,completion_p95_est_s,completion_p99_est_s"
    }

    /// One flat CSV row of the registry's counters and summary statistics.
    pub fn csv_row(&self) -> String {
        format!(
            "{},{},{:.6},{},{},{},{},{},{},{:.6e},{:.6e},{:.6e},{:.6e},{:.6e},{:.6e},{:.6e},{:.6e},{:.6e},{:.6e},{:.6e}",
            self.frames_tx,
            self.frames_lost,
            self.frame_loss_rate(),
            self.acks_rx,
            self.acks_lost,
            self.retries,
            self.failed_elements,
            self.unconfirmed_elements,
            self.actuations,
            zero_if_empty(self.frame_latency.count(), self.frame_latency.mean()),
            zero_if_empty(
                self.frame_latency.count(),
                self.frame_latency.quantile(0.95)
            ),
            zero_if_empty(self.completion.count(), self.completion.mean()),
            zero_if_empty(self.completion.count(), self.completion.quantile(0.95)),
            zero_if_empty(self.completion.count(), self.completion.max()),
            zero_if_empty(
                self.frame_latency.count(),
                self.frame_latency.quantile_est(0.5)
            ),
            zero_if_empty(
                self.frame_latency.count(),
                self.frame_latency.quantile_est(0.95)
            ),
            zero_if_empty(
                self.frame_latency.count(),
                self.frame_latency.quantile_est(0.99)
            ),
            zero_if_empty(self.completion.count(), self.completion.quantile_est(0.5)),
            zero_if_empty(self.completion.count(), self.completion.quantile_est(0.95)),
            zero_if_empty(self.completion.count(), self.completion.quantile_est(0.99)),
        )
    }
}

/// Per-link control-plane metrics of one multi-link (smart-space) campaign.
///
/// A smart space actuates *one* shared array configuration per episode, so
/// there is a single wire truth — recorded in [`space`](Self::space) — while
/// every link the actuation served gets the same counters attributed to its
/// own row. The per-link rows therefore deliberately double-count the shared
/// wire (they answer "what control-plane behavior did this link experience",
/// not "how many frames did this link cause"); sum the `space` rows, never
/// the link rows, when aggregating across campaigns.
#[derive(Debug, Clone, PartialEq)]
pub struct SpaceMetrics {
    /// The wire truth: every frame, loss, retry and completion exactly once.
    pub space: ControlMetrics,
    /// Per-link attributed rows: `(link id, label, metrics)`, in link order.
    pub links: Vec<(u32, String, ControlMetrics)>,
}

impl SpaceMetrics {
    /// An empty registry for the given `(link id, label)` set.
    pub fn new(links: &[(u32, String)]) -> Self {
        SpaceMetrics {
            space: ControlMetrics::new(),
            links: links
                .iter()
                .map(|(id, label)| (*id, label.clone(), ControlMetrics::new()))
                .collect(),
        }
    }

    /// Records one shared actuation: merged once into the wire-truth row
    /// and attributed to every link row.
    pub fn record_shared(&mut self, actuation: &ControlMetrics) {
        self.space.merge(actuation);
        for (_, _, m) in &mut self.links {
            m.merge(actuation);
        }
    }

    /// Registers a link row mid-campaign (a client associating under
    /// churn). A fresh zeroed row is appended; if the id is already
    /// present the call only refreshes its label, so replaying a churn
    /// schedule over a warm registry is idempotent. Earlier shared
    /// actuations are *not* back-attributed — the new row records only
    /// the control-plane behavior the link actually experienced.
    pub fn add_link(&mut self, id: u32, label: &str) {
        match self.links.iter_mut().find(|(i, _, _)| *i == id) {
            Some((_, l, _)) => {
                if l != label {
                    *l = label.to_string();
                }
            }
            None => self
                .links
                .push((id, label.to_string(), ControlMetrics::new())),
        }
    }

    /// Records one shared actuation for a subset of the registry: merged
    /// once into the wire-truth row but attributed only to the link rows
    /// whose ids appear in `ids` — the churn-aware variant of
    /// [`record_shared`](Self::record_shared), for episodes where some
    /// registered rows belong to links that had already left the space.
    pub fn record_shared_for(&mut self, ids: &[u32], actuation: &ControlMetrics) {
        self.space.merge(actuation);
        for (id, _, m) in &mut self.links {
            if ids.contains(id) {
                m.merge(actuation);
            }
        }
    }

    /// Merges another registry into this one. Link rows are matched by id;
    /// ids unknown to `self` are appended.
    pub fn merge(&mut self, other: &SpaceMetrics) {
        self.space.merge(&other.space);
        for (id, label, m) in &other.links {
            match self.links.iter_mut().find(|(i, _, _)| i == id) {
                Some((_, _, mine)) => mine.merge(m),
                None => self.links.push((*id, label.clone(), m.clone())),
            }
        }
    }

    /// The CSV header matching [`csv_rows`](Self::csv_rows).
    pub fn csv_header() -> String {
        format!("link_id,label,{}", ControlMetrics::csv_header())
    }

    /// One row per link plus a final `space` wire-truth row. Labels are
    /// quoted so commas in link labels cannot shear the columns.
    pub fn csv_rows(&self) -> Vec<String> {
        let mut rows: Vec<String> = self
            .links
            .iter()
            .map(|(id, label, m)| format!("{},\"{}\",{}", id, label, m.csv_row()))
            .collect();
        rows.push(format!("space,\"all links\",{}", self.space.csv_row()));
        rows
    }
}

fn zero_if_empty(count: u64, v: f64) -> f64 {
    if count == 0 {
        0.0
    } else {
        v
    }
}

impl fmt::Display for ControlMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "frames {} (lost {:.2}%), acks {}, retries {}, failed {}, unconfirmed {}, \
             completion mean {:.3} ms / p95 {:.3} ms over {} actuations",
            self.frames_tx,
            100.0 * self.frame_loss_rate(),
            self.acks_rx,
            self.retries,
            self.failed_elements,
            self.unconfirmed_elements,
            1e3 * zero_if_empty(self.completion.count(), self.completion.mean()),
            1e3 * zero_if_empty(self.completion.count(), self.completion.quantile(0.95)),
            self.actuations,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_counts_and_moments() {
        let mut h = Histogram::new(vec![1.0, 10.0, 100.0]);
        for v in [0.5, 2.0, 5.0, 50.0, 500.0] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert!((h.mean() - 111.5).abs() < 1e-12);
        assert_eq!(h.min(), 0.5);
        assert_eq!(h.max(), 500.0);
        let counts: Vec<u64> = h.buckets().map(|(_, c)| c).collect();
        assert_eq!(counts, vec![1, 2, 1, 1]);
    }

    #[test]
    fn histogram_quantiles_bracket() {
        let mut h = Histogram::exponential(1e-3, 10.0, 5);
        for _ in 0..90 {
            h.observe(5e-3); // bucket <= 1e-2
        }
        for _ in 0..10 {
            h.observe(5.0); // bucket <= 10
        }
        assert_eq!(h.quantile(0.5), 1e-2);
        assert_eq!(h.quantile(0.95), 10.0);
    }

    #[test]
    fn histogram_nan_observations_do_not_poison_moments() {
        let mut h = Histogram::new(vec![1.0, 10.0]);
        h.observe(2.0);
        h.observe(f64::NAN);
        h.observe(4.0);
        // NaNs counted apart, excluded from count/buckets/moments.
        assert_eq!(h.nans(), 2 - 1);
        assert_eq!(h.count(), 2);
        assert_eq!(h.mean(), 3.0);
        assert_eq!(h.min(), 2.0);
        assert_eq!(h.max(), 4.0);
        let counts: Vec<u64> = h.buckets().map(|(_, c)| c).collect();
        assert_eq!(counts, vec![0, 2, 0], "NaN must not land in a bucket");
        assert_eq!(h.quantile(0.95), 10.0);

        // Merging carries the NaN tally along.
        let mut other = Histogram::new(vec![1.0, 10.0]);
        other.observe(f64::NAN);
        h.merge(&other);
        assert_eq!(h.nans(), 2);
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn quantile_est_interpolates_within_buckets() {
        let mut h = Histogram::new(vec![0.0, 10.0, 100.0]);
        // 10 observations uniform in (0, 10]: bucket 1 holds all of them.
        for i in 1..=10 {
            h.observe(i as f64);
        }
        // Coarse quantile can only answer the bucket's upper bound...
        assert_eq!(h.quantile(0.5), 10.0);
        // ...while the interpolated estimate splits the bucket: target rank 5
        // of 10 → lo + (hi-lo)·(5/10) with lo=min=1, hi=10.
        assert!((h.quantile_est(0.5) - 5.5).abs() < 1e-12);
        assert!((h.quantile_est(1.0) - 10.0).abs() < 1e-12);
        // Estimates never leave the observed range.
        assert!(h.quantile_est(0.01) >= h.min());
        assert!(h.quantile_est(0.99) <= h.max());
        // Overflow bucket estimate is bounded by the observed max.
        h.observe(1e6);
        assert_eq!(h.quantile_est(1.0), 1e6);
        // Empty histogram: NaN, matching quantile().
        assert!(Histogram::new(vec![1.0]).quantile_est(0.5).is_nan());
    }

    #[test]
    fn histogram_merge_adds() {
        let mut a = Histogram::new(vec![1.0]);
        let mut b = Histogram::new(vec![1.0]);
        a.observe(0.5);
        b.observe(2.0);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max(), 2.0);
    }

    #[test]
    #[should_panic(expected = "bounds differ")]
    fn histogram_merge_rejects_mismatched_bounds() {
        let mut a = Histogram::new(vec![1.0]);
        let b = Histogram::new(vec![2.0]);
        a.merge(&b);
    }

    #[test]
    #[should_panic(expected = "bounds differ")]
    fn histogram_merge_rejects_mismatched_bound_counts() {
        // Different bucket *counts*, not just different values — the
        // assert must catch a coarser grid, not only a shifted one.
        let mut a = Histogram::new(vec![1.0, 2.0]);
        let b = Histogram::new(vec![1.0]);
        a.merge(&b);
    }

    #[test]
    fn registry_csv_row_shape() {
        let mut m = ControlMetrics::new();
        m.frames_tx = 10;
        m.frames_lost = 1;
        m.completion.observe(1e-3);
        let header_cols = ControlMetrics::csv_header().split(',').count();
        let row_cols = m.csv_row().split(',').count();
        assert_eq!(header_cols, row_cols);
        assert!((m.frame_loss_rate() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn space_metrics_attribute_shared_actuations_per_link() {
        let mut sm = SpaceMetrics::new(&[(0, "H11".into()), (1, "H22".into())]);
        let mut act = ControlMetrics::new();
        act.frames_tx = 5;
        act.actuations = 1;
        act.completion.observe(2e-3);
        sm.record_shared(&act);
        // Wire truth counts once; each link row sees the shared actuation.
        assert_eq!(sm.space.frames_tx, 5);
        for (_, _, m) in &sm.links {
            assert_eq!(m.frames_tx, 5);
            assert_eq!(m.actuations, 1);
        }
        let header_cols = SpaceMetrics::csv_header().split(',').count();
        for row in sm.csv_rows() {
            assert_eq!(row.split(',').count(), header_cols, "{row}");
        }
        assert_eq!(sm.csv_rows().len(), 3, "2 links + 1 space row");
        assert!(sm.csv_rows().last().unwrap().starts_with("space,"));
    }

    #[test]
    fn space_metrics_survive_churn() {
        let mut sm = SpaceMetrics::new(&[(0, "a".into()), (1, "b".into())]);
        let mut act = ControlMetrics::new();
        act.frames_tx = 3;
        act.actuations = 1;
        sm.record_shared(&act);

        // Link 1 leaves, a new client gets the next id.
        sm.add_link(2, "c");
        assert_eq!(sm.links.len(), 3);
        // No back-attribution: the newcomer's row starts zeroed.
        assert_eq!(sm.links[2].2.frames_tx, 0);

        // The next episode serves only the survivors.
        sm.record_shared_for(&[0, 2], &act);
        assert_eq!(sm.space.frames_tx, 6, "wire truth counts every frame");
        assert_eq!(sm.links[0].2.frames_tx, 6);
        assert_eq!(sm.links[1].2.frames_tx, 3, "departed link's row froze");
        assert_eq!(sm.links[2].2.frames_tx, 3);

        // Re-adding an existing id is a label refresh, not a reset.
        sm.add_link(0, "a-roamed");
        assert_eq!(sm.links.len(), 3);
        assert_eq!(sm.links[0].1, "a-roamed");
        assert_eq!(sm.links[0].2.frames_tx, 6);
    }

    #[test]
    fn space_metrics_merge_matches_ids() {
        let mut a = SpaceMetrics::new(&[(0, "a".into())]);
        let mut b = SpaceMetrics::new(&[(0, "a".into()), (1, "b".into())]);
        let mut act = ControlMetrics::new();
        act.frames_tx = 2;
        b.record_shared(&act);
        a.merge(&b);
        assert_eq!(a.space.frames_tx, 2);
        assert_eq!(a.links.len(), 2, "unknown id is appended");
        assert_eq!(a.links[0].2.frames_tx, 2);
    }

    #[test]
    fn space_metrics_merge_keeps_departed_rows_frozen() {
        // Shard `a` saw link 1 depart mid-campaign: its row froze at the
        // pre-departure counters. Shard `b` never knew link 1 at all.
        let mut a = SpaceMetrics::new(&[(0, "stay".into()), (1, "gone".into())]);
        let mut act = ControlMetrics::new();
        act.frames_tx = 3;
        act.actuations = 1;
        a.record_shared(&act); // both rows: 3 frames
        a.record_shared_for(&[0], &act); // link 1 already departed

        let mut b = SpaceMetrics::new(&[(0, "stay".into())]);
        b.record_shared(&act);

        a.merge(&b);
        // The survivor accumulates across shards; the departed row stays
        // frozen because no shard attributed new traffic to it.
        assert_eq!(a.links[0].2.frames_tx, 9);
        assert_eq!(a.links[1].2.frames_tx, 3, "departed row must stay frozen");
        assert_eq!(a.space.frames_tx, 9, "wire truth sums both shards");

        // Merging the other way appends the frozen row untouched.
        let mut c = SpaceMetrics::new(&[(0, "stay".into())]);
        c.merge(&a);
        assert_eq!(c.links.len(), 2, "frozen row is appended by id");
        assert_eq!(c.links[1].0, 1);
        assert_eq!(c.links[1].2.frames_tx, 3);
    }

    #[test]
    fn registry_merge() {
        let mut a = ControlMetrics::new();
        let mut b = ControlMetrics::new();
        a.frames_tx = 3;
        b.frames_tx = 4;
        b.retries = 2;
        a.merge(&b);
        assert_eq!(a.frames_tx, 7);
        assert_eq!(a.retries, 2);
    }
}
