//! Pilot-based residual phase tracking across payload symbols.
//!
//! After initial CFO correction a receiver still accumulates residual phase
//! (imperfect estimate + phase noise). 802.11 dedicates four pilot
//! subcarriers per OFDM symbol to track it: the receiver compares the
//! received pilots against their known values and derotates each payload
//! symbol by the common phase it finds. Without this, long frames rotate
//! slowly off the constellation grid and the paper's "greater bit rate"
//! payoff evaporates for large QAM.

use press_math::Complex64;

/// Pilot positions for a 52-active-subcarrier layout, as plot indices —
/// mirroring 802.11a's ±7, ±21 (mapped into ascending order).
pub const PILOT_INDICES_52: [usize; 4] = [5, 19, 32, 46];

/// The pilot polarity sequence of 802.11a repeats a 127-element PN
/// sequence; one period's first values are enough for the frame lengths the
/// workspace uses. True = +1.
const PILOT_POLARITY: [bool; 16] = [
    true, true, true, true, false, false, false, true, false, false, false, false, true, true,
    false, true,
];

/// The known pilot values for payload symbol `m` (all four pilots share the
/// symbol's polarity, as in 802.11a).
pub fn pilot_values(m: usize) -> [Complex64; 4] {
    let sign = if PILOT_POLARITY[m % PILOT_POLARITY.len()] {
        1.0
    } else {
        -1.0
    };
    [Complex64::real(sign); 4]
}

/// Estimates the common residual phase of one received symbol from its
/// pilots, given the channel estimate at the pilot subcarriers.
///
/// Power-weighted ML combiner: `arg Σ_p y_p · conj(h_p · x_p)`.
pub fn residual_phase(
    received: &[Complex64],
    h: &[Complex64],
    pilot_indices: &[usize],
    symbol_index: usize,
) -> f64 {
    let known = pilot_values(symbol_index);
    let mut acc = Complex64::ZERO;
    for (slot, &k) in pilot_indices.iter().enumerate() {
        let expect = h[k] * known[slot.min(3)];
        acc += received[k] * expect.conj();
    }
    acc.arg()
}

/// Tracks and removes residual phase across a sequence of payload symbols,
/// in place. Returns the per-symbol phases removed.
pub fn track_and_correct(
    symbols: &mut [Vec<Complex64>],
    h: &[Complex64],
    pilot_indices: &[usize],
) -> Vec<f64> {
    let mut phases = Vec::with_capacity(symbols.len());
    for (m, sym) in symbols.iter_mut().enumerate() {
        let phi = residual_phase(sym, h, pilot_indices, m);
        let rot = Complex64::cis(-phi);
        for x in sym.iter_mut() {
            *x *= rot;
        }
        phases.push(phi);
    }
    phases
}

/// Inserts pilots into a payload symbol (overwrites the pilot subcarriers
/// with the known values) — the transmit-side counterpart.
pub fn insert_pilots(symbol: &mut [Complex64], pilot_indices: &[usize], symbol_index: usize) {
    let known = pilot_values(symbol_index);
    for (slot, &k) in pilot_indices.iter().enumerate() {
        symbol[k] = known[slot.min(3)];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn gaussian<R: Rng>(rng: &mut R) -> f64 {
        let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        let u2: f64 = rng.gen();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    fn channel() -> Vec<Complex64> {
        (0..52)
            .map(|k| Complex64::from_polar(0.01 + 0.002 * (k as f64 * 0.3).sin(), k as f64 * 0.1))
            .collect()
    }

    fn make_symbols(n: usize, h: &[Complex64], drift_per_symbol: f64) -> Vec<Vec<Complex64>> {
        (0..n)
            .map(|m| {
                let rot = Complex64::cis(drift_per_symbol * m as f64);
                let mut sym: Vec<Complex64> = h
                    .iter()
                    .map(|hk| *hk * Complex64::real(1.0) * rot)
                    .collect();
                // Place proper pilots (then the channel + rotation applies).
                let known = pilot_values(m);
                for (slot, &k) in PILOT_INDICES_52.iter().enumerate() {
                    sym[k] = h[k] * known[slot] * rot;
                }
                sym
            })
            .collect()
    }

    #[test]
    fn recovers_linear_phase_drift() {
        let h = channel();
        let drift = 0.07;
        let mut symbols = make_symbols(12, &h, drift);
        let phases = track_and_correct(&mut symbols, &h, &PILOT_INDICES_52);
        for (m, &phi) in phases.iter().enumerate() {
            let expect = drift * m as f64;
            // Angles compare modulo 2π.
            let diff = (phi - expect).rem_euclid(std::f64::consts::TAU);
            let diff = diff.min(std::f64::consts::TAU - diff);
            assert!(diff < 1e-9, "symbol {m}: {phi} vs {expect}");
        }
        // After correction, all symbols should agree with symbol 0's data
        // subcarriers (pure channel, no rotation).
        for (m, sym) in symbols.iter().enumerate().skip(1) {
            for k in 0..52 {
                if PILOT_INDICES_52.contains(&k) {
                    continue;
                }
                assert!(
                    (sym[k] - h[k]).abs() < 1e-9,
                    "symbol {m} subcarrier {k} still rotated"
                );
            }
        }
    }

    #[test]
    fn zero_drift_measures_zero_phase() {
        let h = channel();
        let mut symbols = make_symbols(4, &h, 0.0);
        let phases = track_and_correct(&mut symbols, &h, &PILOT_INDICES_52);
        for &phi in &phases {
            assert!(phi.abs() < 1e-12);
        }
    }

    #[test]
    fn robust_to_noise_on_pilots() {
        let h = channel();
        let drift = 0.05;
        let mut symbols = make_symbols(8, &h, drift);
        let mut rng = StdRng::seed_from_u64(4);
        for sym in symbols.iter_mut() {
            for x in sym.iter_mut() {
                *x += Complex64::new(gaussian(&mut rng), gaussian(&mut rng)) * 2e-4;
            }
        }
        let phases = track_and_correct(&mut symbols, &h, &PILOT_INDICES_52);
        for (m, &phi) in phases.iter().enumerate() {
            assert!(
                (phi - drift * m as f64).abs() < 0.1,
                "symbol {m}: {phi} vs {}",
                drift * m as f64
            );
        }
    }

    #[test]
    fn pilot_polarity_alternates() {
        // Adjacent symbols must not all share the same pilot values.
        let distinct: std::collections::BTreeSet<i8> = (0..16)
            .map(|m| if pilot_values(m)[0].re > 0.0 { 1 } else { -1 })
            .collect();
        assert_eq!(distinct.len(), 2);
    }

    #[test]
    fn insert_pilots_writes_known_values() {
        let mut sym = vec![Complex64::new(9.0, 9.0); 52];
        insert_pilots(&mut sym, &PILOT_INDICES_52, 0);
        let known = pilot_values(0);
        for (slot, &k) in PILOT_INDICES_52.iter().enumerate() {
            assert_eq!(sym[k], known[slot]);
        }
        assert_eq!(sym[0], Complex64::new(9.0, 9.0), "data untouched");
    }
}
