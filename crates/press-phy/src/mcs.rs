//! Rate adaptation: 802.11a/g-style MCS table driven by effective SNR.
//!
//! Converts the per-subcarrier SNR profiles PRESS manipulates into the
//! link-level quantity the paper's introduction promises to improve: "a
//! greater bit rate, and hence throughput, to higher layers."

use crate::modulation::Modulation;
use crate::snr::SnrProfile;

/// A modulation-and-coding scheme.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mcs {
    /// Index in the table (0 = most robust).
    pub index: usize,
    /// Constellation.
    pub modulation: Modulation,
    /// Convolutional code rate (numerator, denominator).
    pub code_rate: (u8, u8),
    /// PHY rate at 20 MHz, Mb/s.
    pub phy_rate_mbps: f64,
    /// Minimum effective SNR (dB) for ~10% PER operation.
    pub min_snr_db: f64,
    /// EESM beta calibrating this MCS's sensitivity to frequency selectivity.
    pub eesm_beta: f64,
}

/// The 802.11a/g rate ladder with standard receiver-sensitivity-derived SNR
/// thresholds and representative EESM betas.
pub const MCS_TABLE: [Mcs; 8] = [
    Mcs {
        index: 0,
        modulation: Modulation::Bpsk,
        code_rate: (1, 2),
        phy_rate_mbps: 6.0,
        min_snr_db: 5.0,
        eesm_beta: 1.6,
    },
    Mcs {
        index: 1,
        modulation: Modulation::Bpsk,
        code_rate: (3, 4),
        phy_rate_mbps: 9.0,
        min_snr_db: 6.0,
        eesm_beta: 1.8,
    },
    Mcs {
        index: 2,
        modulation: Modulation::Qpsk,
        code_rate: (1, 2),
        phy_rate_mbps: 12.0,
        min_snr_db: 8.0,
        eesm_beta: 2.0,
    },
    Mcs {
        index: 3,
        modulation: Modulation::Qpsk,
        code_rate: (3, 4),
        phy_rate_mbps: 18.0,
        min_snr_db: 11.0,
        eesm_beta: 2.4,
    },
    Mcs {
        index: 4,
        modulation: Modulation::Qam16,
        code_rate: (1, 2),
        phy_rate_mbps: 24.0,
        min_snr_db: 14.0,
        eesm_beta: 4.0,
    },
    Mcs {
        index: 5,
        modulation: Modulation::Qam16,
        code_rate: (3, 4),
        phy_rate_mbps: 36.0,
        min_snr_db: 18.0,
        eesm_beta: 5.0,
    },
    Mcs {
        index: 6,
        modulation: Modulation::Qam64,
        code_rate: (2, 3),
        phy_rate_mbps: 48.0,
        min_snr_db: 22.0,
        eesm_beta: 7.0,
    },
    Mcs {
        index: 7,
        modulation: Modulation::Qam64,
        code_rate: (3, 4),
        phy_rate_mbps: 54.0,
        min_snr_db: 25.0,
        eesm_beta: 8.0,
    },
];

/// Selects the highest-rate MCS whose SNR requirement the profile meets
/// (each MCS judged by its own EESM beta). `None` when even the most robust
/// rate cannot operate — an outage, i.e. the paper's "dead zone".
pub fn select_mcs(profile: &SnrProfile) -> Option<Mcs> {
    MCS_TABLE
        .iter()
        .rev()
        .find(|mcs| profile.effective_snr_db(mcs.eesm_beta) >= mcs.min_snr_db)
        .copied()
}

/// Expected MAC-layer throughput in Mb/s for a profile: the selected MCS's
/// PHY rate discounted by a fixed 25% protocol overhead, or 0 in outage.
pub fn expected_throughput_mbps(profile: &SnrProfile) -> f64 {
    select_mcs(profile).map_or(0.0, |m| m.phy_rate_mbps * 0.75)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat(db: f64) -> SnrProfile {
        SnrProfile::new(vec![db; 52])
    }

    #[test]
    fn table_is_monotone() {
        for w in MCS_TABLE.windows(2) {
            assert!(w[1].phy_rate_mbps > w[0].phy_rate_mbps);
            assert!(w[1].min_snr_db > w[0].min_snr_db);
        }
    }

    #[test]
    fn high_snr_selects_top_rate() {
        let m = select_mcs(&flat(40.0)).unwrap();
        assert_eq!(m.index, 7);
        assert_eq!(m.phy_rate_mbps, 54.0);
    }

    #[test]
    fn low_snr_is_outage() {
        assert!(select_mcs(&flat(2.0)).is_none());
        assert_eq!(expected_throughput_mbps(&flat(2.0)), 0.0);
    }

    #[test]
    fn mid_snr_selects_mid_rate() {
        let m = select_mcs(&flat(15.0)).unwrap();
        assert_eq!(m.modulation, Modulation::Qam16);
        assert_eq!(m.code_rate, (1, 2));
    }

    #[test]
    fn deep_null_drops_rate() {
        let clean = flat(26.0);
        let mut v = vec![26.0; 52];
        for x in v.iter_mut().take(30).skip(20) {
            *x = 4.0; // a wide, deep fade
        }
        let faded = SnrProfile::new(v);
        let r_clean = expected_throughput_mbps(&clean);
        let r_faded = expected_throughput_mbps(&faded);
        assert!(
            r_faded < r_clean,
            "fade must cost throughput: {r_faded} vs {r_clean}"
        );
    }

    #[test]
    fn throughput_includes_overhead() {
        assert_eq!(expected_throughput_mbps(&flat(40.0)), 54.0 * 0.75);
    }
}
