//! Constellation mapping: BPSK through 256-QAM with Gray coding.
//!
//! Used by the OFDM frame machinery (payload symbols) and by the rate
//! adaptation layer, which converts the per-subcarrier SNR profiles PRESS
//! improves into the "greater bit rate, and hence throughput" the paper
//! promises for flatter channels.

use press_math::Complex64;

/// Modulation schemes, in increasing spectral efficiency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Modulation {
    /// 1 bit/symbol.
    Bpsk,
    /// 2 bits/symbol.
    Qpsk,
    /// 4 bits/symbol.
    Qam16,
    /// 6 bits/symbol.
    Qam64,
    /// 8 bits/symbol.
    Qam256,
}

impl Modulation {
    /// Bits carried per constellation symbol.
    pub fn bits_per_symbol(self) -> usize {
        match self {
            Modulation::Bpsk => 1,
            Modulation::Qpsk => 2,
            Modulation::Qam16 => 4,
            Modulation::Qam64 => 6,
            Modulation::Qam256 => 8,
        }
    }

    /// Points per axis for the square QAM constellations (1 for BPSK).
    fn levels_per_axis(self) -> usize {
        match self {
            Modulation::Bpsk => 2,
            Modulation::Qpsk => 2,
            Modulation::Qam16 => 4,
            Modulation::Qam64 => 8,
            Modulation::Qam256 => 16,
        }
    }

    /// Average-unit-energy normalization factor per axis.
    fn axis_scale(self) -> f64 {
        // For M-QAM with L levels per axis at odd integer coordinates
        // ±1, ±3, ..., the mean symbol energy is 2(L²−1)/3.
        match self {
            Modulation::Bpsk => 1.0,
            _ => {
                let l = self.levels_per_axis() as f64;
                (2.0 * (l * l - 1.0) / 3.0).sqrt()
            }
        }
    }

    /// Maps `bits_per_symbol` bits (LSB-first slice of bools) to a
    /// unit-average-energy constellation point, Gray-coded per axis.
    ///
    /// Panics if `bits` has the wrong length.
    pub fn map(self, bits: &[bool]) -> Complex64 {
        assert_eq!(bits.len(), self.bits_per_symbol(), "wrong bit count");
        match self {
            Modulation::Bpsk => {
                if bits[0] {
                    Complex64::real(1.0)
                } else {
                    Complex64::real(-1.0)
                }
            }
            _ => {
                let half = self.bits_per_symbol() / 2;
                let i = gray_to_level(&bits[..half]);
                let q = gray_to_level(&bits[half..]);
                let l = self.levels_per_axis() as f64;
                let coord = |lev: usize| 2.0 * lev as f64 - (l - 1.0);
                Complex64::new(coord(i), coord(q)) / self.axis_scale()
            }
        }
    }

    /// Hard-decision demap: nearest constellation point back to bits.
    pub fn demap(self, sym: Complex64) -> Vec<bool> {
        match self {
            Modulation::Bpsk => vec![sym.re >= 0.0],
            _ => {
                let half = self.bits_per_symbol() / 2;
                let l = self.levels_per_axis();
                let scaled = sym * self.axis_scale();
                let to_level = |x: f64| -> usize {
                    let lev = ((x + (l as f64 - 1.0)) / 2.0).round();
                    lev.clamp(0.0, l as f64 - 1.0) as usize
                };
                let mut bits = level_to_gray(to_level(scaled.re), half);
                bits.extend(level_to_gray(to_level(scaled.im), half));
                bits
            }
        }
    }

    /// Average symbol energy of the constellation (should be 1 by design).
    pub fn mean_energy(self) -> f64 {
        let n_bits = self.bits_per_symbol();
        let count = 1usize << n_bits;
        let mut acc = 0.0;
        for v in 0..count {
            let bits: Vec<bool> = (0..n_bits).map(|b| (v >> b) & 1 == 1).collect();
            acc += self.map(&bits).norm_sqr();
        }
        acc / count as f64
    }
}

/// Interprets bits (LSB-first) as a binary-reflected Gray code and returns
/// the corresponding level index.
fn gray_to_level(bits: &[bool]) -> usize {
    let gray = bits.iter().fold(0usize, |acc, &b| (acc << 1) | b as usize);
    // Gray decode: b = g XOR (b >> 1) iterated.
    let mut level = gray;
    let mut shift = gray >> 1;
    while shift != 0 {
        level ^= shift;
        shift >>= 1;
    }
    level
}

/// Level index back to Gray-coded bits, LSB-first, width `n`.
fn level_to_gray(level: usize, n: usize) -> Vec<bool> {
    let gray = level ^ (level >> 1);
    (0..n).map(|b| (gray >> (n - 1 - b)) & 1 == 1).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: [Modulation; 5] = [
        Modulation::Bpsk,
        Modulation::Qpsk,
        Modulation::Qam16,
        Modulation::Qam64,
        Modulation::Qam256,
    ];

    #[test]
    fn map_demap_roundtrip_all_points() {
        for m in ALL {
            let n = m.bits_per_symbol();
            for v in 0..(1usize << n) {
                let bits: Vec<bool> = (0..n).map(|b| (v >> b) & 1 == 1).collect();
                let sym = m.map(&bits);
                assert_eq!(m.demap(sym), bits, "{m:?} value {v}");
            }
        }
    }

    #[test]
    fn unit_mean_energy() {
        for m in ALL {
            let e = m.mean_energy();
            assert!((e - 1.0).abs() < 1e-12, "{m:?}: E={e}");
        }
    }

    #[test]
    fn qpsk_points_on_unit_circle_corners() {
        let pts: Vec<Complex64> = (0..4)
            .map(|v| Modulation::Qpsk.map(&[(v & 1) == 1, (v >> 1) == 1]))
            .collect();
        for p in &pts {
            assert!((p.abs() - 1.0).abs() < 1e-12);
            assert!((p.re.abs() - p.im.abs()).abs() < 1e-12);
        }
    }

    #[test]
    fn demap_tolerates_noise() {
        // A noisy 16-QAM symbol within half the minimum distance decodes OK.
        let m = Modulation::Qam16;
        let bits = [true, false, true, true];
        let sym = m.map(&bits);
        let min_dist_half = 1.0 / m.axis_scale(); // half of 2/scale
        let noisy = sym + Complex64::new(0.8 * min_dist_half, -0.8 * min_dist_half);
        assert_eq!(m.demap(noisy), bits.to_vec());
    }

    #[test]
    fn gray_neighbors_differ_by_one_bit() {
        // Adjacent I-levels in 64-QAM differ by exactly one bit (Gray property).
        for lev in 0..7usize {
            let a = level_to_gray(lev, 3);
            let b = level_to_gray(lev + 1, 3);
            let diff = a.iter().zip(&b).filter(|(x, y)| x != y).count();
            assert_eq!(diff, 1, "levels {lev},{}", lev + 1);
        }
    }

    #[test]
    fn demap_clamps_out_of_range() {
        let m = Modulation::Qam64;
        let far = Complex64::new(100.0, -100.0);
        let bits = m.demap(far);
        assert_eq!(bits.len(), 6);
        // Must equal the demap of the nearest corner point.
        let corner = Complex64::new(7.0, -7.0) / (2.0 * (64.0 - 1.0) / 3.0f64).sqrt();
        assert_eq!(bits, m.demap(corner));
    }

    #[test]
    #[should_panic(expected = "wrong bit count")]
    fn map_panics_on_wrong_width() {
        Modulation::Qam16.map(&[true, false]);
    }
}
