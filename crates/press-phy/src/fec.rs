//! Forward error correction: the 802.11a/g convolutional code.
//!
//! The paper's promised payoff — "the OFDM modulation and channel coding
//! operating on each link would then see a 'flatter' channel, and could
//! offer a greater bit rate" — runs through the standard rate-1/2, K=7
//! convolutional code (generators 133/171 octal) with puncturing to 2/3 and
//! 3/4. This module implements the encoder, the puncturers, and a
//! soft-decision Viterbi decoder, so the modem can measure real packet
//! error rates instead of trusting threshold tables.

/// Constraint length of the 802.11 code.
pub const CONSTRAINT: usize = 7;
/// Generator polynomial A (133 octal).
pub const GEN_A: u8 = 0o133;
/// Generator polynomial B (171 octal).
pub const GEN_B: u8 = 0o171;

const N_STATES: usize = 1 << (CONSTRAINT - 1);

/// Code rates supported by the 802.11a/g rate ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CodeRate {
    /// Rate 1/2 — the mother code.
    R12,
    /// Rate 2/3 — puncture one of every four mother bits.
    R23,
    /// Rate 3/4 — puncture two of every six mother bits.
    R34,
}

impl CodeRate {
    /// `(k, n)` such that k info bits produce n coded bits.
    pub fn ratio(self) -> (usize, usize) {
        match self {
            CodeRate::R12 => (1, 2),
            CodeRate::R23 => (2, 3),
            CodeRate::R34 => (3, 4),
        }
    }

    /// Puncturing pattern over the mother-code output (A0 B0 A1 B1 ...):
    /// `true` = transmit, `false` = puncture. One period shown.
    fn pattern(self) -> &'static [bool] {
        match self {
            CodeRate::R12 => &[true, true],
            // 802.11: r=2/3 sends A0 B0 A1 (punctures B1).
            CodeRate::R23 => &[true, true, true, false],
            // 802.11: r=3/4 sends A0 B0 A1 B2 (punctures B1, A2).
            CodeRate::R34 => &[true, true, true, false, false, true],
        }
    }
}

fn parity(x: u8) -> bool {
    x.count_ones() % 2 == 1
}

/// Convolutionally encodes `bits` with the mother code, appending
/// `CONSTRAINT-1` zero tail bits to terminate the trellis, then punctures
/// to the requested rate.
pub fn encode(bits: &[bool], rate: CodeRate) -> Vec<bool> {
    let mut state: u8 = 0;
    let mut mother = Vec::with_capacity((bits.len() + CONSTRAINT) * 2);
    for &b in bits
        .iter()
        .chain(std::iter::repeat_n(&false, CONSTRAINT - 1))
    {
        let reg = ((b as u8) << (CONSTRAINT - 1)) | state;
        mother.push(parity(reg & GEN_A));
        mother.push(parity(reg & GEN_B));
        state = reg >> 1;
    }
    // Puncture.
    let pattern = rate.pattern();
    mother
        .into_iter()
        .enumerate()
        .filter(|(i, _)| pattern[i % pattern.len()])
        .map(|(_, b)| b)
        .collect()
}

/// Number of coded bits `encode` produces for `n_info` info bits.
pub fn coded_len(n_info: usize, rate: CodeRate) -> usize {
    let mother = (n_info + CONSTRAINT - 1) * 2;
    let pattern = rate.pattern();
    let keep_per_period = pattern.iter().filter(|&&k| k).count();
    let full = mother / pattern.len();
    let rem = mother % pattern.len();
    full * keep_per_period + pattern[..rem].iter().filter(|&&k| k).count()
}

/// Soft-decision Viterbi decoder.
///
/// `llrs` carries one log-likelihood ratio per *transmitted* coded bit
/// (positive = bit more likely 1); punctured positions are reinserted as
/// zero-confidence erasures. Returns the `n_info` decoded information bits
/// (the zero tail is stripped).
pub fn viterbi_decode(llrs: &[f64], n_info: usize, rate: CodeRate) -> Vec<bool> {
    // Depuncture into mother-code LLRs.
    let pattern = rate.pattern();
    let n_steps = n_info + CONSTRAINT - 1;
    let mut mother = vec![0.0f64; n_steps * 2];
    let mut src = 0usize;
    for (i, m) in mother.iter_mut().enumerate() {
        if pattern[i % pattern.len()] {
            if let Some(&l) = llrs.get(src) {
                *m = l;
            }
            src += 1;
        }
    }

    // Trellis search. Path metric: correlation with expected symbols
    // (higher is better).
    const NEG: f64 = f64::NEG_INFINITY;
    let mut metric = vec![NEG; N_STATES];
    metric[0] = 0.0;
    // survivors[t][state] = input bit leading here, packed per step.
    let mut survivors: Vec<Vec<(u8, bool)>> = Vec::with_capacity(n_steps);

    for t in 0..n_steps {
        let la = mother[2 * t];
        let lb = mother[2 * t + 1];
        let mut next = vec![NEG; N_STATES];
        let mut step = vec![(0u8, false); N_STATES];
        for (state, &m) in metric.iter().enumerate() {
            if m == NEG {
                continue;
            }
            for bit in [false, true] {
                let reg = ((bit as u8) << (CONSTRAINT - 1)) | state as u8;
                let a = parity(reg & GEN_A);
                let b = parity(reg & GEN_B);
                let gain = (if a { la } else { -la }) + (if b { lb } else { -lb });
                let ns = (reg >> 1) as usize;
                let cand = m + gain;
                if cand > next[ns] {
                    next[ns] = cand;
                    step[ns] = (state as u8, bit);
                }
            }
        }
        metric = next;
        survivors.push(step);
    }

    // Trellis is terminated: trace back from state 0.
    let mut state = 0usize;
    let mut decoded = vec![false; n_steps];
    for t in (0..n_steps).rev() {
        let (prev, bit) = survivors[t][state];
        decoded[t] = bit;
        state = prev as usize;
    }
    decoded.truncate(n_info);
    decoded
}

/// Convenience: hard-decision decode from bits (unit-confidence LLRs).
pub fn viterbi_decode_hard(coded: &[bool], n_info: usize, rate: CodeRate) -> Vec<bool> {
    let llrs: Vec<f64> = coded.iter().map(|&b| if b { 1.0 } else { -1.0 }).collect();
    viterbi_decode(&llrs, n_info, rate)
}

/// Rows of the block interleaver: 16 as in 802.11 when it divides
/// `n_cbps`, otherwise the largest divisor ≤ 16 (our 52-subcarrier layouts
/// are not multiples of 16 the way 48-data-subcarrier Wi-Fi is).
pub fn interleaver_rows(n_cbps: usize) -> usize {
    (1..=16)
        .rev()
        .find(|r| n_cbps.is_multiple_of(*r))
        .unwrap_or(1)
}

/// The 802.11a-style block interleaver over one OFDM symbol of `n_cbps`
/// coded bits (first permutation only — adjacent coded bits land on
/// distant subcarriers, which is what protects the code against the narrow
/// nulls PRESS moves around).
pub fn interleave(bits: &[bool], n_cbps: usize) -> Vec<bool> {
    assert_eq!(bits.len() % n_cbps, 0, "partial interleaver block");
    let rows = interleaver_rows(n_cbps);
    let cols = n_cbps / rows;
    let mut out = vec![false; bits.len()];
    for (blk, chunk) in bits.chunks(n_cbps).enumerate() {
        for (k, &b) in chunk.iter().enumerate() {
            let i = (k % rows) * cols + k / rows;
            out[blk * n_cbps + i] = b;
        }
    }
    out
}

/// Inverse of [`interleave`].
pub fn deinterleave(bits: &[bool], n_cbps: usize) -> Vec<bool> {
    assert_eq!(bits.len() % n_cbps, 0, "partial interleaver block");
    let rows = interleaver_rows(n_cbps);
    let cols = n_cbps / rows;
    let mut out = vec![false; bits.len()];
    for (blk, chunk) in bits.chunks(n_cbps).enumerate() {
        for (i, &b) in chunk.iter().enumerate() {
            let k = (i % cols) * rows + i / cols;
            out[blk * n_cbps + k] = b;
        }
    }
    out
}

/// Deinterleaves per-bit LLRs (same permutation as [`deinterleave`]).
pub fn deinterleave_llrs(llrs: &[f64], n_cbps: usize) -> Vec<f64> {
    assert_eq!(llrs.len() % n_cbps, 0, "partial interleaver block");
    let rows = interleaver_rows(n_cbps);
    let cols = n_cbps / rows;
    let mut out = vec![0.0; llrs.len()];
    for (blk, chunk) in llrs.chunks(n_cbps).enumerate() {
        for (i, &b) in chunk.iter().enumerate() {
            let k = (i % cols) * rows + i / cols;
            out[blk * n_cbps + k] = b;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_bits(n: usize, seed: u64) -> Vec<bool> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen()).collect()
    }

    #[test]
    fn encode_lengths_match() {
        for rate in [CodeRate::R12, CodeRate::R23, CodeRate::R34] {
            for n in [24usize, 96, 100, 233] {
                let bits = random_bits(n, 1);
                assert_eq!(
                    encode(&bits, rate).len(),
                    coded_len(n, rate),
                    "{rate:?} n={n}"
                );
            }
        }
    }

    #[test]
    fn rate_ratios_asymptotic() {
        // For long blocks the coded length approaches n/k * info length.
        let n = 3000;
        for rate in [CodeRate::R12, CodeRate::R23, CodeRate::R34] {
            let (k, d) = rate.ratio();
            let coded = coded_len(n, rate) as f64;
            let expect = n as f64 * d as f64 / k as f64;
            assert!((coded - expect).abs() / expect < 0.02, "{rate:?}");
        }
    }

    #[test]
    fn decode_clean_roundtrip_all_rates() {
        for rate in [CodeRate::R12, CodeRate::R23, CodeRate::R34] {
            let bits = random_bits(200, 7);
            let coded = encode(&bits, rate);
            let decoded = viterbi_decode_hard(&coded, bits.len(), rate);
            assert_eq!(decoded, bits, "{rate:?}");
        }
    }

    #[test]
    fn corrects_scattered_hard_errors() {
        let bits = random_bits(300, 3);
        let mut coded = encode(&bits, CodeRate::R12);
        // Flip every 40th coded bit (~2.5% BER, well within r=1/2 power).
        for i in (0..coded.len()).step_by(40) {
            coded[i] = !coded[i];
        }
        let decoded = viterbi_decode_hard(&coded, bits.len(), CodeRate::R12);
        assert_eq!(decoded, bits);
    }

    #[test]
    fn soft_decisions_beat_hard_decisions() {
        // With erasure-like low-confidence errors, soft decoding must fix
        // what hard decoding gets wrong at the same error positions.
        let bits = random_bits(400, 9);
        let coded = encode(&bits, CodeRate::R12);
        let mut rng = StdRng::seed_from_u64(5);
        let mut soft: Vec<f64> = Vec::with_capacity(coded.len());
        let mut hard: Vec<bool> = Vec::with_capacity(coded.len());
        for &b in &coded {
            let sign = if b { 1.0 } else { -1.0 };
            // 12% of bits are received flipped but with LOW confidence.
            if rng.gen::<f64>() < 0.12 {
                soft.push(-sign * 0.1);
                hard.push(!b);
            } else {
                soft.push(sign * 1.0);
                hard.push(b);
            }
        }
        let soft_dec = viterbi_decode(&soft, bits.len(), CodeRate::R12);
        let hard_dec = viterbi_decode_hard(&hard, bits.len(), CodeRate::R12);
        let soft_errs = soft_dec.iter().zip(&bits).filter(|(a, b)| a != b).count();
        let hard_errs = hard_dec.iter().zip(&bits).filter(|(a, b)| a != b).count();
        assert_eq!(soft_errs, 0, "soft decoding should clean this up");
        assert!(hard_errs >= soft_errs);
    }

    #[test]
    fn punctured_rates_are_weaker() {
        // At the same moderate BER, rate 3/4 must produce at least as many
        // residual errors as rate 1/2 (usually strictly more).
        let bits = random_bits(600, 11);
        let err = |rate: CodeRate| -> usize {
            let mut coded = encode(&bits, rate);
            let mut rng = StdRng::seed_from_u64(13);
            for b in coded.iter_mut() {
                if rng.gen::<f64>() < 0.06 {
                    *b = !*b;
                }
            }
            viterbi_decode_hard(&coded, bits.len(), rate)
                .iter()
                .zip(&bits)
                .filter(|(a, b)| a != b)
                .count()
        };
        let e12 = err(CodeRate::R12);
        let e34 = err(CodeRate::R34);
        assert!(e34 >= e12, "r3/4 {e34} vs r1/2 {e12}");
        assert_eq!(e12, 0, "r1/2 handles 6% BER");
    }

    #[test]
    fn interleaver_roundtrip() {
        for n_cbps in [48usize, 52, 96, 104, 192, 208, 288, 312] {
            let bits = random_bits(n_cbps * 3, 2);
            let inter = interleave(&bits, n_cbps);
            assert_ne!(inter, bits, "permutation is nontrivial");
            assert_eq!(deinterleave(&inter, n_cbps), bits);
        }
    }

    #[test]
    fn interleaver_spreads_adjacent_bits() {
        let n_cbps = 96;
        let mut bits = vec![false; n_cbps];
        bits[10] = true;
        bits[11] = true;
        let inter = interleave(&bits, n_cbps);
        let positions: Vec<usize> = inter
            .iter()
            .enumerate()
            .filter(|(_, &b)| b)
            .map(|(i, _)| i)
            .collect();
        assert!(positions[1] - positions[0] >= 4, "{positions:?}");
    }

    #[test]
    fn llr_deinterleave_matches_bit_deinterleave() {
        let n_cbps = 48;
        let bits = random_bits(n_cbps, 4);
        let inter = interleave(&bits, n_cbps);
        let llrs: Vec<f64> = inter.iter().map(|&b| if b { 1.0 } else { -1.0 }).collect();
        let de = deinterleave_llrs(&llrs, n_cbps);
        for (l, &b) in de.iter().zip(&bits) {
            assert_eq!(*l > 0.0, b);
        }
    }
}
