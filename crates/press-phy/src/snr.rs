//! Per-subcarrier SNR profiles and their analysis.
//!
//! Everything the paper's Figures 4–6 plot is derived from per-subcarrier
//! SNR profiles: minimum SNR across subcarriers, the location of the "most
//! significant null" (the paper's §3.2.1 definition: the argmin subcarrier,
//! counted only when it sits at least 5 dB below the median), and changes in
//! these quantities between PRESS configurations.

use press_math::db::db_to_pow;
use press_math::stats;

/// A per-subcarrier SNR profile in dB.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SnrProfile {
    /// SNR per active subcarrier, dB, ascending subcarrier order.
    pub snr_db: Vec<f64>,
}

impl SnrProfile {
    /// Wraps a dB series.
    pub fn new(snr_db: Vec<f64>) -> Self {
        SnrProfile { snr_db }
    }

    /// Number of subcarriers.
    pub fn len(&self) -> usize {
        self.snr_db.len()
    }

    /// True when the profile is empty.
    pub fn is_empty(&self) -> bool {
        self.snr_db.is_empty()
    }

    /// Minimum SNR across subcarriers, dB (the paper's Figure 6 metric).
    pub fn min_db(&self) -> f64 {
        stats::min(&self.snr_db).unwrap_or(f64::NAN)
    }

    /// Maximum SNR across subcarriers, dB.
    pub fn max_db(&self) -> f64 {
        stats::max(&self.snr_db).unwrap_or(f64::NAN)
    }

    /// Median SNR across subcarriers, dB.
    pub fn median_db(&self) -> f64 {
        stats::median(&self.snr_db).unwrap_or(f64::NAN)
    }

    /// Mean SNR across subcarriers, dB (arithmetic on dB values, as the paper
    /// averages displayed SNR curves).
    pub fn mean_db(&self) -> f64 {
        stats::mean(&self.snr_db).unwrap_or(f64::NAN)
    }

    /// Subcarrier index of the deepest fade.
    pub fn argmin(&self) -> Option<usize> {
        stats::argmin(&self.snr_db)
    }

    /// The paper's "most significant null": the subcarrier of minimum SNR,
    /// *only* when that minimum is at least `threshold_db` below the median
    /// (the paper uses 5 dB). Profiles without such a dip have no null.
    pub fn most_significant_null(&self, threshold_db: f64) -> Option<usize> {
        let idx = self.argmin()?;
        if self.snr_db[idx] <= self.median_db() - threshold_db {
            Some(idx)
        } else {
            None
        }
    }

    /// Frequency selectivity: peak-to-trough span in dB.
    pub fn selectivity_db(&self) -> f64 {
        self.max_db() - self.min_db()
    }

    /// Shannon capacity of the profile in bits/s given subcarrier spacing,
    /// `Σ Δf·log2(1 + snr_k)`.
    pub fn shannon_capacity_bps(&self, subcarrier_spacing_hz: f64) -> f64 {
        self.snr_db
            .iter()
            .map(|&s| subcarrier_spacing_hz * (1.0 + db_to_pow(s)).log2())
            .sum()
    }

    /// Exponential effective SNR mapping (EESM): compresses the profile into
    /// the single SNR an equivalent flat channel would need for the same
    /// coded error rate. `beta` calibrates per modulation/code pair.
    ///
    /// `snr_eff = −β·ln( mean_k exp(−snr_k/β) )` (linear domain).
    pub fn effective_snr_db(&self, beta: f64) -> f64 {
        if self.snr_db.is_empty() {
            return f64::NAN;
        }
        // Log-sum-exp for stability: at high SNR exp(-snr/beta) underflows
        // to zero and a naive ln() would blow up to +inf. Two passes over the
        // profile keep this allocation-free on the scoring hot path.
        let x_of = |s: f64| db_to_pow(s) / beta;
        let x_min = self
            .snr_db
            .iter()
            .map(|&s| x_of(s))
            .fold(f64::INFINITY, f64::min);
        let mean_shifted = self
            .snr_db
            .iter()
            .map(|&s| (-(x_of(s) - x_min)).exp())
            .sum::<f64>()
            / self.snr_db.len() as f64;
        let eff_lin = beta * (x_min - mean_shifted.ln());
        10.0 * eff_lin.max(1e-12).log10()
    }

    /// Per-subcarrier difference `self − other` in dB.
    ///
    /// Panics when lengths differ (profiles from different numerologies are
    /// never comparable).
    pub fn delta_db(&self, other: &SnrProfile) -> Vec<f64> {
        assert_eq!(self.len(), other.len(), "profile widths differ");
        self.snr_db
            .iter()
            .zip(&other.snr_db)
            .map(|(a, b)| a - b)
            .collect()
    }

    /// Largest absolute per-subcarrier SNR difference against another
    /// profile — the Figure 4 pair-selection metric ("the two configurations
    /// that give the largest single-subcarrier SNR difference").
    pub fn max_abs_delta_db(&self, other: &SnrProfile) -> f64 {
        self.delta_db(other)
            .into_iter()
            .map(f64::abs)
            .fold(0.0, f64::max)
    }

    /// Mean SNR over the lower half of the band minus the upper half —
    /// positive favors low subcarriers. The Figure 7 "opposite frequency
    /// selectivity" metric.
    pub fn half_band_contrast_db(&self) -> f64 {
        let n = self.len();
        if n < 2 {
            return 0.0;
        }
        let half = n / 2;
        let lo = stats::mean(&self.snr_db[..half]).unwrap_or(0.0);
        let hi = stats::mean(&self.snr_db[half..]).unwrap_or(0.0);
        lo - hi
    }
}

/// Null movement between two profiles, in subcarriers — the Figure 5
/// statistic. `None` unless *both* profiles exhibit a most-significant null
/// per the paper's 5 dB rule.
pub fn null_movement(a: &SnrProfile, b: &SnrProfile, threshold_db: f64) -> Option<usize> {
    let na = a.most_significant_null(threshold_db)?;
    let nb = b.most_significant_null(threshold_db)?;
    Some(na.abs_diff(nb))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat(n: usize, db: f64) -> SnrProfile {
        SnrProfile::new(vec![db; n])
    }

    fn with_null(n: usize, base: f64, null_at: usize, depth: f64) -> SnrProfile {
        let mut v = vec![base; n];
        v[null_at] = base - depth;
        SnrProfile::new(v)
    }

    #[test]
    fn summary_statistics() {
        let p = SnrProfile::new(vec![10.0, 20.0, 30.0, 40.0]);
        assert_eq!(p.min_db(), 10.0);
        assert_eq!(p.max_db(), 40.0);
        assert_eq!(p.median_db(), 25.0);
        assert_eq!(p.mean_db(), 25.0);
        assert_eq!(p.selectivity_db(), 30.0);
    }

    #[test]
    fn null_requires_5db_below_median() {
        let shallow = with_null(52, 30.0, 10, 4.0);
        assert_eq!(shallow.most_significant_null(5.0), None);
        let deep = with_null(52, 30.0, 10, 8.0);
        assert_eq!(deep.most_significant_null(5.0), Some(10));
    }

    #[test]
    fn flat_profile_has_no_null() {
        assert_eq!(flat(52, 25.0).most_significant_null(5.0), None);
    }

    #[test]
    fn null_movement_both_required() {
        let a = with_null(52, 30.0, 10, 10.0);
        let b = with_null(52, 30.0, 19, 10.0);
        assert_eq!(null_movement(&a, &b, 5.0), Some(9));
        let c = flat(52, 30.0);
        assert_eq!(null_movement(&a, &c, 5.0), None);
    }

    #[test]
    fn max_abs_delta_symmetric() {
        let a = SnrProfile::new(vec![10.0, 20.0, 30.0]);
        let b = SnrProfile::new(vec![12.0, 5.0, 31.0]);
        assert_eq!(a.max_abs_delta_db(&b), 15.0);
        assert_eq!(b.max_abs_delta_db(&a), 15.0);
    }

    #[test]
    fn effective_snr_of_flat_channel_is_itself() {
        let p = flat(52, 20.0);
        for beta in [1.0, 5.0, 20.0] {
            let eff = p.effective_snr_db(beta);
            assert!((eff - 20.0).abs() < 1e-6, "beta={beta}: {eff}");
        }
    }

    #[test]
    fn effective_snr_penalizes_nulls() {
        let good = flat(52, 20.0);
        let bad = with_null(52, 20.0, 26, 18.0);
        assert!(bad.effective_snr_db(3.0) < good.effective_snr_db(3.0) - 0.5);
    }

    #[test]
    fn capacity_increases_with_snr() {
        let spacing = 312_500.0;
        let lo = flat(52, 10.0).shannon_capacity_bps(spacing);
        let hi = flat(52, 30.0).shannon_capacity_bps(spacing);
        assert!(hi > lo);
        // 52 * 312.5 kHz * log2(1+1000) ~ 162 Mbps.
        assert!((hi / 1e6 - 162.0).abs() < 3.0, "{}", hi / 1e6);
    }

    #[test]
    fn half_band_contrast_sign() {
        let mut v = vec![30.0; 26];
        v.extend(vec![10.0; 26]);
        let p = SnrProfile::new(v);
        assert_eq!(p.half_band_contrast_db(), 20.0);
        let q = SnrProfile::new(p.snr_db.iter().rev().copied().collect());
        assert_eq!(q.half_band_contrast_db(), -20.0);
    }

    #[test]
    #[should_panic(expected = "profile widths differ")]
    fn delta_panics_on_width_mismatch() {
        flat(52, 0.0).delta_db(&flat(51, 0.0));
    }
}
