//! Receiver synchronization: carrier-frequency-offset estimation and
//! correction from repeated training symbols.
//!
//! The simulated radios carry residual CFO and phase noise (as the paper's
//! WARP/USRP endpoints did); a real receiver estimates the offset from the
//! phase rotation between its two identical LTF symbols and derotates
//! before demodulating. Without this step the channel estimator books the
//! rotation as noise and under-reports SNR.

use press_math::Complex64;

/// Estimates the common phase rotation between two received copies of the
/// same training symbol (radians). Positive = the second copy leads.
///
/// Uses the maximum-likelihood combiner: the angle of `Σ_k y2_k·conj(y1_k)`
/// — each subcarrier's contribution is weighted by its own power, so faded
/// subcarriers barely vote.
pub fn phase_rotation(y1: &[Complex64], y2: &[Complex64]) -> f64 {
    assert_eq!(y1.len(), y2.len(), "training copies differ in width");
    let acc: Complex64 = y1.iter().zip(y2).map(|(a, b)| *b * a.conj()).sum();
    acc.arg()
}

/// Converts a per-symbol phase rotation to a frequency offset, given the
/// OFDM symbol duration.
pub fn rotation_to_cfo_hz(rotation_rad: f64, symbol_duration_s: f64) -> f64 {
    rotation_rad / (std::f64::consts::TAU * symbol_duration_s)
}

/// Estimates CFO (Hz) directly from two training copies.
pub fn estimate_cfo_hz(y1: &[Complex64], y2: &[Complex64], symbol_duration_s: f64) -> f64 {
    rotation_to_cfo_hz(phase_rotation(y1, y2), symbol_duration_s)
}

/// The maximum CFO magnitude this two-symbol estimator can represent
/// without aliasing: half a turn per symbol.
pub fn unambiguous_cfo_hz(symbol_duration_s: f64) -> f64 {
    0.5 / symbol_duration_s
}

/// Derotates a sequence of received OFDM symbols by an estimated CFO:
/// symbol `m` gets multiplied by `e^{-j·2π·cfo·T·m}` (plus an optional
/// initial phase). Operates in place.
pub fn derotate(symbols: &mut [Vec<Complex64>], cfo_hz: f64, symbol_duration_s: f64, phase0: f64) {
    for (m, sym) in symbols.iter_mut().enumerate() {
        let phase = phase0 + std::f64::consts::TAU * cfo_hz * symbol_duration_s * m as f64;
        let rot = Complex64::cis(-phase);
        for x in sym.iter_mut() {
            *x *= rot;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::training_sequence;

    const T_SYM: f64 = 4e-6;

    fn received_with_cfo(cfo_hz: f64, n_symbols: usize) -> Vec<Vec<Complex64>> {
        let base = training_sequence(52);
        (0..n_symbols)
            .map(|m| {
                let phase = std::f64::consts::TAU * cfo_hz * T_SYM * m as f64;
                let rot = Complex64::cis(phase);
                base.iter().map(|x| *x * rot * 0.01).collect()
            })
            .collect()
    }

    #[test]
    fn estimates_injected_cfo_exactly() {
        for cfo in [-20e3, -500.0, 50.0, 3e3, 40e3] {
            let rx = received_with_cfo(cfo, 2);
            let est = estimate_cfo_hz(&rx[0], &rx[1], T_SYM);
            assert!((est - cfo).abs() < 1.0, "cfo {cfo}: est {est}");
        }
    }

    #[test]
    fn aliases_beyond_the_unambiguous_range() {
        let limit = unambiguous_cfo_hz(T_SYM);
        assert!((limit - 125e3).abs() < 1.0);
        // 1.5 turns per symbol aliases to 0.5 negative turns... i.e. an
        // offset of limit*1.2 wraps to a negative estimate.
        let rx = received_with_cfo(limit * 1.2, 2);
        let est = estimate_cfo_hz(&rx[0], &rx[1], T_SYM);
        assert!(est < 0.0, "aliased estimate should wrap: {est}");
    }

    #[test]
    fn derotation_removes_the_rotation() {
        let cfo = 11e3;
        let mut rx = received_with_cfo(cfo, 4);
        let est = estimate_cfo_hz(&rx[0], &rx[1], T_SYM);
        derotate(&mut rx, est, T_SYM, 0.0);
        // After correction, all copies agree with the first.
        for m in 1..4 {
            for (a, b) in rx[0].iter().zip(&rx[m]) {
                assert!((*a - *b).abs() < 1e-9, "symbol {m} still rotated");
            }
        }
    }

    #[test]
    fn estimator_robust_to_faded_subcarriers() {
        // Kill half the band; the power-weighted combiner should not care.
        let cfo = 7e3;
        let mut rx = received_with_cfo(cfo, 2);
        for sym in rx.iter_mut() {
            for x in sym.iter_mut().take(26) {
                *x = *x * 1e-6;
            }
        }
        let est = estimate_cfo_hz(&rx[0], &rx[1], T_SYM);
        assert!((est - cfo).abs() < 1.0, "est {est}");
    }

    #[test]
    fn zero_cfo_estimates_zero() {
        let rx = received_with_cfo(0.0, 2);
        let est = estimate_cfo_hz(&rx[0], &rx[1], T_SYM);
        assert!(est.abs() < 1e-6);
    }
}
