//! Least-squares channel estimation from training symbols.
//!
//! Mirrors what the WARP reference design the paper used does: divide the
//! received training subcarriers by the known sequence, average the repeats,
//! and estimate the noise floor from the repeat-to-repeat differences.

use crate::numerology::Numerology;
use press_math::Complex64;

/// Errors from the channel estimator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EstimatorError {
    /// Fewer than one (for H) or two (for noise) training repeats supplied.
    NotEnoughTraining(usize),
    /// A received symbol's width does not match the training sequence.
    WidthMismatch {
        /// Expected subcarrier count.
        expected: usize,
        /// Received subcarrier count.
        got: usize,
    },
}

impl std::fmt::Display for EstimatorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EstimatorError::NotEnoughTraining(n) => {
                write!(f, "need at least 2 training repeats, got {n}")
            }
            EstimatorError::WidthMismatch { expected, got } => {
                write!(f, "training width mismatch: expected {expected}, got {got}")
            }
        }
    }
}

impl std::error::Error for EstimatorError {}

/// A per-subcarrier channel estimate with noise statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelEstimate {
    /// Estimated complex channel per active subcarrier.
    pub h: Vec<Complex64>,
    /// Estimated per-subcarrier noise power (variance of the complex noise).
    pub noise_power: Vec<f64>,
}

impl ChannelEstimate {
    /// Per-subcarrier SNR in dB: `|H_k|² / σ²_k` (training symbols are unit
    /// power, so no separate signal-power factor appears).
    ///
    /// Subcarriers whose measured noise vanishes (an ideal noiseless
    /// simulation) are clamped to `floor_db` above which SNR is meaningless
    /// to report — matching how real hardware saturates its SNR estimates.
    pub fn snr_db(&self, floor_db: f64) -> Vec<f64> {
        self.h
            .iter()
            .zip(&self.noise_power)
            .map(|(h, &n)| {
                if n <= 0.0 {
                    floor_db
                } else {
                    (10.0 * (h.norm_sqr() / n).log10()).min(floor_db)
                }
            })
            .collect()
    }

    /// Mean channel magnitude across subcarriers (linear).
    pub fn mean_magnitude(&self) -> f64 {
        if self.h.is_empty() {
            return 0.0;
        }
        self.h.iter().map(|h| h.abs()).sum::<f64>() / self.h.len() as f64
    }
}

/// Least-squares estimator over repeated training symbols.
///
/// `training` is the transmitted sequence (length `n_active`); `received`
/// holds one vector per training repeat. Needs ≥2 repeats so the noise can
/// be estimated from their difference (exactly how 802.11 receivers use the
/// two LTF symbols).
///
/// # Errors
/// [`EstimatorError::NotEnoughTraining`] with fewer than 2 repeats;
/// [`EstimatorError::WidthMismatch`] when lengths disagree.
pub fn estimate_channel(
    training: &[Complex64],
    received: &[Vec<Complex64>],
) -> Result<ChannelEstimate, EstimatorError> {
    if received.len() < 2 {
        return Err(EstimatorError::NotEnoughTraining(received.len()));
    }
    let n = training.len();
    for r in received {
        if r.len() != n {
            return Err(EstimatorError::WidthMismatch {
                expected: n,
                got: r.len(),
            });
        }
    }
    let m = received.len();
    let mut h = vec![Complex64::ZERO; n];
    for r in received {
        for k in 0..n {
            // LS per subcarrier: divide by the known ±1 training symbol.
            h[k] += r[k] / training[k];
        }
    }
    for hk in h.iter_mut() {
        *hk = *hk / m as f64;
    }
    // Noise: residual of each repeat around the mean, unbiased over m-1.
    let mut noise = vec![0.0; n];
    for r in received {
        for k in 0..n {
            let resid = r[k] / training[k] - h[k];
            noise[k] += resid.norm_sqr();
        }
    }
    for nk in noise.iter_mut() {
        *nk /= (m - 1) as f64;
    }
    Ok(ChannelEstimate {
        h,
        noise_power: noise,
    })
}

/// Smooths a per-subcarrier noise estimate by averaging across subcarriers —
/// the thermal noise floor is flat across a 20 MHz channel, so pooling the
/// per-subcarrier estimates sharpens them substantially (the paper's SNR
/// plots are per-subcarrier in signal but pooled in noise).
pub fn pool_noise(estimate: &mut ChannelEstimate) {
    let n = estimate.noise_power.len();
    if n == 0 {
        return;
    }
    let avg = estimate.noise_power.iter().sum::<f64>() / n as f64;
    estimate.noise_power.fill(avg);
}

/// Convenience: estimated SNR profile for a numerology, pooled-noise, with
/// the simulator's standard 50 dB saturation.
pub fn snr_profile(
    _num: &Numerology,
    training: &[Complex64],
    received: &[Vec<Complex64>],
) -> Result<Vec<f64>, EstimatorError> {
    let mut est = estimate_channel(training, received)?;
    pool_noise(&mut est);
    Ok(est.snr_db(50.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::training_sequence;

    fn apply_channel(training: &[Complex64], h: &[Complex64]) -> Vec<Complex64> {
        training.iter().zip(h).map(|(t, hh)| *t * *hh).collect()
    }

    #[test]
    fn noiseless_estimate_is_exact() {
        let t = training_sequence(52);
        let h: Vec<Complex64> = (0..52)
            .map(|k| Complex64::from_polar(0.01 * (k + 1) as f64, k as f64 * 0.2))
            .collect();
        let rx = vec![apply_channel(&t, &h); 2];
        let est = estimate_channel(&t, &rx).unwrap();
        for (a, b) in est.h.iter().zip(&h) {
            assert!((*a - *b).abs() < 1e-12);
        }
        assert!(est.noise_power.iter().all(|&n| n < 1e-20));
    }

    #[test]
    fn saturates_snr_when_noiseless() {
        let t = training_sequence(52);
        let h = vec![Complex64::ONE; 52];
        let rx = vec![apply_channel(&t, &h); 2];
        let est = estimate_channel(&t, &rx).unwrap();
        assert!(est.snr_db(50.0).iter().all(|&s| s == 50.0));
    }

    #[test]
    fn rejects_single_repeat() {
        let t = training_sequence(52);
        let rx = vec![t.clone()];
        assert_eq!(
            estimate_channel(&t, &rx),
            Err(EstimatorError::NotEnoughTraining(1))
        );
    }

    #[test]
    fn rejects_width_mismatch() {
        let t = training_sequence(52);
        let rx = vec![vec![Complex64::ONE; 51], vec![Complex64::ONE; 51]];
        assert!(matches!(
            estimate_channel(&t, &rx),
            Err(EstimatorError::WidthMismatch {
                expected: 52,
                got: 51
            })
        ));
    }

    #[test]
    fn noise_estimate_tracks_injected_noise() {
        // Deterministic "noise": +d on repeat 1, -d on repeat 2 gives
        // per-subcarrier variance 2|d|^2 / (m-1) ... with mean removed the
        // residuals are +-d so variance estimate is 2|d|^2.
        let t = training_sequence(52);
        let h = vec![Complex64::ONE; 52];
        let d = Complex64::new(0.01, 0.0);
        let clean = apply_channel(&t, &h);
        let r1: Vec<Complex64> = clean.iter().zip(&t).map(|(c, tr)| *c + *tr * d).collect();
        let r2: Vec<Complex64> = clean.iter().zip(&t).map(|(c, tr)| *c - *tr * d).collect();
        let est = estimate_channel(&t, &[r1, r2]).unwrap();
        for &n in &est.noise_power {
            assert!((n - 2.0 * d.norm_sqr()).abs() < 1e-15);
        }
        // SNR = 1 / 2e-4 = 37 dB.
        let snr = est.snr_db(50.0);
        assert!((snr[0] - 10.0 * (1.0 / 2e-4f64).log10()).abs() < 1e-9);
    }

    #[test]
    fn pooling_makes_noise_flat() {
        let t = training_sequence(4);
        let mut est = ChannelEstimate {
            h: vec![Complex64::ONE; 4],
            noise_power: vec![1.0, 2.0, 3.0, 4.0],
        };
        let _ = &t;
        pool_noise(&mut est);
        assert!(est.noise_power.iter().all(|&n| (n - 2.5).abs() < 1e-12));
    }

    #[test]
    fn averaging_repeats_reduces_noise_in_h() {
        // With symmetric deterministic perturbations the mean cancels them.
        let t = training_sequence(52);
        let h = vec![Complex64::new(0.5, 0.5); 52];
        let clean = apply_channel(&t, &h);
        let d = Complex64::new(0.0, 0.02);
        let r1: Vec<Complex64> = clean.iter().map(|c| *c + d).collect();
        let r2: Vec<Complex64> = clean.iter().map(|c| *c - d).collect();
        let est = estimate_channel(&t, &[r1, r2]).unwrap();
        for (a, b) in est.h.iter().zip(&h) {
            assert!((*a - *b).abs() < 1e-12);
        }
    }
}
