//! # press-phy
//!
//! OFDM physical layer for the PRESS reproduction: the same Wi-Fi-like
//! numerology, frames, channel estimation and SNR machinery the paper's
//! WARP/USRP endpoints ran, reimplemented in Rust.
//!
//! * [`numerology`] — 64-subcarrier / 20 MHz (Figures 4–6) and
//!   102-subcarrier wideband (Figure 7) layouts;
//! * [`modulation`] — BPSK..256-QAM Gray-mapped constellations;
//! * [`frame`] — training preambles (802.11 L-LTF), payload symbols, and the
//!   time-domain OFDM modulator;
//! * [`channel_est`] — least-squares channel + noise estimation from
//!   repeated training symbols;
//! * [`snr`] — per-subcarrier SNR profiles, the paper's null definition,
//!   effective SNR, capacity;
//! * [`mcs`] — 802.11a/g rate adaptation from effective SNR;
//! * [`mimo`] — per-subcarrier channel matrices, condition numbers
//!   (Figure 8), MIMO capacity.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
pub mod channel_est;
pub mod fec;
pub mod frame;
pub mod mcs;
pub mod mimo;
pub mod modem;
pub mod modulation;
pub mod numerology;
pub mod pdp;
pub mod pilot;
pub mod snr;
pub mod sync;

pub use channel_est::{estimate_channel, ChannelEstimate, EstimatorError};
pub use frame::{training_sequence, Frame, OfdmModulator};
pub use mcs::{expected_throughput_mbps, select_mcs, Mcs, MCS_TABLE};
pub use mimo::MimoChannel;
pub use modem::{frame_survives, packet_error_rate, Modem};
pub use modulation::Modulation;
pub use numerology::Numerology;
pub use snr::{null_movement, SnrProfile};
pub use sync::{derotate, estimate_cfo_hz, unambiguous_cfo_hz};
