//! OFDM numerologies: subcarrier layouts and their absolute frequencies.
//!
//! The paper's WARP experiments use "Wi-Fi-like OFDM signals comprised of 64
//! subcarriers over 20 MHz on channel 11 of the ISM band (2.462 GHz)"; the
//! Figure 7 USRP experiment plots 102 active subcarriers of a wider channel.
//! Both layouts live here, plus the generic machinery to map *plot index*
//! (what the paper's x-axes show) to FFT bin and absolute frequency.

/// An OFDM numerology: FFT size, active subcarriers, sample rate, carrier.
#[derive(Debug, Clone, PartialEq)]
pub struct Numerology {
    /// FFT length (power of two).
    pub fft_size: usize,
    /// Cyclic prefix length in samples.
    pub cp_len: usize,
    /// Total channel bandwidth = sample rate, Hz.
    pub bandwidth_hz: f64,
    /// Carrier (center) frequency, Hz.
    pub carrier_hz: f64,
    /// Active subcarrier offsets relative to DC, in ascending order
    /// (e.g. −26..−1, +1..+26 for 802.11a-style 20 MHz).
    pub active: Vec<i32>,
}

impl Numerology {
    /// 802.11a/g-style 20 MHz layout on Wi-Fi channel 11: 64-point FFT,
    /// 52 active subcarriers (±1..±26), 16-sample cyclic prefix.
    ///
    /// This matches the paper's WARP configuration; its Figures 4–6 plot
    /// "subcarrier 0..51" meaning these 52 active bins in ascending
    /// frequency order.
    pub fn wifi20(carrier_hz: f64) -> Numerology {
        let mut active: Vec<i32> = (-26..=-1).collect();
        active.extend(1..=26);
        Numerology {
            fft_size: 64,
            cp_len: 16,
            bandwidth_hz: 20e6,
            carrier_hz,
            active,
        }
    }

    /// Wideband layout used for the Figure 7 harmonization experiment:
    /// 128-point FFT over 40 MHz with 102 active subcarriers (±1..±51),
    /// mirroring the paper's USRP N210 plot of subcarriers 1..102.
    pub fn wideband102(carrier_hz: f64) -> Numerology {
        let mut active: Vec<i32> = (-51..=-1).collect();
        active.extend(1..=51);
        Numerology {
            fft_size: 128,
            cp_len: 32,
            bandwidth_hz: 40e6,
            carrier_hz,
            active,
        }
    }

    /// Number of active subcarriers (the length of every per-subcarrier
    /// series in this workspace).
    pub fn n_active(&self) -> usize {
        self.active.len()
    }

    /// Subcarrier spacing, Hz.
    pub fn subcarrier_spacing_hz(&self) -> f64 {
        self.bandwidth_hz / self.fft_size as f64
    }

    /// OFDM symbol duration including cyclic prefix, seconds.
    pub fn symbol_duration_s(&self) -> f64 {
        (self.fft_size + self.cp_len) as f64 / self.bandwidth_hz
    }

    /// Absolute RF frequency of the active subcarrier at *plot index* `i`
    /// (0-based, ascending frequency — the paper's x-axes).
    pub fn subcarrier_freq_hz(&self, i: usize) -> f64 {
        self.carrier_hz + self.active[i] as f64 * self.subcarrier_spacing_hz()
    }

    /// Absolute frequencies of all active subcarriers, ascending.
    pub fn active_freqs_hz(&self) -> Vec<f64> {
        (0..self.n_active())
            .map(|i| self.subcarrier_freq_hz(i))
            .collect()
    }

    /// FFT bin (0..fft_size) of the active subcarrier at plot index `i`,
    /// using the standard DC-first wraparound convention.
    pub fn fft_bin(&self, i: usize) -> usize {
        let k = self.active[i];
        if k >= 0 {
            k as usize
        } else {
            (self.fft_size as i32 + k) as usize
        }
    }

    /// Guard interval in seconds (cyclic prefix duration) — the maximum
    /// excess delay spread the numerology tolerates without ISI.
    pub fn guard_interval_s(&self) -> f64 {
        self.cp_len as f64 / self.bandwidth_hz
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use press_math::consts::WIFI_CHANNEL_11_HZ;

    #[test]
    fn wifi20_has_52_active() {
        let n = Numerology::wifi20(WIFI_CHANNEL_11_HZ);
        assert_eq!(n.n_active(), 52);
        assert_eq!(n.fft_size, 64);
        assert!(!n.active.contains(&0), "DC is never active");
    }

    #[test]
    fn wideband_has_102_active() {
        let n = Numerology::wideband102(WIFI_CHANNEL_11_HZ);
        assert_eq!(n.n_active(), 102);
        assert_eq!(n.fft_size, 128);
    }

    #[test]
    fn spacing_is_312_5_khz() {
        let n = Numerology::wifi20(WIFI_CHANNEL_11_HZ);
        assert!((n.subcarrier_spacing_hz() - 312_500.0).abs() < 1e-9);
    }

    #[test]
    fn symbol_duration_is_4us() {
        let n = Numerology::wifi20(WIFI_CHANNEL_11_HZ);
        assert!((n.symbol_duration_s() - 4e-6).abs() < 1e-12);
        assert!((n.guard_interval_s() - 0.8e-6).abs() < 1e-12);
    }

    #[test]
    fn frequencies_ascend_and_span_band() {
        let n = Numerology::wifi20(WIFI_CHANNEL_11_HZ);
        let freqs = n.active_freqs_hz();
        assert!(freqs.windows(2).all(|w| w[1] > w[0]));
        assert!((freqs[0] - (WIFI_CHANNEL_11_HZ - 26.0 * 312_500.0)).abs() < 1.0);
        assert!((freqs[51] - (WIFI_CHANNEL_11_HZ + 26.0 * 312_500.0)).abs() < 1.0);
    }

    #[test]
    fn fft_bins_wrap_negative_frequencies() {
        let n = Numerology::wifi20(WIFI_CHANNEL_11_HZ);
        // Plot index 0 is subcarrier -26 => bin 64-26 = 38.
        assert_eq!(n.fft_bin(0), 38);
        // Plot index 26 is subcarrier +1 => bin 1.
        assert_eq!(n.fft_bin(26), 1);
        // Last index is +26 => bin 26.
        assert_eq!(n.fft_bin(51), 26);
    }

    #[test]
    fn bins_are_unique() {
        let n = Numerology::wideband102(WIFI_CHANNEL_11_HZ);
        let mut bins: Vec<usize> = (0..n.n_active()).map(|i| n.fft_bin(i)).collect();
        bins.sort_unstable();
        bins.dedup();
        assert_eq!(bins.len(), 102);
    }
}
