//! End-to-end modem: coded OFDM frames over a per-subcarrier channel.
//!
//! This is the machinery that turns PRESS's channel reshaping into packet
//! delivery: convolutional encoding → interleaving → QAM mapping → the
//! channel → soft demapping → Viterbi decoding. It exists so the workspace
//! can *measure* packet error rates over the channels PRESS produces
//! instead of trusting SNR-threshold tables — and so the MCS table's
//! thresholds are validated against the actual decoder.

use crate::fec::{self, CodeRate};
use crate::mcs::Mcs;
use crate::modulation::Modulation;
use crate::numerology::Numerology;
use press_math::Complex64;
use rand::Rng;

/// Maps an `(numerator, denominator)` MCS code rate to the FEC enum.
fn code_rate_of(mcs: &Mcs) -> CodeRate {
    match mcs.code_rate {
        (1, 2) => CodeRate::R12,
        (2, 3) => CodeRate::R23,
        (3, 4) => CodeRate::R34,
        other => panic!("unsupported code rate {other:?}"), // press-lint: allow(panic-freedom) — the MCS table only carries the three mother-code punctures
    }
}

/// A coded-OFDM modem bound to a numerology and an MCS.
#[derive(Debug, Clone)]
pub struct Modem {
    /// Subcarrier layout.
    pub num: Numerology,
    /// Modulation and coding scheme.
    pub mcs: Mcs,
}

impl Modem {
    /// Creates a modem.
    pub fn new(num: Numerology, mcs: Mcs) -> Self {
        Modem { num, mcs }
    }

    /// Coded bits per OFDM symbol.
    pub fn n_cbps(&self) -> usize {
        self.num.n_active() * self.mcs.modulation.bits_per_symbol()
    }

    /// Encodes `bits` into frequency-domain OFDM payload symbols
    /// (each `n_active` wide): FEC → zero-pad to a symbol boundary →
    /// per-symbol interleave → Gray QAM mapping.
    pub fn encode_frame(&self, bits: &[bool]) -> Vec<Vec<Complex64>> {
        let rate = code_rate_of(&self.mcs);
        let mut coded = fec::encode(bits, rate);
        let n_cbps = self.n_cbps();
        let n_symbols = coded.len().div_ceil(n_cbps);
        coded.resize(n_symbols * n_cbps, false);
        let interleaved = fec::interleave(&coded, n_cbps);
        let bps = self.mcs.modulation.bits_per_symbol();
        interleaved
            .chunks(n_cbps)
            .map(|sym_bits| {
                sym_bits
                    .chunks(bps)
                    .map(|chunk| self.mcs.modulation.map(chunk))
                    .collect()
            })
            .collect()
    }

    /// Decodes received payload symbols back to `n_info` bits.
    ///
    /// `h` is the per-subcarrier channel the symbols passed through and
    /// `noise_power` the per-subcarrier complex-noise variance (both as the
    /// channel estimator reports them); soft LLRs are computed per bit and
    /// weighted by each subcarrier's post-equalization SNR — which is
    /// exactly why a deep null hurts and why PRESS moving the null helps.
    pub fn decode_frame(
        &self,
        rx_symbols: &[Vec<Complex64>],
        h: &[Complex64],
        noise_power: &[f64],
        n_info: usize,
    ) -> Vec<bool> {
        let n_cbps = self.n_cbps();
        let bps = self.mcs.modulation.bits_per_symbol();
        let mut llrs = Vec::with_capacity(rx_symbols.len() * n_cbps);
        for sym in rx_symbols {
            for (k, y) in sym.iter().enumerate() {
                let hk = h[k];
                let denom = hk.norm_sqr().max(1e-30);
                let z = *y / hk;
                let sigma2 = (noise_power[k] / denom).max(1e-12);
                bit_llrs(self.mcs.modulation, z, sigma2, &mut llrs);
                let _ = bps;
            }
        }
        let deinter = fec::deinterleave_llrs(&llrs, n_cbps);
        fec::viterbi_decode(&deinter, n_info, code_rate_of(&self.mcs))
    }
}

/// Max-log per-bit LLRs for a received (equalized) point `z` with effective
/// noise variance `sigma2`. Positive = bit 1 more likely. Appends
/// `bits_per_symbol` values to `out`.
fn bit_llrs(modulation: Modulation, z: Complex64, sigma2: f64, out: &mut Vec<f64>) {
    let bps = modulation.bits_per_symbol();
    let n_points = 1usize << bps;
    let mut best0 = vec![f64::INFINITY; bps];
    let mut best1 = vec![f64::INFINITY; bps];
    for v in 0..n_points {
        let bits: Vec<bool> = (0..bps).map(|b| (v >> b) & 1 == 1).collect();
        let s = modulation.map(&bits);
        let d = (z - s).norm_sqr();
        for (b, &bit) in bits.iter().enumerate() {
            if bit {
                if d < best1[b] {
                    best1[b] = d;
                }
            } else if d < best0[b] {
                best0[b] = d;
            }
        }
    }
    for b in 0..bps {
        out.push((best0[b] - best1[b]) / sigma2);
    }
}

/// Simulates one coded frame over a per-subcarrier channel with AWGN and
/// returns whether it decoded without error.
///
/// `tx_amp` scales the unit-energy constellation per subcarrier;
/// `noise_sigma` is the per-component noise standard deviation. The
/// receiver is given the *true* channel (genie CSI) — PER differences then
/// isolate the channel shape, which is the PRESS-relevant variable.
pub fn frame_survives<R: Rng + ?Sized>(
    modem: &Modem,
    payload: &[bool],
    h: &[Complex64],
    tx_amp: f64,
    noise_sigma: f64,
    rng: &mut R,
) -> bool {
    use press_propagation_noise::gaussian;
    let tx_symbols = modem.encode_frame(payload);
    let rx_symbols: Vec<Vec<Complex64>> = tx_symbols
        .iter()
        .map(|sym| {
            sym.iter()
                .enumerate()
                .map(|(k, x)| {
                    *x * tx_amp * h[k]
                        + Complex64::new(gaussian(rng) * noise_sigma, gaussian(rng) * noise_sigma)
                })
                .collect()
        })
        .collect();
    let h_scaled: Vec<Complex64> = h.iter().map(|hk| *hk * tx_amp).collect();
    let noise_power = vec![2.0 * noise_sigma * noise_sigma; h.len()];
    let decoded = modem.decode_frame(&rx_symbols, &h_scaled, &noise_power, payload.len());
    decoded == payload
}

/// Packet error rate over `n_frames` random payloads.
pub fn packet_error_rate<R: Rng + ?Sized>(
    modem: &Modem,
    payload_bits: usize,
    h: &[Complex64],
    tx_amp: f64,
    noise_sigma: f64,
    n_frames: usize,
    rng: &mut R,
) -> f64 {
    let mut failures = 0usize;
    for _ in 0..n_frames {
        let payload: Vec<bool> = (0..payload_bits).map(|_| rng.gen()).collect();
        if !frame_survives(modem, &payload, h, tx_amp, noise_sigma, rng) {
            failures += 1;
        }
    }
    failures as f64 / n_frames as f64
}

/// Minimal local Gaussian sampler (kept here to avoid a dependency cycle
/// with press-propagation, whose `fading::gaussian` is the same Box–Muller).
mod press_propagation_noise {
    use rand::Rng;

    pub fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        loop {
            let u1: f64 = rng.gen::<f64>();
            let u2: f64 = rng.gen::<f64>();
            if u1 > f64::MIN_POSITIVE {
                return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mcs::MCS_TABLE;
    use press_math::db::db_to_amp;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn num() -> Numerology {
        Numerology::wifi20(2.462e9)
    }

    fn flat_channel(n: usize) -> Vec<Complex64> {
        vec![Complex64::ONE; n]
    }

    /// Channel with a deep notch across a band of subcarriers.
    fn notched_channel(n: usize, from: usize, to: usize, depth_db: f64) -> Vec<Complex64> {
        (0..n)
            .map(|k| {
                if (from..to).contains(&k) {
                    Complex64::real(db_to_amp(-depth_db))
                } else {
                    Complex64::ONE
                }
            })
            .collect()
    }

    #[test]
    fn noiseless_roundtrip_every_mcs() {
        let mut rng = StdRng::seed_from_u64(1);
        for mcs in MCS_TABLE {
            let modem = Modem::new(num(), mcs);
            let payload: Vec<bool> = (0..480).map(|_| rng.gen()).collect();
            assert!(
                frame_survives(&modem, &payload, &flat_channel(52), 1.0, 1e-9, &mut rng),
                "MCS {} failed clean",
                mcs.index
            );
        }
    }

    /// SNR (dB) -> per-component noise sigma for unit TX and unit channel.
    fn sigma_for_snr(snr_db: f64) -> f64 {
        let snr = 10f64.powf(snr_db / 10.0);
        (1.0 / (2.0 * snr)).sqrt()
    }

    #[test]
    fn mcs_thresholds_are_honest() {
        // At its threshold SNR each MCS should mostly get through on a flat
        // channel; 5 dB below it should mostly fail. Validates the rate
        // table against the real decoder.
        let mut rng = StdRng::seed_from_u64(2);
        for mcs in [MCS_TABLE[0], MCS_TABLE[3], MCS_TABLE[6]] {
            let modem = Modem::new(num(), mcs);
            let at = packet_error_rate(
                &modem,
                240,
                &flat_channel(52),
                1.0,
                sigma_for_snr(mcs.min_snr_db + 1.0),
                30,
                &mut rng,
            );
            // The table's thresholds are spec-level operating points with
            // implementation margin; the ideal soft decoder's cliff sits a
            // few dB below them, so probe 10 dB under.
            let below = packet_error_rate(
                &modem,
                240,
                &flat_channel(52),
                1.0,
                sigma_for_snr(mcs.min_snr_db - 10.0),
                30,
                &mut rng,
            );
            assert!(at < 0.4, "MCS {} PER {at} at threshold+1", mcs.index);
            assert!(below > 0.6, "MCS {} PER {below} at threshold-10", mcs.index);
        }
    }

    #[test]
    fn interleaving_defeats_narrow_notch() {
        // A 6-subcarrier 25 dB notch wipes ~12% of coded bits; rate-1/2 +
        // interleaving must still deliver at a healthy mean SNR.
        let mcs = MCS_TABLE[2]; // QPSK r1/2
        let modem = Modem::new(num(), mcs);
        let mut rng = StdRng::seed_from_u64(3);
        let per = packet_error_rate(
            &modem,
            240,
            &notched_channel(52, 20, 26, 25.0),
            1.0,
            sigma_for_snr(14.0),
            30,
            &mut rng,
        );
        assert!(per < 0.2, "narrow notch should be correctable: PER {per}");
    }

    #[test]
    fn wide_notch_kills_high_rate_but_not_low_rate() {
        // Half the band 20 dB down: 64-QAM r3/4 collapses, BPSK r1/2 lives.
        let h = notched_channel(52, 0, 26, 20.0);
        let mut rng = StdRng::seed_from_u64(4);
        let fragile = Modem::new(num(), MCS_TABLE[7]);
        let robust = Modem::new(num(), MCS_TABLE[0]);
        let sigma = sigma_for_snr(26.0);
        let per_fragile = packet_error_rate(&fragile, 240, &h, 1.0, sigma, 20, &mut rng);
        let per_robust = packet_error_rate(&robust, 240, &h, 1.0, sigma, 20, &mut rng);
        assert!(per_fragile > 0.5, "fragile PER {per_fragile}");
        assert!(per_robust < 0.2, "robust PER {per_robust}");
    }

    #[test]
    fn removing_a_null_rescues_the_frame() {
        // The paper's core story at packet level: same mean channel power,
        // with and without a deep null; the nulled channel drops frames the
        // clean one delivers.
        let mcs = MCS_TABLE[5]; // 16-QAM r3/4
        let modem = Modem::new(num(), mcs);
        let mut rng = StdRng::seed_from_u64(5);
        let sigma = sigma_for_snr(19.0);
        // Half the band nulled: more erasures than rate 3/4 can absorb.
        let nulled = notched_channel(52, 10, 36, 30.0);
        let per_nulled = packet_error_rate(&modem, 240, &nulled, 1.0, sigma, 25, &mut rng);
        let per_clean = packet_error_rate(&modem, 240, &flat_channel(52), 1.0, sigma, 25, &mut rng);
        assert!(
            per_nulled > per_clean + 0.3,
            "null must cost packets: {per_nulled} vs {per_clean}"
        );
    }

    #[test]
    fn encode_frame_shapes() {
        let modem = Modem::new(num(), MCS_TABLE[4]); // 16-QAM r1/2
        let payload = vec![true; 200];
        let symbols = modem.encode_frame(&payload);
        // (200+6)*2 = 412 coded bits, 208 bits/symbol => 2 symbols.
        assert_eq!(symbols.len(), 2);
        assert!(symbols.iter().all(|s| s.len() == 52));
    }
}
