//! Power-delay profiles from channel state information.
//!
//! The delay-domain view of a channel frequency response — how much energy
//! arrives at which excess delay — is the standard diagnostic for multipath
//! structure and the bridge between measured CSI and the path-based model
//! the inverse problem works in. Computed as a windowed IFFT of the active
//! subcarriers.

use press_math::fft::ifft;
use press_math::Complex64;

/// A power-delay profile: energy per delay bin.
#[derive(Debug, Clone, PartialEq)]
pub struct DelayProfile {
    /// Power per bin (linear).
    pub power: Vec<f64>,
    /// Delay resolution — seconds per bin.
    pub bin_s: f64,
}

impl DelayProfile {
    /// Computes the PDP of a channel sampled at `n` contiguous subcarriers
    /// spaced `spacing_hz` apart. A Hann window tames the leakage from the
    /// band edges. `fft_size` (power of two ≥ n) sets the interpolation.
    pub fn from_channel(h: &[Complex64], spacing_hz: f64, fft_size: usize) -> DelayProfile {
        assert!(fft_size >= h.len(), "fft_size must cover the samples");
        assert!(
            fft_size.is_power_of_two(),
            "fft_size must be a power of two"
        );
        let n = h.len();
        let mut bins = vec![Complex64::ZERO; fft_size];
        for (k, &hk) in h.iter().enumerate() {
            // Hann window over the active band.
            let w = 0.5 - 0.5 * (std::f64::consts::TAU * k as f64 / (n.max(2) as f64 - 1.0)).cos();
            bins[k] = hk * w;
        }
        ifft(&mut bins).expect("power-of-two fft_size"); // press-lint: allow(panic-freedom) — fft_size asserted to be a power of two above
        DelayProfile {
            power: bins.iter().map(|x| x.norm_sqr()).collect(),
            bin_s: 1.0 / (spacing_hz * fft_size as f64),
        }
    }

    /// Number of delay bins.
    pub fn len(&self) -> usize {
        self.power.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.power.is_empty()
    }

    /// The delay (seconds) of the strongest bin.
    pub fn peak_delay_s(&self) -> f64 {
        let idx = self
            .power
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap_or(0);
        idx as f64 * self.bin_s
    }

    /// RMS delay spread of the profile (second central moment), seconds.
    ///
    /// Bins below `floor_fraction` of the peak are excluded (window
    /// sidelobes and noise would otherwise dominate the tails). Bins in the
    /// upper half of the IFFT are interpreted as *negative* delays (window
    /// leakage around zero wraps there); the moment is taken over the
    /// signed delay axis.
    pub fn rms_spread_s(&self, floor_fraction: f64) -> f64 {
        let peak = self.power.iter().cloned().fold(0.0, f64::max);
        if peak <= 0.0 {
            return 0.0;
        }
        let n = self.power.len();
        let signed = |i: usize| -> f64 {
            if i < n / 2 {
                i as f64
            } else {
                i as f64 - n as f64
            }
        };
        let floor = peak * floor_fraction;
        let mut total = 0.0;
        let mut mean = 0.0;
        for (i, &p) in self.power.iter().enumerate() {
            if p >= floor {
                total += p;
                mean += p * signed(i);
            }
        }
        if total <= 0.0 {
            return 0.0;
        }
        mean /= total;
        let mut second = 0.0;
        for (i, &p) in self.power.iter().enumerate() {
            if p >= floor {
                let d = signed(i) - mean;
                second += p * d * d;
            }
        }
        (second / total).sqrt() * self.bin_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn channel_of_paths(paths: &[(f64, f64)], n: usize, spacing: f64) -> Vec<Complex64> {
        // paths: (amplitude, delay_s); baseband subcarriers k*spacing.
        (0..n)
            .map(|k| {
                paths
                    .iter()
                    .map(|&(a, tau)| {
                        Complex64::from_polar(a, -std::f64::consts::TAU * k as f64 * spacing * tau)
                    })
                    .sum()
            })
            .collect()
    }

    const SPACING: f64 = 312_500.0;

    #[test]
    fn single_path_peaks_at_its_delay() {
        let tau = 400e-9;
        let h = channel_of_paths(&[(1.0, tau)], 52, SPACING);
        let pdp = DelayProfile::from_channel(&h, SPACING, 256);
        assert!(
            (pdp.peak_delay_s() - tau).abs() < 2.0 * pdp.bin_s,
            "peak at {} vs {tau}",
            pdp.peak_delay_s()
        );
    }

    #[test]
    fn two_paths_two_peaks() {
        let h = channel_of_paths(&[(1.0, 100e-9), (0.8, 1200e-9)], 52, SPACING);
        let pdp = DelayProfile::from_channel(&h, SPACING, 512);
        // Count local maxima above 30% of global peak.
        let peak = pdp.power.iter().cloned().fold(0.0, f64::max);
        let mut maxima = 0;
        for i in 1..pdp.len() - 1 {
            if pdp.power[i] > pdp.power[i - 1]
                && pdp.power[i] >= pdp.power[i + 1]
                && pdp.power[i] > 0.3 * peak
            {
                maxima += 1;
            }
        }
        assert!(maxima >= 2, "found {maxima} peaks");
    }

    #[test]
    fn wider_separation_bigger_spread() {
        let near = channel_of_paths(&[(1.0, 0.0), (1.0, 200e-9)], 52, SPACING);
        let far = channel_of_paths(&[(1.0, 0.0), (1.0, 1500e-9)], 52, SPACING);
        let s_near = DelayProfile::from_channel(&near, SPACING, 512).rms_spread_s(0.05);
        let s_far = DelayProfile::from_channel(&far, SPACING, 512).rms_spread_s(0.05);
        assert!(s_far > s_near, "{s_far} vs {s_near}");
    }

    #[test]
    fn flat_channel_concentrates_at_zero_delay() {
        let h = vec![Complex64::ONE; 52];
        let pdp = DelayProfile::from_channel(&h, SPACING, 256);
        assert!(pdp.peak_delay_s() < 2.0 * pdp.bin_s);
    }

    #[test]
    fn bin_resolution_matches_span() {
        let h = vec![Complex64::ONE; 52];
        let pdp = DelayProfile::from_channel(&h, SPACING, 256);
        assert!((pdp.bin_s - 1.0 / (SPACING * 256.0)).abs() < 1e-18);
        assert_eq!(pdp.len(), 256);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_bad_fft_size() {
        let h = vec![Complex64::ONE; 52];
        DelayProfile::from_channel(&h, SPACING, 100);
    }
}
