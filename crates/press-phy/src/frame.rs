//! OFDM frames: training preambles, payload symbols, and the time-domain
//! modulator.
//!
//! The paper's sounding procedure is: "the transmitter sends one frame
//! comprised of multiple OFDM symbols and the receiver estimates the channel
//! state information from the training sequences in the frame." A
//! [`Frame`] here is exactly that — a preamble of known training symbols
//! (802.11-LTF style) followed by modulated payload symbols.

use crate::modulation::Modulation;
use crate::numerology::Numerology;
use press_math::fft::{fft, ifft};
use press_math::Complex64;

/// The 802.11a L-LTF sign sequence for 52 active subcarriers (−26..−1,
/// +1..+26 in ascending frequency order, as Annex I of the standard lists).
const LTF_52: [i8; 52] = [
    1, 1, -1, -1, 1, 1, -1, 1, -1, 1, 1, 1, 1, 1, 1, -1, -1, 1, 1, -1, 1, -1, 1, 1, 1,
    1, // -26..-1
    1, -1, -1, 1, 1, -1, 1, -1, 1, -1, -1, -1, -1, -1, 1, 1, -1, -1, 1, -1, 1, -1, 1, 1, 1,
    1, // +1..+26
];

/// Deterministic ±1 training sequence for `n` active subcarriers.
///
/// For 52 subcarriers this is the genuine 802.11 L-LTF; other widths use a
/// fixed pseudo-random (LCG-generated) sign pattern so every numerology has
/// a reproducible preamble.
pub fn training_sequence(n: usize) -> Vec<Complex64> {
    if n == 52 {
        return LTF_52.iter().map(|&s| Complex64::real(s as f64)).collect();
    }
    // Deterministic LCG; constants from Numerical Recipes.
    let mut state = 0x5DEECE66Du64;
    (0..n)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let bit = (state >> 40) & 1;
            Complex64::real(if bit == 1 { 1.0 } else { -1.0 })
        })
        .collect()
}

/// An OFDM frame in the frequency domain: per-subcarrier symbols for each
/// OFDM symbol period.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    /// Training symbols (each `n_active` long). Wi-Fi sends two.
    pub training: Vec<Vec<Complex64>>,
    /// Payload symbols (each `n_active` long).
    pub payload: Vec<Vec<Complex64>>,
}

impl Frame {
    /// Builds a sounding frame: `n_training` repeats of the training
    /// sequence and no payload — all the paper's measurements need.
    pub fn sounding(num: &Numerology, n_training: usize) -> Frame {
        let seq = training_sequence(num.n_active());
        Frame {
            training: vec![seq; n_training],
            payload: Vec::new(),
        }
    }

    /// Builds a data frame: two training symbols plus payload bits mapped
    /// onto every active subcarrier with the given modulation. Bits are
    /// consumed LSB-first; the tail is zero-padded.
    pub fn data(num: &Numerology, modulation: Modulation, bits: &[bool]) -> Frame {
        let n = num.n_active();
        let bps = modulation.bits_per_symbol();
        let per_symbol = n * bps;
        let n_symbols = bits.len().div_ceil(per_symbol);
        let mut payload = Vec::with_capacity(n_symbols);
        for s in 0..n_symbols {
            let mut sym = Vec::with_capacity(n);
            for k in 0..n {
                let start = s * per_symbol + k * bps;
                let mut chunk = vec![false; bps];
                for (b, slot) in chunk.iter_mut().enumerate() {
                    if let Some(&bit) = bits.get(start + b) {
                        *slot = bit;
                    }
                }
                sym.push(modulation.map(&chunk));
            }
            payload.push(sym);
        }
        Frame {
            training: vec![training_sequence(n); 2],
            payload,
        }
    }

    /// Total OFDM symbols in the frame.
    pub fn n_symbols(&self) -> usize {
        self.training.len() + self.payload.len()
    }

    /// Airtime of the frame under the given numerology, seconds.
    pub fn duration_s(&self, num: &Numerology) -> f64 {
        self.n_symbols() as f64 * num.symbol_duration_s()
    }
}

/// Time-domain OFDM modulator/demodulator for one numerology.
///
/// The sounding pipeline works in the frequency domain (per-subcarrier
/// multiplication is exact once the cyclic prefix exceeds the delay spread),
/// but the modulator exists so tests can verify that equivalence and so the
/// examples can show genuine sample streams.
#[derive(Debug, Clone)]
pub struct OfdmModulator {
    num: Numerology,
}

impl OfdmModulator {
    /// Creates a modulator for a numerology.
    pub fn new(num: Numerology) -> Self {
        OfdmModulator { num }
    }

    /// Access to the numerology.
    pub fn numerology(&self) -> &Numerology {
        &self.num
    }

    /// Frequency-domain symbol (length `n_active`) → time-domain samples
    /// (length `fft_size + cp_len`), cyclic prefix first.
    pub fn to_time(&self, freq_symbols: &[Complex64]) -> Vec<Complex64> {
        assert_eq!(freq_symbols.len(), self.num.n_active(), "symbol width");
        let mut bins = vec![Complex64::ZERO; self.num.fft_size];
        for (i, &x) in freq_symbols.iter().enumerate() {
            bins[self.num.fft_bin(i)] = x;
        }
        ifft(&mut bins).expect("fft_size is a power of two"); // press-lint: allow(panic-freedom) — Numerology guarantees a power-of-two fft_size
        let mut out = Vec::with_capacity(self.num.fft_size + self.num.cp_len);
        out.extend_from_slice(&bins[self.num.fft_size - self.num.cp_len..]);
        out.extend_from_slice(&bins);
        out
    }

    /// Time-domain samples (with cyclic prefix) → frequency-domain symbol on
    /// the active subcarriers.
    pub fn to_freq(&self, time_samples: &[Complex64]) -> Vec<Complex64> {
        assert_eq!(
            time_samples.len(),
            self.num.fft_size + self.num.cp_len,
            "sample count"
        );
        let mut bins = time_samples[self.num.cp_len..].to_vec();
        fft(&mut bins).expect("fft_size is a power of two"); // press-lint: allow(panic-freedom) — Numerology guarantees a power-of-two fft_size
        (0..self.num.n_active())
            .map(|i| bins[self.num.fft_bin(i)])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use press_math::consts::WIFI_CHANNEL_11_HZ;

    fn num() -> Numerology {
        Numerology::wifi20(WIFI_CHANNEL_11_HZ)
    }

    #[test]
    fn ltf_is_pm_one_and_52_long() {
        let seq = training_sequence(52);
        assert_eq!(seq.len(), 52);
        assert!(seq
            .iter()
            .all(|s| (s.abs() - 1.0).abs() < 1e-15 && s.im == 0.0));
    }

    #[test]
    fn training_deterministic_any_width() {
        assert_eq!(training_sequence(102), training_sequence(102));
        assert_eq!(training_sequence(102).len(), 102);
    }

    #[test]
    fn sounding_frame_shape() {
        let f = Frame::sounding(&num(), 2);
        assert_eq!(f.training.len(), 2);
        assert!(f.payload.is_empty());
        assert_eq!(f.n_symbols(), 2);
        assert!((f.duration_s(&num()) - 8e-6).abs() < 1e-12);
    }

    #[test]
    fn data_frame_packs_bits() {
        let bits: Vec<bool> = (0..520).map(|i| i % 3 == 0).collect();
        let f = Frame::data(&num(), Modulation::Qpsk, &bits);
        // 52 subcarriers * 2 bits = 104 bits/symbol => 5 symbols for 520 bits.
        assert_eq!(f.payload.len(), 5);
        assert_eq!(f.payload[0].len(), 52);
    }

    #[test]
    fn modulator_roundtrip() {
        let m = OfdmModulator::new(num());
        let sym = training_sequence(52);
        let t = m.to_time(&sym);
        assert_eq!(t.len(), 80);
        let back = m.to_freq(&t);
        for (a, b) in sym.iter().zip(&back) {
            assert!((*a - *b).abs() < 1e-9);
        }
    }

    #[test]
    fn cyclic_prefix_is_tail_copy() {
        let m = OfdmModulator::new(num());
        let t = m.to_time(&training_sequence(52));
        for i in 0..16 {
            assert!((t[i] - t[64 + i]).abs() < 1e-12);
        }
    }

    #[test]
    fn flat_channel_scales_symbols() {
        // Multiplying every time sample by g must scale the recovered
        // frequency symbols by g (linearity sanity for the sounder).
        let m = OfdmModulator::new(num());
        let sym = training_sequence(52);
        let g = Complex64::from_polar(0.5, 1.0);
        let t: Vec<Complex64> = m.to_time(&sym).into_iter().map(|x| x * g).collect();
        let back = m.to_freq(&t);
        for (a, b) in sym.iter().zip(&back) {
            assert!((*a * g - *b).abs() < 1e-9);
        }
    }

    #[test]
    fn delayed_channel_equals_frequency_domain_model() {
        // A two-tap channel applied by cyclic time shift within the CP equals
        // per-subcarrier multiplication by the channel frequency response.
        let m = OfdmModulator::new(num());
        let sym = training_sequence(52);
        let t = m.to_time(&sym);
        let delay = 5usize; // samples, < CP
        let a0 = Complex64::real(1.0);
        let a1 = Complex64::real(0.6);
        // y[n] = a0 x[n] + a1 x[n - delay] over the extended (CP) sequence.
        let mut y = vec![Complex64::ZERO; t.len()];
        for n in 0..t.len() {
            y[n] = t[n] * a0;
            if n >= delay {
                y[n] += t[n - delay] * a1;
            }
        }
        let got = m.to_freq(&y);
        let n_fft = 64.0;
        for (i, g) in got.iter().enumerate() {
            let k = m.numerology().fft_bin(i) as f64;
            let h =
                a0 + a1 * Complex64::cis(-2.0 * std::f64::consts::PI * k * delay as f64 / n_fft);
            let expect = sym[i] * h;
            assert!((*g - expect).abs() < 1e-9, "subcarrier {i}");
        }
    }
}
