//! MIMO channel matrices, conditioning, and capacity.
//!
//! The paper's Figure 8 measures the 2×2 MIMO channel matrix for each PRESS
//! configuration and plots the CDF of its condition number (in dB) across
//! subcarriers — "critically important to the channel capacity". This module
//! holds per-subcarrier channel matrices and computes exactly those
//! statistics, plus Shannon capacity so the ablations can tie conditioning
//! back to throughput.

use press_math::db::db_to_pow;
use press_math::mat::{CMat, MatError};
use press_math::svd;
use press_math::Complex64;

/// A MIMO channel: one `n_rx × n_tx` complex matrix per active subcarrier.
#[derive(Debug, Clone, PartialEq)]
pub struct MimoChannel {
    /// Per-subcarrier channel matrices, ascending subcarrier order.
    pub per_subcarrier: Vec<CMat>,
}

impl MimoChannel {
    /// Wraps per-subcarrier matrices. Panics if shapes are inconsistent.
    pub fn new(per_subcarrier: Vec<CMat>) -> Self {
        if let Some(first) = per_subcarrier.first() {
            let shape = first.shape();
            assert!(
                per_subcarrier.iter().all(|m| m.shape() == shape),
                "inconsistent per-subcarrier shapes"
            );
        }
        MimoChannel { per_subcarrier }
    }

    /// Builds from per-antenna-pair scalar channels: `h[rx][tx]` is the
    /// per-subcarrier response from TX antenna `tx` to RX antenna `rx`.
    ///
    /// Panics when the grid is ragged.
    pub fn from_scalar_channels(h: &[Vec<Vec<Complex64>>]) -> Self {
        let n_rx = h.len();
        let n_tx = h[0].len();
        let n_sc = h[0][0].len();
        for row in h {
            assert_eq!(row.len(), n_tx, "ragged TX dimension");
            for chan in row {
                assert_eq!(chan.len(), n_sc, "ragged subcarrier dimension");
            }
        }
        let per_subcarrier = (0..n_sc)
            .map(|k| CMat::from_fn(n_rx, n_tx, |i, j| h[i][j][k]))
            .collect();
        MimoChannel { per_subcarrier }
    }

    /// Number of subcarriers.
    pub fn n_subcarriers(&self) -> usize {
        self.per_subcarrier.len()
    }

    /// `(n_rx, n_tx)`.
    pub fn shape(&self) -> (usize, usize) {
        self.per_subcarrier.first().map_or((0, 0), |m| m.shape())
    }

    /// Condition number in dB per subcarrier — the Figure 8 series.
    pub fn condition_numbers_db(&self) -> Result<Vec<f64>, MatError> {
        self.per_subcarrier
            .iter()
            .map(svd::condition_number_db)
            .collect()
    }

    /// Median condition number (dB) across subcarriers — the scalar used to
    /// rank configurations in the Figure 8 harness.
    pub fn median_condition_db(&self) -> Result<f64, MatError> {
        let mut v = self.condition_numbers_db()?;
        v.retain(|x| x.is_finite());
        if v.is_empty() {
            return Ok(f64::INFINITY);
        }
        v.sort_by(f64::total_cmp);
        Ok(v[v.len() / 2])
    }

    /// Open-loop (equal power, no CSIT) MIMO Shannon capacity summed over
    /// subcarriers, bits/s:
    /// `Σ_k Δf · log2 det(I + (ρ/n_tx)·H_k·H_k^H)` with ρ the per-subcarrier
    /// SNR (linear).
    pub fn capacity_bps(&self, snr_db: f64, subcarrier_spacing_hz: f64) -> Result<f64, MatError> {
        let rho = db_to_pow(snr_db);
        let mut total = 0.0;
        for h in &self.per_subcarrier {
            let (_, n_tx) = h.shape();
            // Eigenvalues of H H^H are squared singular values of H.
            let sv = svd::singular_values(h)?;
            let cap_k: f64 = sv
                .iter()
                .map(|&s| (1.0 + rho / n_tx as f64 * s * s).log2())
                .sum();
            total += subcarrier_spacing_hz * cap_k;
        }
        Ok(total)
    }

    /// Average over a set of repeated channel measurements (the Figure 8
    /// harness averages 50 successive measurements per configuration).
    ///
    /// Panics when the set is empty or shapes differ.
    pub fn average(measurements: &[MimoChannel]) -> MimoChannel {
        assert!(!measurements.is_empty(), "no measurements to average");
        let n_sc = measurements[0].n_subcarriers();
        let shape = measurements[0].shape();
        for m in measurements {
            assert_eq!(m.n_subcarriers(), n_sc);
            assert_eq!(m.shape(), shape);
        }
        let scale = Complex64::real(1.0 / measurements.len() as f64);
        let per_subcarrier = (0..n_sc)
            .map(|k| {
                let mut acc = CMat::zeros(shape.0, shape.1);
                for m in measurements {
                    acc = &acc + &m.per_subcarrier[k];
                }
                acc.scale(scale)
            })
            .collect();
        MimoChannel { per_subcarrier }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(re: f64, im: f64) -> Complex64 {
        Complex64::new(re, im)
    }

    fn identity_channel(n_sc: usize) -> MimoChannel {
        MimoChannel::new(vec![CMat::identity(2); n_sc])
    }

    #[test]
    fn identity_channel_is_0db_conditioned() {
        let ch = identity_channel(52);
        let k = ch.condition_numbers_db().unwrap();
        assert_eq!(k.len(), 52);
        assert!(k.iter().all(|&x| x.abs() < 1e-9));
        assert!(ch.median_condition_db().unwrap().abs() < 1e-9);
    }

    #[test]
    fn rank_deficient_channel_is_infinitely_conditioned() {
        let m = CMat::from_rows(&[&[c(1.0, 0.0), c(1.0, 0.0)], &[c(1.0, 0.0), c(1.0, 0.0)]]);
        let ch = MimoChannel::new(vec![m]);
        assert!(ch.condition_numbers_db().unwrap()[0].is_infinite());
    }

    #[test]
    fn from_scalar_channels_layout() {
        // h[rx][tx][k]
        let h = vec![
            vec![vec![c(1.0, 0.0); 4], vec![c(2.0, 0.0); 4]],
            vec![vec![c(3.0, 0.0); 4], vec![c(4.0, 0.0); 4]],
        ];
        let ch = MimoChannel::from_scalar_channels(&h);
        assert_eq!(ch.n_subcarriers(), 4);
        assert_eq!(ch.shape(), (2, 2));
        let m = &ch.per_subcarrier[0];
        assert_eq!(m[(0, 0)], c(1.0, 0.0));
        assert_eq!(m[(0, 1)], c(2.0, 0.0));
        assert_eq!(m[(1, 0)], c(3.0, 0.0));
        assert_eq!(m[(1, 1)], c(4.0, 0.0));
    }

    #[test]
    fn capacity_prefers_well_conditioned() {
        // Same Frobenius energy, different conditioning.
        let good = CMat::from_rows(&[&[c(1.0, 0.0), c(0.0, 0.0)], &[c(0.0, 0.0), c(1.0, 0.0)]]);
        let bad = CMat::from_rows(&[&[c(1.4106, 0.0), c(0.1, 0.0)], &[c(0.1, 0.0), c(0.0, 0.0)]]);
        let spacing = 312_500.0;
        let cap_good = MimoChannel::new(vec![good])
            .capacity_bps(20.0, spacing)
            .unwrap();
        let cap_bad = MimoChannel::new(vec![bad])
            .capacity_bps(20.0, spacing)
            .unwrap();
        assert!(cap_good > cap_bad, "{cap_good} vs {cap_bad}");
    }

    #[test]
    fn capacity_2x2_identity_doubles_siso() {
        let spacing = 312_500.0;
        let mimo = identity_channel(1).capacity_bps(20.0, spacing).unwrap();
        // Each of the two unit streams sees rho/2: 2*log2(1+50).
        let expect = spacing * 2.0 * (1.0 + 100.0 / 2.0f64).log2();
        assert!((mimo - expect).abs() < 1e-6);
    }

    #[test]
    fn averaging_reduces_to_mean() {
        let a = MimoChannel::new(vec![CMat::identity(2)]);
        let b = MimoChannel::new(vec![CMat::identity(2).scale(c(3.0, 0.0))]);
        let avg = MimoChannel::average(&[a, b]);
        assert!((avg.per_subcarrier[0][(0, 0)] - c(2.0, 0.0)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "inconsistent per-subcarrier shapes")]
    fn inconsistent_shapes_rejected() {
        MimoChannel::new(vec![CMat::identity(2), CMat::identity(3)]);
    }

    #[test]
    fn median_ignores_infinities() {
        let singular = CMat::from_rows(&[&[c(1.0, 0.0), c(1.0, 0.0)], &[c(1.0, 0.0), c(1.0, 0.0)]]);
        let ch = MimoChannel::new(vec![CMat::identity(2), singular, CMat::identity(2)]);
        assert!(ch.median_condition_db().unwrap().abs() < 1e-9);
    }
}
