//! Property-based tests for the OFDM PHY: invariants that must hold for
//! arbitrary payloads, constellations, channels and code rates.

use press_math::Complex64;
use press_phy::fec::{self, CodeRate};
use press_phy::frame::{training_sequence, OfdmModulator};
use press_phy::modulation::Modulation;
use press_phy::numerology::Numerology;
use press_phy::snr::SnrProfile;
use proptest::prelude::*;

fn modulations() -> impl Strategy<Value = Modulation> {
    prop_oneof![
        Just(Modulation::Bpsk),
        Just(Modulation::Qpsk),
        Just(Modulation::Qam16),
        Just(Modulation::Qam64),
        Just(Modulation::Qam256),
    ]
}

fn code_rates() -> impl Strategy<Value = CodeRate> {
    prop_oneof![
        Just(CodeRate::R12),
        Just(CodeRate::R23),
        Just(CodeRate::R34)
    ]
}

proptest! {
    #[test]
    fn constellation_roundtrip(m in modulations(), v in 0usize..256) {
        let bps = m.bits_per_symbol();
        let v = v % (1 << bps);
        let bits: Vec<bool> = (0..bps).map(|b| (v >> b) & 1 == 1).collect();
        prop_assert_eq!(m.demap(m.map(&bits)), bits);
    }

    #[test]
    fn constellation_points_bounded(m in modulations(), v in 0usize..256) {
        let bps = m.bits_per_symbol();
        let v = v % (1 << bps);
        let bits: Vec<bool> = (0..bps).map(|b| (v >> b) & 1 == 1).collect();
        // Unit mean energy => no point further than sqrt(2)*peak/rms ~ 2.
        prop_assert!(m.map(&bits).abs() < 2.0);
    }

    #[test]
    fn fec_clean_roundtrip(bits in proptest::collection::vec(any::<bool>(), 1..300), rate in code_rates()) {
        let coded = fec::encode(&bits, rate);
        prop_assert_eq!(coded.len(), fec::coded_len(bits.len(), rate));
        let decoded = fec::viterbi_decode_hard(&coded, bits.len(), rate);
        prop_assert_eq!(decoded, bits);
    }

    #[test]
    fn fec_corrects_single_error_anywhere(bits in proptest::collection::vec(any::<bool>(), 30..120), pos in 0usize..200) {
        let mut coded = fec::encode(&bits, CodeRate::R12);
        let pos = pos % coded.len();
        coded[pos] = !coded[pos];
        let decoded = fec::viterbi_decode_hard(&coded, bits.len(), CodeRate::R12);
        prop_assert_eq!(decoded, bits, "flip at {}", pos);
    }

    #[test]
    fn interleaver_is_a_permutation(blocks in 1usize..4, n_cbps_raw in 24usize..300) {
        let n_cbps = n_cbps_raw;
        let bits: Vec<bool> = (0..blocks * n_cbps).map(|i| i % 3 == 0).collect();
        let inter = fec::interleave(&bits, n_cbps);
        prop_assert_eq!(inter.iter().filter(|&&b| b).count(), bits.iter().filter(|&&b| b).count());
        prop_assert_eq!(fec::deinterleave(&inter, n_cbps), bits);
    }

    #[test]
    fn ofdm_modulator_roundtrip_arbitrary_symbols(seed in 0u64..1000) {
        let num = Numerology::wifi20(2.462e9);
        let modulator = OfdmModulator::new(num);
        let sym: Vec<Complex64> = (0..52)
            .map(|k| Complex64::cis((seed as f64 + 1.0) * k as f64 * 0.17))
            .collect();
        let t = modulator.to_time(&sym);
        let back = modulator.to_freq(&t);
        for (a, b) in sym.iter().zip(&back) {
            prop_assert!((*a - *b).abs() < 1e-9);
        }
    }

    #[test]
    fn snr_profile_invariants(v in proptest::collection::vec(-5.0..50.0f64, 2..102)) {
        let p = SnrProfile::new(v);
        prop_assert!(p.min_db() <= p.median_db() + 1e-12);
        prop_assert!(p.median_db() <= p.max_db() + 1e-12);
        prop_assert!(p.selectivity_db() >= 0.0);
        // Effective SNR never exceeds the best subcarrier or undercuts the worst.
        let eff = p.effective_snr_db(4.0);
        prop_assert!(eff <= p.max_db() + 1e-9);
        prop_assert!(eff >= p.min_db() - 1e-9);
    }

    #[test]
    fn null_detection_consistent(v in proptest::collection::vec(5.0..45.0f64, 8..64)) {
        let p = SnrProfile::new(v);
        if let Some(idx) = p.most_significant_null(5.0) {
            prop_assert_eq!(idx, p.argmin().unwrap());
            prop_assert!(p.snr_db[idx] <= p.median_db() - 5.0 + 1e-12);
        }
    }

    #[test]
    fn training_sequence_unit_modulus(n in 1usize..200) {
        for s in training_sequence(n) {
            prop_assert!((s.abs() - 1.0).abs() < 1e-12);
        }
    }
}
