//! Derived SLO series: the operational invariants of §4 of the paper as
//! live gauges.
//!
//! The control loop's contract is distributional — *most* episodes fit the
//! coherence budget, *few* revert, the surface stays *mostly* fresh — so
//! the SLO layer publishes ratios derived from session counters rather
//! than raw counts. Ratios with an empty denominator render as `0`, so a
//! fresh session exposes the complete series set from its first scrape.

use crate::{MetricsHub, SeriesId};

/// Family name: fraction of episodes that finished within the coherence
/// budget.
pub const COHERENCE_RATIO: &str = "press_slo_coherence_compliance_ratio";
/// Family name: episode slots skipped because an episode overran its
/// budget (the slot scheduler's `deferred_total`).
pub const DEFERRED_SLOTS: &str = "press_slo_deferred_slots";
/// Family name: fraction of episodes that reverted to baseline.
pub const REVERT_RATIO: &str = "press_slo_revert_ratio";
/// Family name: stale elements per element-episode — how much of the
/// surface each episode leaves out of the chosen configuration.
pub const STALE_FRACTION: &str = "press_slo_stale_element_fraction";

/// Raw inputs the SLO gauges are derived from. All cumulative except
/// `deferred_slots`, which is the scheduler's running total.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SloInputs {
    /// Episodes summarized so far.
    pub episodes: u64,
    /// Episodes that finished within the coherence budget.
    pub within_coherence: u64,
    /// Episodes that reverted to baseline.
    pub reverts: u64,
    /// Slot-scheduler deferrals booked so far.
    pub deferred_slots: u64,
    /// Stale elements summed over all episodes.
    pub stale_elements: u64,
    /// Σ per-episode element counts — the stale-fraction denominator.
    pub element_episodes: u64,
}

/// Handle bundle for the four SLO gauges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SloSet {
    coherence: SeriesId,
    deferred: SeriesId,
    revert: SeriesId,
    stale: SeriesId,
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

impl SloSet {
    /// Registers the SLO gauge families on `hub`. Idempotent, like every
    /// hub registration.
    pub fn register(hub: &mut MetricsHub) -> SloSet {
        SloSet {
            coherence: hub.gauge(
                COHERENCE_RATIO,
                "Fraction of episodes that fit the coherence budget.",
                &[],
            ),
            deferred: hub.gauge(
                DEFERRED_SLOTS,
                "Episode slots skipped because an episode overran its budget.",
                &[],
            ),
            revert: hub.gauge(
                REVERT_RATIO,
                "Fraction of episodes that reverted to baseline.",
                &[],
            ),
            stale: hub.gauge(STALE_FRACTION, "Stale elements per element-episode.", &[]),
        }
    }

    /// Recomputes every gauge from the given inputs. Pure in the inputs:
    /// the same `SloInputs` always yields the same four gauge values.
    pub fn update(&self, hub: &mut MetricsHub, inputs: &SloInputs) {
        hub.set(
            self.coherence,
            ratio(inputs.within_coherence, inputs.episodes),
        );
        hub.set(self.deferred, inputs.deferred_slots as f64);
        hub.set(self.revert, ratio(inputs.reverts, inputs.episodes));
        hub.set(
            self.stale,
            ratio(inputs.stale_elements, inputs.element_episodes),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_default_to_zero_without_episodes() {
        let mut hub = MetricsHub::new();
        let slo = SloSet::register(&mut hub);
        slo.update(&mut hub, &SloInputs::default());
        assert_eq!(hub.gauge_named(COHERENCE_RATIO, &[]), Some(0.0));
        assert_eq!(hub.gauge_named(REVERT_RATIO, &[]), Some(0.0));
        assert_eq!(hub.gauge_named(STALE_FRACTION, &[]), Some(0.0));
        assert_eq!(hub.gauge_named(DEFERRED_SLOTS, &[]), Some(0.0));
    }

    #[test]
    fn gauges_are_pure_in_the_inputs() {
        let inputs = SloInputs {
            episodes: 8,
            within_coherence: 6,
            reverts: 2,
            deferred_slots: 3,
            stale_elements: 4,
            element_episodes: 32,
        };
        let mut hub = MetricsHub::new();
        let slo = SloSet::register(&mut hub);
        slo.update(&mut hub, &inputs);
        assert_eq!(hub.gauge_named(COHERENCE_RATIO, &[]), Some(0.75));
        assert_eq!(hub.gauge_named(DEFERRED_SLOTS, &[]), Some(3.0));
        assert_eq!(hub.gauge_named(REVERT_RATIO, &[]), Some(0.25));
        assert_eq!(hub.gauge_named(STALE_FRACTION, &[]), Some(0.125));
        // Re-applying the same inputs changes nothing (idempotent update).
        let before = hub.render();
        slo.update(&mut hub, &inputs);
        assert_eq!(hub.render(), before);
    }
}
