//! Deterministic metrics for the PRESS stack: a registry, a trace→metrics
//! aggregator, SLO derivation, and a Prometheus-text-format renderer.
//!
//! The control loop's operational invariants — does an episode fit the
//! coherence budget, how often does verification revert, how stale is the
//! surface — are *distributional* statements, and a long-running daemon
//! needs them as a live telemetry surface, not a post-hoc CSV. This crate
//! is that surface, built under the same discipline as the rest of the
//! simulation stack:
//!
//! 1. **No ambient anything.** No wall clock, no atomics, no globals. The
//!    [`MetricsHub`] is plain owned data; every timestamp it ever sees is
//!    sim-time supplied by the caller.
//! 2. **Exposition is a pure function of recorded values.** Families render
//!    in `BTreeMap` name order, series in label order, floats in Rust's
//!    shortest round-trip notation — two hubs that recorded the same values
//!    render byte-identical text, regardless of registration order. The
//!    format is fixpoint-tested like the pressd protocol:
//!    [`parse_exposition`] ∘ [`render_exposition`] is the identity on
//!    rendered output.
//! 3. **One histogram implementation.** Distributions reuse
//!    [`press_control::Histogram`] (exact count/sum/min/max alongside
//!    fixed buckets) rather than duplicating quantile machinery.
//!
//! The hot path is handle-based: observers resolve a [`SeriesId`] once at
//! registration and update through it without any lookups or allocation,
//! so a live hub stays well under the press-trace overhead budget.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt::Write as _;

use press_control::Histogram;

pub mod aggregate;
pub mod slo;

pub use aggregate::{
    hub_from_jsonl, TraceAggregator, ACTUATIONS_TOTAL, ACTUATION_FAILED_TOTAL, ACTUATION_SECONDS,
    APPLIED_TOTAL, BACKOFFS_TOTAL, BASIS_BUILDS_TOTAL, BASIS_ELEMENTS, BURST_TRANSITIONS_TOTAL,
    EPISODES_TOTAL, EPISODE_REVERTS_TOTAL, EPISODE_SECONDS, FRAMES_TOTAL, GAVE_UP_TOTAL,
    LAST_EPISODE_SCORE, MEASUREMENTS_TOTAL, PHASES, PHASE_SECONDS, SEARCH_STEPS_TOTAL, STRATEGIES,
    TIMER_FIRED_TOTAL,
};
pub use slo::{SloInputs, SloSet};

/// What a metric family measures: its Prometheus `# TYPE`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically increasing `u64`.
    Counter,
    /// A settable `f64` level.
    Gauge,
    /// A [`Histogram`] of `f64` observations.
    Histogram,
}

impl MetricKind {
    /// Stable lowercase label used on `# TYPE` lines.
    pub fn label(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }

    /// Inverse of [`label`](Self::label).
    pub fn from_label(s: &str) -> Option<MetricKind> {
        Some(match s {
            "counter" => MetricKind::Counter,
            "gauge" => MetricKind::Gauge,
            "histogram" => MetricKind::Histogram,
            _ => return None,
        })
    }
}

/// One recorded value.
#[derive(Debug, Clone, PartialEq)]
enum MetricValue {
    Counter(u64),
    Gauge(f64),
    Histogram(Histogram),
}

#[derive(Debug, Clone, PartialEq)]
struct Family {
    name: String,
    help: String,
    kind: MetricKind,
}

#[derive(Debug, Clone, PartialEq)]
struct Series {
    family: usize,
    labels: Vec<(String, String)>,
    value: MetricValue,
}

/// Stable handle to one registered series. Obtained once at registration;
/// updates through it are index lookups, no name hashing, no allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeriesId(usize);

/// The deterministic metrics registry.
///
/// Families (name + help + kind) and series (family + label set + value)
/// are registered up front and updated through [`SeriesId`] handles.
/// [`render`](Self::render) produces the Prometheus text exposition as a
/// pure function of the recorded values.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsHub {
    families: Vec<Family>,
    series: Vec<Series>,
}

impl MetricsHub {
    /// An empty registry.
    pub fn new() -> MetricsHub {
        MetricsHub::default()
    }

    /// Number of registered series.
    pub fn len(&self) -> usize {
        self.series.len()
    }

    /// True when nothing has been registered.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    fn register(
        &mut self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        kind: MetricKind,
        value: MetricValue,
    ) -> SeriesId {
        let family = match self.families.iter().position(|f| f.name == name) {
            Some(i) => {
                assert!(
                    self.families[i].kind == kind,
                    "metric family `{name}` re-registered with a different kind"
                );
                i
            }
            None => {
                self.families.push(Family {
                    name: name.to_string(),
                    help: help.to_string(),
                    kind,
                });
                self.families.len() - 1
            }
        };
        let owned: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        if let Some(i) = self
            .series
            .iter()
            .position(|s| s.family == family && s.labels == owned)
        {
            return SeriesId(i);
        }
        self.series.push(Series {
            family,
            labels: owned,
            value,
        });
        SeriesId(self.series.len() - 1)
    }

    /// Registers (or finds) a counter series starting at 0.
    pub fn counter(&mut self, name: &str, help: &str, labels: &[(&str, &str)]) -> SeriesId {
        self.register(
            name,
            help,
            labels,
            MetricKind::Counter,
            MetricValue::Counter(0),
        )
    }

    /// Registers (or finds) a gauge series starting at 0.
    pub fn gauge(&mut self, name: &str, help: &str, labels: &[(&str, &str)]) -> SeriesId {
        self.register(
            name,
            help,
            labels,
            MetricKind::Gauge,
            MetricValue::Gauge(0.0),
        )
    }

    /// Registers (or finds) a histogram series with the given empty
    /// prototype (normally [`Histogram::latency_grid`]).
    pub fn histogram(
        &mut self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        proto: Histogram,
    ) -> SeriesId {
        self.register(
            name,
            help,
            labels,
            MetricKind::Histogram,
            MetricValue::Histogram(proto),
        )
    }

    /// Increments a counter by 1.
    pub fn inc(&mut self, id: SeriesId) {
        self.add(id, 1);
    }

    /// Increments a counter by `n`.
    pub fn add(&mut self, id: SeriesId, n: u64) {
        match &mut self.series[id.0].value {
            MetricValue::Counter(c) => *c += n,
            // press-lint: allow(panic-freedom) — a SeriesId is only minted by the typed register_* constructors, so a kind mismatch is a caller bug, not runtime input
            _ => panic!("add() on a non-counter series"),
        }
    }

    /// Sets a gauge.
    pub fn set(&mut self, id: SeriesId, v: f64) {
        match &mut self.series[id.0].value {
            MetricValue::Gauge(g) => *g = v,
            // press-lint: allow(panic-freedom) — same invariant as add(): handles are typed at registration
            _ => panic!("set() on a non-gauge series"),
        }
    }

    /// Records one histogram observation.
    pub fn observe(&mut self, id: SeriesId, v: f64) {
        match &mut self.series[id.0].value {
            MetricValue::Histogram(h) => h.observe(v),
            // press-lint: allow(panic-freedom) — same invariant as add(): handles are typed at registration
            _ => panic!("observe() on a non-histogram series"),
        }
    }

    /// Current value of a counter series.
    pub fn counter_value(&self, id: SeriesId) -> u64 {
        match &self.series[id.0].value {
            MetricValue::Counter(c) => *c,
            _ => 0,
        }
    }

    /// Current value of a gauge series.
    pub fn gauge_value(&self, id: SeriesId) -> f64 {
        match &self.series[id.0].value {
            MetricValue::Gauge(g) => *g,
            _ => 0.0,
        }
    }

    /// The histogram behind a series, if it is one.
    pub fn histogram_value(&self, id: SeriesId) -> Option<&Histogram> {
        match &self.series[id.0].value {
            MetricValue::Histogram(h) => Some(h),
            _ => None,
        }
    }

    /// Looks a series up by family name and exact label set.
    pub fn find(&self, name: &str, labels: &[(&str, &str)]) -> Option<SeriesId> {
        let family = self.families.iter().position(|f| f.name == name)?;
        self.series
            .iter()
            .position(|s| {
                s.family == family
                    && s.labels.len() == labels.len()
                    && s.labels
                        .iter()
                        .zip(labels)
                        .all(|((k, v), (lk, lv))| k == lk && v == lv)
            })
            .map(SeriesId)
    }

    /// Counter value by name/labels (`None` when not registered).
    pub fn counter_named(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        self.find(name, labels).map(|id| self.counter_value(id))
    }

    /// Gauge value by name/labels (`None` when not registered).
    pub fn gauge_named(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        self.find(name, labels).map(|id| self.gauge_value(id))
    }

    /// Histogram by name/labels (`None` when not registered).
    pub fn histogram_named(&self, name: &str, labels: &[(&str, &str)]) -> Option<&Histogram> {
        self.find(name, labels)
            .and_then(|id| self.histogram_value(id))
    }

    /// Renders the Prometheus text exposition: families in name order,
    /// series in label order, one `# HELP`/`# TYPE` pair per family.
    /// A pure function of the recorded values — registration order never
    /// shows through.
    pub fn render(&self) -> String {
        // Family names are unique (register() reuses by name), so the map
        // is name → (family index, series indices).
        let mut by_name: BTreeMap<&str, (usize, Vec<usize>)> = BTreeMap::new();
        for (i, f) in self.families.iter().enumerate() {
            by_name.insert(&f.name, (i, Vec::new()));
        }
        for (si, s) in self.series.iter().enumerate() {
            if let Some((_, list)) = by_name.get_mut(self.families[s.family].name.as_str()) {
                list.push(si);
            }
        }
        let mut out = String::new();
        for (name, (fi, mut sids)) in by_name {
            let fam = &self.families[fi];
            sids.sort_by(|a, b| self.series[*a].labels.cmp(&self.series[*b].labels));
            let _ = writeln!(out, "# HELP {name} {}", escape_help(&fam.help));
            let _ = writeln!(out, "# TYPE {name} {}", fam.kind.label());
            for si in sids {
                let s = &self.series[si];
                match &s.value {
                    MetricValue::Counter(c) => {
                        let _ = writeln!(out, "{name}{} {c}", render_labels(&s.labels, None));
                    }
                    MetricValue::Gauge(g) => {
                        let _ = writeln!(out, "{name}{} {g}", render_labels(&s.labels, None));
                    }
                    MetricValue::Histogram(h) => {
                        let mut cumulative = 0u64;
                        for (bound, count) in h.buckets() {
                            cumulative += count;
                            let le = if bound.is_infinite() {
                                "+Inf".to_string()
                            } else {
                                format!("{bound}")
                            };
                            let _ = writeln!(
                                out,
                                "{name}_bucket{} {cumulative}",
                                render_labels(&s.labels, Some(&le))
                            );
                        }
                        let _ = writeln!(
                            out,
                            "{name}_sum{} {}",
                            render_labels(&s.labels, None),
                            h.sum()
                        );
                        let _ = writeln!(
                            out,
                            "{name}_count{} {}",
                            render_labels(&s.labels, None),
                            h.count()
                        );
                    }
                }
            }
        }
        out
    }
}

/// `{k="v",…}` with an optional trailing `le` label; empty string when
/// there are no labels at all.
fn render_labels(labels: &[(String, String)], le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut s = String::from("{");
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "{k}=\"{}\"", escape_label(v));
    }
    if let Some(le) = le {
        if !labels.is_empty() {
            s.push(',');
        }
        let _ = write!(s, "le=\"{le}\"");
    }
    s.push('}');
    s
}

/// Prometheus label-value escaping: backslash, double quote, newline.
fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Prometheus help-text escaping: backslash and newline.
fn escape_help(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Exposition fixpoint: parse + re-render
// ---------------------------------------------------------------------------

/// A parsed sample value, keeping the integer/float distinction so
/// re-rendering reproduces the original bytes.
#[derive(Debug, Clone, PartialEq)]
pub enum SampleValue {
    /// Rendered as a bare `u64` (counters, bucket/count samples).
    Int(u64),
    /// Rendered with `f64` shortest round-trip `Display`.
    Float(f64),
}

/// One parsed exposition line.
#[derive(Debug, Clone, PartialEq)]
pub enum ExpoLine {
    /// `# HELP name text`
    Help {
        /// Family name.
        name: String,
        /// Help text (still escaped form).
        help: String,
    },
    /// `# TYPE name kind`
    Type {
        /// Family name.
        name: String,
        /// Family kind.
        kind: MetricKind,
    },
    /// `name{labels} value`
    Sample {
        /// Series name (family name plus any `_bucket`/`_sum`/`_count`
        /// suffix).
        name: String,
        /// Label pairs, in source order, values still escaped.
        labels: Vec<(String, String)>,
        /// The sample value.
        value: SampleValue,
    },
}

/// Parses a text exposition produced by [`MetricsHub::render`]. Returns
/// `None` on any line that does not fit the grammar — the fixpoint tests
/// treat that as a rendering bug.
pub fn parse_exposition(text: &str) -> Option<Vec<ExpoLine>> {
    let mut out = Vec::new();
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let (name, help) = rest.split_once(' ')?;
            out.push(ExpoLine::Help {
                name: name.to_string(),
                help: help.to_string(),
            });
        } else if let Some(rest) = line.strip_prefix("# TYPE ") {
            let (name, kind) = rest.split_once(' ')?;
            out.push(ExpoLine::Type {
                name: name.to_string(),
                kind: MetricKind::from_label(kind)?,
            });
        } else {
            out.push(parse_sample(line)?);
        }
    }
    Some(out)
}

fn parse_sample(line: &str) -> Option<ExpoLine> {
    let (head, value) = line.rsplit_once(' ')?;
    let (name, labels) = match head.split_once('{') {
        None => (head.to_string(), Vec::new()),
        Some((name, rest)) => {
            let inner = rest.strip_suffix('}')?;
            let mut labels = Vec::new();
            let mut rest = inner;
            while !rest.is_empty() {
                let (k, after) = rest.split_once("=\"")?;
                // Label values are escaped, so a bare `"` terminates.
                let mut end = None;
                let mut prev_backslash = false;
                for (i, c) in after.char_indices() {
                    if c == '"' && !prev_backslash {
                        end = Some(i);
                        break;
                    }
                    prev_backslash = c == '\\' && !prev_backslash;
                }
                let end = end?;
                labels.push((k.to_string(), after[..end].to_string()));
                let tail = &after[end + 1..];
                rest = match tail.strip_prefix(',') {
                    Some(t) => t,
                    None if tail.is_empty() => tail,
                    None => return None, // missing comma between labels
                };
            }
            (name.to_string(), labels)
        }
    };
    let value = if value.bytes().all(|b| b.is_ascii_digit()) {
        SampleValue::Int(value.parse().ok()?)
    } else {
        SampleValue::Float(value.parse().ok()?)
    };
    Some(ExpoLine::Sample {
        name,
        labels,
        value,
    })
}

/// Renders parsed exposition lines back to text. For any output of
/// [`MetricsHub::render`], `render_exposition(&parse_exposition(text)?)`
/// reproduces `text` byte-for-byte — the format's fixpoint property.
pub fn render_exposition(lines: &[ExpoLine]) -> String {
    let mut out = String::new();
    for line in lines {
        match line {
            ExpoLine::Help { name, help } => {
                let _ = writeln!(out, "# HELP {name} {help}");
            }
            ExpoLine::Type { name, kind } => {
                let _ = writeln!(out, "# TYPE {name} {}", kind.label());
            }
            ExpoLine::Sample {
                name,
                labels,
                value,
            } => {
                let rendered = if labels.is_empty() {
                    String::new()
                } else {
                    let mut s = String::from("{");
                    for (i, (k, v)) in labels.iter().enumerate() {
                        if i > 0 {
                            s.push(',');
                        }
                        let _ = write!(s, "{k}=\"{v}\"");
                    }
                    s.push('}');
                    s
                };
                match value {
                    SampleValue::Int(v) => {
                        let _ = writeln!(out, "{name}{rendered} {v}");
                    }
                    SampleValue::Float(v) => {
                        let _ = writeln!(out, "{name}{rendered} {v}");
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn populated_hub() -> MetricsHub {
        let mut hub = MetricsHub::new();
        let c = hub.counter("z_frames_total", "Frames on the wire.", &[("event", "tx")]);
        let c2 = hub.counter(
            "z_frames_total",
            "Frames on the wire.",
            &[("event", "lost")],
        );
        let g = hub.gauge("a_level", "Some level.", &[]);
        let h = hub.histogram(
            "m_latency_seconds",
            "Latency distribution.",
            &[],
            Histogram::exponential(1e-3, 10.0, 3),
        );
        hub.add(c, 41);
        hub.inc(c);
        hub.inc(c2);
        hub.set(g, 0.125);
        for v in [5e-4, 5e-3, 0.05, 5.0] {
            hub.observe(h, v);
        }
        hub
    }

    #[test]
    fn families_render_in_name_order_with_sorted_series() {
        let text = populated_hub().render();
        let a = text.find("a_level").unwrap();
        let m = text.find("m_latency_seconds").unwrap();
        let z = text.find("z_frames_total").unwrap();
        assert!(a < m && m < z, "{text}");
        // Series within a family sort by label value, not insertion order.
        let lost = text.find("event=\"lost\"").unwrap();
        let tx = text.find("event=\"tx\"").unwrap();
        assert!(lost < tx, "{text}");
    }

    #[test]
    fn exposition_is_independent_of_registration_order() {
        let mut other = MetricsHub::new();
        let h = other.histogram(
            "m_latency_seconds",
            "Latency distribution.",
            &[],
            Histogram::exponential(1e-3, 10.0, 3),
        );
        let g = other.gauge("a_level", "Some level.", &[]);
        let c2 = other.counter(
            "z_frames_total",
            "Frames on the wire.",
            &[("event", "lost")],
        );
        let c = other.counter("z_frames_total", "Frames on the wire.", &[("event", "tx")]);
        for v in [5e-4, 5e-3, 0.05, 5.0] {
            other.observe(h, v);
        }
        other.set(g, 0.125);
        other.add(c, 42);
        other.inc(c2);
        assert_eq!(populated_hub().render(), other.render());
    }

    #[test]
    fn histogram_samples_are_cumulative_with_inf_bucket() {
        let text = populated_hub().render();
        let lines: Vec<String> = text
            .lines()
            .filter(|l| l.starts_with("m_latency_seconds"))
            .map(|l| l.to_string())
            .collect();
        let sum = 5e-4 + 5e-3 + 0.05 + 5.0;
        assert_eq!(
            lines,
            vec![
                "m_latency_seconds_bucket{le=\"0.001\"} 1".to_string(),
                "m_latency_seconds_bucket{le=\"0.01\"} 2".to_string(),
                "m_latency_seconds_bucket{le=\"0.1\"} 3".to_string(),
                "m_latency_seconds_bucket{le=\"+Inf\"} 4".to_string(),
                format!("m_latency_seconds_sum {sum}"),
                "m_latency_seconds_count 4".to_string(),
            ]
        );
    }

    #[test]
    fn exposition_fixpoint_parse_then_render_is_identity() {
        let text = populated_hub().render();
        let parsed = parse_exposition(&text).expect("exposition must parse");
        assert_eq!(render_exposition(&parsed), text);
    }

    #[test]
    fn registration_is_idempotent_and_lookups_agree() {
        let mut hub = MetricsHub::new();
        let a = hub.counter("x_total", "X.", &[("k", "v")]);
        let b = hub.counter("x_total", "X.", &[("k", "v")]);
        assert_eq!(a, b);
        hub.inc(a);
        hub.inc(b);
        assert_eq!(hub.counter_value(a), 2);
        assert_eq!(hub.counter_named("x_total", &[("k", "v")]), Some(2));
        assert_eq!(hub.counter_named("x_total", &[]), None);
        assert_eq!(hub.counter_named("y_total", &[]), None);
        assert_eq!(hub.len(), 1);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn family_kind_conflicts_are_rejected() {
        let mut hub = MetricsHub::new();
        hub.counter("x_total", "X.", &[]);
        hub.gauge("x_total", "X.", &[]);
    }

    #[test]
    fn label_escaping_round_trips() {
        let mut hub = MetricsHub::new();
        let c = hub.counter("esc_total", "Escapes.", &[("who", "a\"b\\c\nd")]);
        hub.inc(c);
        let text = hub.render();
        assert!(text.contains("who=\"a\\\"b\\\\c\\nd\""), "{text}");
        let parsed = parse_exposition(&text).expect("escaped labels must parse");
        assert_eq!(render_exposition(&parsed), text);
    }

    #[test]
    fn empty_hub_renders_empty_exposition() {
        assert_eq!(MetricsHub::new().render(), "");
        assert_eq!(parse_exposition(""), Some(vec![]));
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert_eq!(parse_exposition("no_value_here"), None);
        assert_eq!(parse_exposition("x{unterminated 1"), None);
        assert_eq!(parse_exposition("# TYPE x sparkline"), None);
        assert_eq!(parse_exposition("x nan_is_not_a_number_spelling"), None);
    }
}
