//! The trace→metrics aggregator: folds [`press_trace::Event`]s into a
//! [`MetricsHub`].
//!
//! This is what makes the metrics layer *trustworthy*: the live daemon
//! observes structured events as the engine emits them, and a rebuild
//! parses the recorded JSONL back into the very same observe calls — the
//! two hubs must render byte-identical exposition. To guarantee that even
//! for series that never fired, every family (including every strategy
//! and phase label) is registered up front in the constructor, so an
//! empty live hub and an empty rebuilt hub agree on the full series set.

use press_control::Histogram;
use press_trace::{Event, EventKind, Phase};

use crate::{MetricsHub, SeriesId};

/// Family name: episodes completed (`EpisodeEnd` events).
pub const EPISODES_TOTAL: &str = "press_episodes_total";
/// Family name: episodes that reverted to baseline after verification.
pub const EPISODE_REVERTS_TOTAL: &str = "press_episode_reverts_total";
/// Family name: episode duration histogram (sim seconds, start→end).
pub const EPISODE_SECONDS: &str = "press_episode_seconds";
/// Family name: link bases built or fetched.
pub const BASIS_BUILDS_TOTAL: &str = "press_basis_builds_total";
/// Family name: elements in the most recently built basis (gauge).
pub const BASIS_ELEMENTS: &str = "press_basis_elements";
/// Family name: channel measurements consumed.
pub const MEASUREMENTS_TOTAL: &str = "press_measurements_total";
/// Family name: search iterations, labelled by `strategy`.
pub const SEARCH_STEPS_TOTAL: &str = "press_search_steps_total";
/// Family name: control-plane frames, labelled by `event` (tx/lost/ack).
pub const FRAMES_TOTAL: &str = "press_frames_total";
/// Family name: element state applications.
pub const APPLIED_TOTAL: &str = "press_applied_total";
/// Family name: retransmission timers fired (DES actuation).
pub const TIMER_FIRED_TOTAL: &str = "press_timer_fired_total";
/// Family name: adaptive-pacing backoffs.
pub const BACKOFFS_TOTAL: &str = "press_backoffs_total";
/// Family name: Gilbert–Elliott burst-state transitions.
pub const BURST_TRANSITIONS_TOTAL: &str = "press_burst_transitions_total";
/// Family name: elements whose retries were exhausted.
pub const GAVE_UP_TOTAL: &str = "press_gave_up_total";
/// Family name: actuation round-trips completed.
pub const ACTUATIONS_TOTAL: &str = "press_actuations_total";
/// Family name: elements that failed to apply during actuation.
pub const ACTUATION_FAILED_TOTAL: &str = "press_actuation_failed_elements_total";
/// Family name: actuation wire-completion histogram (sim seconds).
pub const ACTUATION_SECONDS: &str = "press_actuation_seconds";
/// Family name: per-phase duration histogram, labelled by `phase`.
pub const PHASE_SECONDS: &str = "press_phase_seconds";
/// Family name: final score of the most recent episode (gauge).
pub const LAST_EPISODE_SCORE: &str = "press_last_episode_score";

/// Every strategy label [`press_trace`] can intern, in its own order.
/// Registering all of them up front keeps the exposition's series set
/// independent of which strategies a particular session happened to run.
pub const STRATEGIES: [&str; 6] = [
    "exhaustive",
    "greedy",
    "random",
    "annealing",
    "joint-annealing",
    "unknown",
];

/// Episode phases in execution order — the `phase` label set.
pub const PHASES: [Phase; 5] = [
    Phase::Measure,
    Phase::Search,
    Phase::Actuate,
    Phase::Verify,
    Phase::Revert,
];

fn phase_index(phase: Phase) -> usize {
    match phase {
        Phase::Measure => 0,
        Phase::Search => 1,
        Phase::Actuate => 2,
        Phase::Verify => 3,
        Phase::Revert => 4,
    }
}

fn strategy_index(strategy: &str) -> usize {
    STRATEGIES
        .iter()
        .position(|s| *s == strategy)
        .unwrap_or(STRATEGIES.len() - 1)
}

/// Folds trace events into a [`MetricsHub`].
///
/// Construction registers the complete family/series set (see module
/// docs); [`observe`](Self::observe) then updates through pre-resolved
/// [`SeriesId`] handles — no lookups, no allocation per event.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceAggregator {
    episodes: SeriesId,
    reverts: SeriesId,
    episode_seconds: SeriesId,
    basis_builds: SeriesId,
    basis_elements: SeriesId,
    measurements: SeriesId,
    search_steps: [SeriesId; STRATEGIES.len()],
    frames_tx: SeriesId,
    frames_lost: SeriesId,
    frames_ack: SeriesId,
    applied: SeriesId,
    timer_fired: SeriesId,
    backoffs: SeriesId,
    burst_transitions: SeriesId,
    gave_up: SeriesId,
    actuations: SeriesId,
    actuation_failed: SeriesId,
    actuation_seconds: SeriesId,
    phase_seconds: [SeriesId; PHASES.len()],
    last_score: SeriesId,
    /// `t_s` of the open episode, if one is running.
    episode_open: Option<f64>,
    /// `t_s` of each open phase (indexed by [`phase_index`]).
    phase_open: [Option<f64>; PHASES.len()],
    /// Elements in the most recent basis build (mirrors the gauge, kept
    /// here so integer consumers don't round-trip through `f64`).
    last_basis_elements: u64,
}

impl TraceAggregator {
    /// Registers the full family set on `hub` and returns the handle
    /// bundle. Safe to call on a hub that already carries the families —
    /// registration is idempotent.
    pub fn new(hub: &mut MetricsHub) -> TraceAggregator {
        let episodes = hub.counter(EPISODES_TOTAL, "Controller episodes completed.", &[]);
        let reverts = hub.counter(
            EPISODE_REVERTS_TOTAL,
            "Episodes that reverted to baseline after verification.",
            &[],
        );
        let episode_seconds = hub.histogram(
            EPISODE_SECONDS,
            "Episode duration in sim seconds.",
            &[],
            Histogram::latency_grid(),
        );
        let basis_builds = hub.counter(BASIS_BUILDS_TOTAL, "Link bases built or fetched.", &[]);
        let basis_elements = hub.gauge(
            BASIS_ELEMENTS,
            "Elements in the most recently built link basis.",
            &[],
        );
        let measurements = hub.counter(MEASUREMENTS_TOTAL, "Channel measurements consumed.", &[]);
        let search_steps = STRATEGIES.map(|s| {
            hub.counter(
                SEARCH_STEPS_TOTAL,
                "Search iterations by strategy.",
                &[("strategy", s)],
            )
        });
        let frames_help = "Control-plane frames by event (tx, lost, ack).";
        let frames_tx = hub.counter(FRAMES_TOTAL, frames_help, &[("event", "tx")]);
        let frames_lost = hub.counter(FRAMES_TOTAL, frames_help, &[("event", "lost")]);
        let frames_ack = hub.counter(FRAMES_TOTAL, frames_help, &[("event", "ack")]);
        let applied = hub.counter(APPLIED_TOTAL, "Element state applications.", &[]);
        let timer_fired = hub.counter(TIMER_FIRED_TOTAL, "Retransmission timers fired.", &[]);
        let backoffs = hub.counter(BACKOFFS_TOTAL, "Adaptive-pacing backoffs.", &[]);
        let burst_transitions = hub.counter(
            BURST_TRANSITIONS_TOTAL,
            "Gilbert-Elliott burst-state transitions.",
            &[],
        );
        let gave_up = hub.counter(GAVE_UP_TOTAL, "Elements whose retries were exhausted.", &[]);
        let actuations = hub.counter(ACTUATIONS_TOTAL, "Actuation round-trips completed.", &[]);
        let actuation_failed = hub.counter(
            ACTUATION_FAILED_TOTAL,
            "Elements that failed to apply during actuation.",
            &[],
        );
        let actuation_seconds = hub.histogram(
            ACTUATION_SECONDS,
            "Actuation wire-completion time in sim seconds.",
            &[],
            Histogram::latency_grid(),
        );
        let phase_seconds = PHASES.map(|p| {
            hub.histogram(
                PHASE_SECONDS,
                "Per-phase duration in sim seconds.",
                &[("phase", p.name())],
                Histogram::latency_grid(),
            )
        });
        let last_score = hub.gauge(
            LAST_EPISODE_SCORE,
            "Final score of the most recent episode.",
            &[],
        );
        TraceAggregator {
            episodes,
            reverts,
            episode_seconds,
            basis_builds,
            basis_elements,
            measurements,
            search_steps,
            frames_tx,
            frames_lost,
            frames_ack,
            applied,
            timer_fired,
            backoffs,
            burst_transitions,
            gave_up,
            actuations,
            actuation_failed,
            actuation_seconds,
            phase_seconds,
            last_score,
            episode_open: None,
            phase_open: [None; PHASES.len()],
            last_basis_elements: 0,
        }
    }

    /// Folds one event into `hub`. Must be fed events in stream order —
    /// phase/episode durations pair each `*Start` with the next matching
    /// `*End`.
    pub fn observe(&mut self, hub: &mut MetricsHub, ev: &Event) {
        match ev.kind {
            EventKind::EpisodeStart { .. } => self.episode_open = Some(ev.t_s),
            EventKind::BasisBuild { elements, .. } => {
                hub.inc(self.basis_builds);
                hub.set(self.basis_elements, elements as f64);
                self.last_basis_elements = elements as u64;
            }
            EventKind::PhaseStart { phase } => {
                self.phase_open[phase_index(phase)] = Some(ev.t_s);
            }
            EventKind::PhaseEnd { phase, .. } => {
                if let Some(t0) = self.phase_open[phase_index(phase)].take() {
                    hub.observe(self.phase_seconds[phase_index(phase)], ev.t_s - t0);
                }
            }
            EventKind::Measurement { .. } => hub.inc(self.measurements),
            EventKind::SearchStep { strategy, .. } => {
                hub.inc(self.search_steps[strategy_index(strategy)]);
            }
            EventKind::FrameTx { .. } => hub.inc(self.frames_tx),
            EventKind::FrameLost { .. } => hub.inc(self.frames_lost),
            EventKind::AckRx { .. } => hub.inc(self.frames_ack),
            EventKind::Applied { .. } => hub.inc(self.applied),
            EventKind::TimerFired { .. } => hub.inc(self.timer_fired),
            EventKind::Backoff { .. } => hub.inc(self.backoffs),
            EventKind::BurstTransition { .. } => hub.inc(self.burst_transitions),
            EventKind::GaveUp { .. } => hub.inc(self.gave_up),
            EventKind::ActuationDone {
                failed,
                completion_s,
                ..
            } => {
                hub.inc(self.actuations);
                hub.add(self.actuation_failed, failed as u64);
                hub.observe(self.actuation_seconds, completion_s);
            }
            // Reverts are counted from `EpisodeEnd`'s flag; counting the
            // `Reverted` event too would double-book every revert.
            EventKind::Reverted { .. } => {}
            EventKind::EpisodeEnd {
                score, reverted, ..
            } => {
                hub.inc(self.episodes);
                if reverted {
                    hub.inc(self.reverts);
                }
                hub.set(self.last_score, score);
                if let Some(t0) = self.episode_open.take() {
                    hub.observe(self.episode_seconds, ev.t_s - t0);
                }
            }
        }
    }

    /// Episodes completed so far.
    pub fn episodes(&self, hub: &MetricsHub) -> u64 {
        hub.counter_value(self.episodes)
    }

    /// Episodes that reverted so far.
    pub fn reverts(&self, hub: &MetricsHub) -> u64 {
        hub.counter_value(self.reverts)
    }

    /// Frames transmitted so far.
    pub fn frames_tx(&self, hub: &MetricsHub) -> u64 {
        hub.counter_value(self.frames_tx)
    }

    /// Frames (or acks) lost so far.
    pub fn frames_lost(&self, hub: &MetricsHub) -> u64 {
        hub.counter_value(self.frames_lost)
    }

    /// Acks received so far.
    pub fn acks_rx(&self, hub: &MetricsHub) -> u64 {
        hub.counter_value(self.frames_ack)
    }

    /// Pacing backoffs so far.
    pub fn backoffs(&self, hub: &MetricsHub) -> u64 {
        hub.counter_value(self.backoffs)
    }

    /// Burst transitions so far.
    pub fn burst_transitions(&self, hub: &MetricsHub) -> u64 {
        hub.counter_value(self.burst_transitions)
    }

    /// Retry exhaustions so far.
    pub fn gave_up(&self, hub: &MetricsHub) -> u64 {
        hub.counter_value(self.gave_up)
    }

    /// Elements in the most recent basis build (0 before any build).
    pub fn last_basis_elements(&self) -> u64 {
        self.last_basis_elements
    }

    /// The duration histogram of one phase.
    pub fn phase_seconds<'h>(&self, hub: &'h MetricsHub, phase: Phase) -> &'h Histogram {
        hub.histogram_value(self.phase_seconds[phase_index(phase)])
            .unwrap_or_else(|| {
                // press-lint: allow(panic-freedom) — the constructor registered this series as a histogram
                unreachable!("phase series registered as histogram")
            })
    }
}

/// Aggregates a whole JSONL trace into a fresh hub. Lines that do not
/// parse as trace events are skipped — a recorded session log interleaves
/// events with episode summaries and protocol replies.
pub fn hub_from_jsonl(text: &str) -> MetricsHub {
    let mut hub = MetricsHub::new();
    let mut agg = TraceAggregator::new(&mut hub);
    for line in text.lines() {
        if let Some(ev) = Event::from_jsonl(line) {
            agg.observe(&mut hub, &ev);
        }
    }
    hub
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(seq: u64, t_s: f64, kind: EventKind) -> Event {
        Event {
            seq,
            t_s,
            wall_s: None,
            kind,
        }
    }

    fn sample_stream() -> Vec<Event> {
        vec![
            event(
                0,
                0.0,
                EventKind::EpisodeStart {
                    seed: 1,
                    links: 1,
                    strategy: "greedy",
                },
            ),
            event(
                1,
                0.0,
                EventKind::BasisBuild {
                    link: 0,
                    elements: 4,
                    subcarriers: 64,
                    revision: 1,
                },
            ),
            event(
                2,
                0.0,
                EventKind::PhaseStart {
                    phase: Phase::Search,
                },
            ),
            event(
                3,
                0.001,
                EventKind::SearchStep {
                    strategy: "greedy",
                    iteration: 0,
                    score: 1.0,
                    best: 1.0,
                    accepted: true,
                },
            ),
            event(
                4,
                0.002,
                EventKind::PhaseEnd {
                    phase: Phase::Search,
                    measurements: 2,
                },
            ),
            event(
                5,
                0.002,
                EventKind::Measurement {
                    link: 0,
                    score: 1.5,
                },
            ),
            event(
                6,
                0.003,
                EventKind::FrameTx {
                    element: 0,
                    attempt: 0,
                },
            ),
            event(7, 0.003, EventKind::FrameLost { element: 0 }),
            event(8, 0.004, EventKind::AckRx { element: 0 }),
            event(
                9,
                0.004,
                EventKind::Applied {
                    element: 0,
                    state: 1,
                },
            ),
            event(
                10,
                0.005,
                EventKind::ActuationDone {
                    frames: 3,
                    retries: 1,
                    completion_s: 0.002,
                    failed: 1,
                },
            ),
            event(
                11,
                0.006,
                EventKind::EpisodeEnd {
                    score: 2.5,
                    measurements: 3,
                    reverted: true,
                },
            ),
        ]
    }

    #[test]
    fn counters_and_durations_accumulate() {
        let mut hub = MetricsHub::new();
        let mut agg = TraceAggregator::new(&mut hub);
        for ev in sample_stream() {
            agg.observe(&mut hub, &ev);
        }
        assert_eq!(agg.episodes(&hub), 1);
        assert_eq!(agg.reverts(&hub), 1);
        assert_eq!(agg.frames_tx(&hub), 1);
        assert_eq!(agg.frames_lost(&hub), 1);
        assert_eq!(agg.acks_rx(&hub), 1);
        assert_eq!(agg.last_basis_elements(), 4);
        assert_eq!(hub.counter_named(APPLIED_TOTAL, &[]), Some(1));
        assert_eq!(hub.counter_named(ACTUATION_FAILED_TOTAL, &[]), Some(1));
        assert_eq!(
            hub.counter_named(SEARCH_STEPS_TOTAL, &[("strategy", "greedy")]),
            Some(1)
        );
        assert_eq!(
            hub.counter_named(SEARCH_STEPS_TOTAL, &[("strategy", "random")]),
            Some(0)
        );
        assert_eq!(hub.gauge_named(BASIS_ELEMENTS, &[]), Some(4.0));
        assert_eq!(hub.gauge_named(LAST_EPISODE_SCORE, &[]), Some(2.5));
        let search = agg.phase_seconds(&hub, Phase::Search);
        assert_eq!(search.count(), 1);
        assert!((search.sum() - 0.002).abs() < 1e-12);
        let episode = hub.histogram_named(EPISODE_SECONDS, &[]).unwrap();
        assert_eq!(episode.count(), 1);
        assert!((episode.sum() - 0.006).abs() < 1e-12);
    }

    #[test]
    fn rebuilt_hub_renders_byte_identical_exposition() {
        let mut live = MetricsHub::new();
        let mut agg = TraceAggregator::new(&mut live);
        let mut jsonl = String::new();
        for ev in sample_stream() {
            agg.observe(&mut live, &ev);
            jsonl.push_str(&ev.to_jsonl());
            jsonl.push('\n');
        }
        // Interleave a non-event line, as a recorded session log would.
        jsonl.push_str("{\"ok\":\"controller\"}\n");
        assert_eq!(hub_from_jsonl(&jsonl).render(), live.render());
    }

    #[test]
    fn empty_hubs_agree_on_the_full_series_set() {
        let mut a = MetricsHub::new();
        TraceAggregator::new(&mut a);
        let b = hub_from_jsonl("");
        assert_eq!(a.render(), b.render());
        // Every strategy and phase label is present even with no traffic.
        for s in STRATEGIES {
            assert_eq!(
                a.counter_named(SEARCH_STEPS_TOTAL, &[("strategy", s)]),
                Some(0)
            );
        }
        for p in PHASES {
            assert!(a
                .histogram_named(PHASE_SECONDS, &[("phase", p.name())])
                .is_some());
        }
    }

    #[test]
    fn unknown_strategies_fold_into_the_unknown_label() {
        let mut hub = MetricsHub::new();
        let mut agg = TraceAggregator::new(&mut hub);
        agg.observe(
            &mut hub,
            &event(
                0,
                0.0,
                EventKind::SearchStep {
                    strategy: "unknown",
                    iteration: 0,
                    score: 0.0,
                    best: 0.0,
                    accepted: false,
                },
            ),
        );
        assert_eq!(
            hub.counter_named(SEARCH_STEPS_TOTAL, &[("strategy", "unknown")]),
            Some(1)
        );
    }
}
