//! Property-based tests for the numerics substrate.

use press_math::complex::Complex64;
use press_math::fft::{fft_copy, ifft_copy};
use press_math::mat::CMat;
use press_math::stats::{percentile, Ecdf};
use press_math::svd::{condition_number, singular_values, singular_values_2x2};
use proptest::prelude::*;

fn finite_f64() -> impl Strategy<Value = f64> {
    -1e3..1e3f64
}

fn complex() -> impl Strategy<Value = Complex64> {
    (finite_f64(), finite_f64()).prop_map(|(re, im)| Complex64::new(re, im))
}

fn cmat(rows: usize, cols: usize) -> impl Strategy<Value = CMat> {
    proptest::collection::vec(complex(), rows * cols)
        .prop_map(move |v| CMat::from_vec(rows, cols, v))
}

proptest! {
    #[test]
    fn complex_mul_commutes(a in complex(), b in complex()) {
        prop_assert!((a * b - b * a).abs() < 1e-6 * (1.0 + (a * b).abs()));
    }

    #[test]
    fn complex_mul_magnitude(a in complex(), b in complex()) {
        let prod = (a * b).abs();
        prop_assert!((prod - a.abs() * b.abs()).abs() < 1e-6 * (1.0 + prod));
    }

    #[test]
    fn complex_conj_involution(a in complex()) {
        prop_assert_eq!(a.conj().conj(), a);
    }

    #[test]
    fn fft_roundtrip(v in proptest::collection::vec(complex(), 64)) {
        let round = ifft_copy(&fft_copy(&v).unwrap()).unwrap();
        for (x, y) in v.iter().zip(&round) {
            prop_assert!((*x - *y).abs() < 1e-6);
        }
    }

    #[test]
    fn fft_parseval(v in proptest::collection::vec(complex(), 32)) {
        let t: f64 = v.iter().map(|x| x.norm_sqr()).sum();
        let f: f64 = fft_copy(&v).unwrap().iter().map(|x| x.norm_sqr()).sum::<f64>() / 32.0;
        prop_assert!((t - f).abs() < 1e-5 * (1.0 + t));
    }

    #[test]
    fn solve_then_multiply_recovers_rhs(m in cmat(3, 3), b in proptest::collection::vec(complex(), 3)) {
        if let Ok(x) = m.solve(&b) {
            let back = m.matvec(&x).unwrap();
            let scale = m.frobenius_norm().max(1.0);
            for (u, v) in back.iter().zip(&b) {
                prop_assert!((*u - *v).abs() < 1e-5 * scale.max((*v).abs() + 1.0));
            }
        }
    }

    #[test]
    fn singular_values_are_sorted_nonnegative(m in cmat(3, 3)) {
        let sv = singular_values(&m).unwrap();
        prop_assert!(sv.windows(2).all(|w| w[0] >= w[1] - 1e-9));
        prop_assert!(sv.iter().all(|&s| s >= -1e-9));
    }

    #[test]
    fn frobenius_equals_singular_value_energy(m in cmat(2, 2)) {
        let (s1, s2) = singular_values_2x2(&m);
        let f2 = m.frobenius_norm().powi(2);
        prop_assert!((s1 * s1 + s2 * s2 - f2).abs() < 1e-6 * (1.0 + f2));
    }

    #[test]
    fn condition_number_at_least_one(m in cmat(2, 2)) {
        let k = condition_number(&m).unwrap();
        prop_assert!(k >= 1.0 - 1e-9);
    }

    #[test]
    fn ecdf_monotone(v in proptest::collection::vec(finite_f64(), 1..50), x1 in finite_f64(), x2 in finite_f64()) {
        let e = Ecdf::new(&v).unwrap();
        let (lo, hi) = if x1 <= x2 { (x1, x2) } else { (x2, x1) };
        prop_assert!(e.cdf(lo) <= e.cdf(hi));
        prop_assert!(e.ccdf(lo) >= e.ccdf(hi));
    }

    #[test]
    fn percentile_within_range(v in proptest::collection::vec(finite_f64(), 1..50), q in 0.0..100.0f64) {
        let p = percentile(&v, q).unwrap();
        let lo = v.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = v.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(p >= lo - 1e-9 && p <= hi + 1e-9);
    }
}
