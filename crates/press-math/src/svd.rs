//! Singular values, eigenvalues, and MIMO condition numbers.
//!
//! The paper's Figure 8 evaluates PRESS through the *condition number* of the
//! 2×2 MIMO channel matrix (in dB), following Kita et al. (ref. 15 of the paper). We provide a
//! closed-form 2×2 path (hot loop of the Figure 8 harness) and a cyclic
//! complex Jacobi eigensolver for larger matrices (the large-MIMO ablations).

use crate::complex::Complex64;
use crate::mat::{CMat, MatError};

/// Eigenvalues of a Hermitian matrix via cyclic complex Jacobi rotations,
/// returned in descending order.
///
/// The input is *assumed* Hermitian; only the upper triangle's magnitudes
/// drive convergence. Small (≤ ~32×32) matrices converge in a handful of
/// sweeps.
///
/// # Errors
/// [`MatError::NotSquare`] when the matrix is not square.
pub fn hermitian_eigenvalues(h: &CMat) -> Result<Vec<f64>, MatError> {
    if !h.is_square() {
        return Err(MatError::NotSquare(h.rows(), h.cols()));
    }
    let n = h.rows();
    if n == 0 {
        return Ok(vec![]);
    }
    let mut a = h.clone();
    let max_sweeps = 64;
    for _ in 0..max_sweeps {
        let mut off = 0.0;
        for p in 0..n {
            for q in p + 1..n {
                off += a[(p, q)].norm_sqr();
            }
        }
        let scale = a.frobenius_norm().max(1e-300);
        if off.sqrt() < 1e-14 * scale {
            break;
        }
        for p in 0..n {
            for q in p + 1..n {
                let apq = a[(p, q)];
                let mag = apq.abs();
                if mag < 1e-300 {
                    continue;
                }
                let app = a[(p, p)].re;
                let aqq = a[(q, q)].re;
                let phi = apq.arg();
                // Reduce to the real symmetric 2x2 case through the phase phi.
                let theta = 0.5 * (2.0 * mag).atan2(app - aqq);
                let (c, s) = (theta.cos(), theta.sin());
                let e_jphi = Complex64::cis(phi);
                // Columns: col_p' = c*col_p + s*e^{-jphi}*col_q ; col_q' = -s*e^{jphi}*col_p + c*col_q
                for i in 0..n {
                    let aip = a[(i, p)];
                    let aiq = a[(i, q)];
                    a[(i, p)] = aip.scale(c) + aiq * e_jphi.conj().scale(s);
                    a[(i, q)] = -aip * e_jphi.scale(s) + aiq.scale(c);
                }
                // Rows (conjugate rotation).
                for j in 0..n {
                    let apj = a[(p, j)];
                    let aqj = a[(q, j)];
                    a[(p, j)] = apj.scale(c) + aqj * e_jphi.scale(s);
                    a[(q, j)] = -apj * e_jphi.conj().scale(s) + aqj.scale(c);
                }
            }
        }
    }
    let mut eigs: Vec<f64> = (0..n).map(|i| a[(i, i)].re).collect();
    eigs.sort_by(|x, y| y.total_cmp(x));
    Ok(eigs)
}

/// Singular values of an arbitrary complex matrix, descending.
///
/// Computed as the square roots of the eigenvalues of the Gram matrix
/// `A^H·A` (clamped at zero against round-off). For 2×2 inputs a closed form
/// is used instead — see [`singular_values_2x2`].
pub fn singular_values(a: &CMat) -> Result<Vec<f64>, MatError> {
    if a.rows() == 2 && a.cols() == 2 {
        let (s1, s2) = singular_values_2x2(a);
        return Ok(vec![s1, s2]);
    }
    let gram = a.gram();
    let eigs = hermitian_eigenvalues(&gram)?;
    Ok(eigs.into_iter().map(|e| e.max(0.0).sqrt()).collect())
}

/// Closed-form singular values of a 2×2 complex matrix, `(σ_max, σ_min)`.
///
/// With `F = ‖A‖_F²` and `D = |det A|`:
/// `σ² = (F ± sqrt(F² − 4D²)) / 2`.
pub fn singular_values_2x2(a: &CMat) -> (f64, f64) {
    assert_eq!(
        a.shape(),
        (2, 2),
        "singular_values_2x2 requires a 2x2 matrix"
    );
    // Sum |a_ij|^2 directly (not frobenius_norm()^2) so that exact inputs like
    // the identity produce an exactly-zero discriminant.
    let f: f64 = a.as_slice().iter().map(|x| x.norm_sqr()).sum();
    let det = a[(0, 0)] * a[(1, 1)] - a[(0, 1)] * a[(1, 0)];
    let d2 = det.norm_sqr();
    let disc = (f * f - 4.0 * d2).max(0.0).sqrt();
    let s1 = ((f + disc) / 2.0).max(0.0).sqrt();
    // sigma_min via sigma_max * sigma_min = |det|, which avoids the
    // cancellation in (f - disc)/2 when the matrix is well conditioned.
    let s2 = if s1 > 0.0 { d2.sqrt() / s1 } else { 0.0 };
    (s1, s2)
}

/// Linear condition number `σ_max / σ_min`. `f64::INFINITY` for singular input.
pub fn condition_number(a: &CMat) -> Result<f64, MatError> {
    let sv = singular_values(a)?;
    match (sv.first(), sv.last()) {
        (Some(&smax), Some(&smin)) if smin > 0.0 => Ok(smax / smin),
        _ => Ok(f64::INFINITY),
    }
}

/// Condition number in decibels, `20·log10(σ_max/σ_min)`, as plotted in the
/// paper's Figure 8. A perfectly conditioned (orthogonal) channel is 0 dB.
pub fn condition_number_db(a: &CMat) -> Result<f64, MatError> {
    Ok(20.0 * condition_number(a)?.log10())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(re: f64, im: f64) -> Complex64 {
        Complex64::new(re, im)
    }

    #[test]
    fn identity_is_perfectly_conditioned() {
        let i = CMat::identity(2);
        assert!((condition_number(&i).unwrap() - 1.0).abs() < 1e-12);
        assert!(condition_number_db(&i).unwrap().abs() < 1e-10);
    }

    #[test]
    fn diagonal_singular_values() {
        let a = CMat::from_rows(&[&[c(3.0, 0.0), c(0.0, 0.0)], &[c(0.0, 0.0), c(0.0, -1.0)]]);
        let sv = singular_values(&a).unwrap();
        assert!((sv[0] - 3.0).abs() < 1e-12);
        assert!((sv[1] - 1.0).abs() < 1e-12);
        assert!((condition_number_db(&a).unwrap() - 20.0 * 3f64.log10()).abs() < 1e-9);
    }

    #[test]
    fn singular_matrix_has_infinite_condition() {
        let a = CMat::from_rows(&[&[c(1.0, 0.0), c(2.0, 0.0)], &[c(2.0, 0.0), c(4.0, 0.0)]]);
        assert!(condition_number(&a).unwrap().is_infinite());
    }

    #[test]
    fn jacobi_matches_closed_form_2x2() {
        let a = CMat::from_rows(&[&[c(1.2, -0.7), c(0.3, 2.1)], &[c(-0.5, 0.9), c(2.0, 0.4)]]);
        let (s1, s2) = singular_values_2x2(&a);
        // Force generic Jacobi path by embedding in a 3x3 with a zero row/col.
        let mut a3 = CMat::zeros(3, 3);
        for i in 0..2 {
            for j in 0..2 {
                a3[(i, j)] = a[(i, j)];
            }
        }
        let sv3 = singular_values(&a3).unwrap();
        assert!((sv3[0] - s1).abs() < 1e-9, "{} vs {s1}", sv3[0]);
        assert!((sv3[1] - s2).abs() < 1e-9, "{} vs {s2}", sv3[1]);
        assert!(sv3[2].abs() < 1e-9);
    }

    #[test]
    fn eigenvalues_of_known_hermitian() {
        // H = [[2, j],[-j, 2]] has eigenvalues 3 and 1.
        let h = CMat::from_rows(&[&[c(2.0, 0.0), c(0.0, 1.0)], &[c(0.0, -1.0), c(2.0, 0.0)]]);
        let e = hermitian_eigenvalues(&h).unwrap();
        assert!((e[0] - 3.0).abs() < 1e-10);
        assert!((e[1] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn eigenvalue_sum_equals_trace() {
        let a = CMat::from_fn(4, 4, |i, j| {
            c((i as f64 - j as f64) * 0.3, (i as f64 + j as f64) * 0.1)
        });
        // Make Hermitian: H = A + A^H.
        let h = &a + &a.hermitian();
        let e = hermitian_eigenvalues(&h).unwrap();
        let tr = h.trace().unwrap().re;
        assert!((e.iter().sum::<f64>() - tr).abs() < 1e-8);
    }

    #[test]
    fn singular_values_invariant_under_unitary_phase() {
        let a = CMat::from_rows(&[&[c(1.0, 0.5), c(0.2, -0.1)], &[c(-0.3, 0.8), c(0.9, 0.0)]]);
        let rotated = a.scale(Complex64::cis(1.234));
        let (s1, s2) = singular_values_2x2(&a);
        let (r1, r2) = singular_values_2x2(&rotated);
        assert!((s1 - r1).abs() < 1e-12);
        assert!((s2 - r2).abs() < 1e-12);
    }

    #[test]
    fn non_square_rejected_for_eigen() {
        assert!(hermitian_eigenvalues(&CMat::zeros(2, 3)).is_err());
    }

    #[test]
    fn tall_matrix_singular_values() {
        // A = [1 0; 0 1; 0 0] has singular values (1, 1).
        let mut a = CMat::zeros(3, 2);
        a[(0, 0)] = Complex64::ONE;
        a[(1, 1)] = Complex64::ONE;
        let sv = singular_values(&a).unwrap();
        assert!((sv[0] - 1.0).abs() < 1e-10 && (sv[1] - 1.0).abs() < 1e-10);
    }
}
