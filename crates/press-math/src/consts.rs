//! Physical constants and RF band definitions used across the stack.

/// Speed of light in vacuum, m/s.
pub const SPEED_OF_LIGHT: f64 = 299_792_458.0;

/// Center frequency of Wi-Fi channel 11 (2.462 GHz) — the band used by the
/// paper's WARP experiments.
pub const WIFI_CHANNEL_11_HZ: f64 = 2.462e9;

/// Standard 802.11 channel bandwidth used in the paper's experiments, Hz.
pub const WIFI_BANDWIDTH_20MHZ: f64 = 20e6;

/// Wavelength in meters at a carrier frequency in Hz.
///
/// At 2.462 GHz this is ≈ 12.2 cm; the paper's SP4T waveguides differ in
/// length by a quarter of this.
#[inline]
pub fn wavelength(freq_hz: f64) -> f64 {
    SPEED_OF_LIGHT / freq_hz
}

/// Free-space propagation delay in seconds over a distance in meters.
#[inline]
pub fn propagation_delay(distance_m: f64) -> f64 {
    distance_m / SPEED_OF_LIGHT
}

/// Free-space path loss as a linear *amplitude* gain (Friis, isotropic):
/// `λ / (4π d)`. Multiply by antenna amplitude gains for a full link budget.
///
/// Clamps distance to a tenth of a wavelength so near-field placements do not
/// produce unphysical >1 gains that would destabilize the simulation.
#[inline]
pub fn friis_amplitude_gain(distance_m: f64, freq_hz: f64) -> f64 {
    let lambda = wavelength(freq_hz);
    let d = distance_m.max(lambda / 10.0);
    lambda / (4.0 * std::f64::consts::PI * d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wavelength_at_channel_11() {
        let l = wavelength(WIFI_CHANNEL_11_HZ);
        assert!((l - 0.1218).abs() < 1e-3, "got {l}");
    }

    #[test]
    fn delay_over_3m_is_10ns() {
        assert!((propagation_delay(3.0) - 1.0007e-8).abs() < 1e-11);
    }

    #[test]
    fn friis_decays_with_distance() {
        let f = WIFI_CHANNEL_11_HZ;
        let g1 = friis_amplitude_gain(1.0, f);
        let g2 = friis_amplitude_gain(2.0, f);
        assert!(
            (g1 / g2 - 2.0).abs() < 1e-12,
            "amplitude halves when distance doubles"
        );
    }

    #[test]
    fn friis_power_at_1m_2_4ghz_is_about_minus_40db() {
        let g = friis_amplitude_gain(1.0, 2.4e9);
        let db = 20.0 * g.log10();
        assert!((db + 40.0).abs() < 1.0, "got {db}");
    }

    #[test]
    fn friis_clamps_near_field() {
        let f = WIFI_CHANNEL_11_HZ;
        assert_eq!(
            friis_amplitude_gain(0.0, f),
            friis_amplitude_gain(wavelength(f) / 10.0, f)
        );
    }
}
