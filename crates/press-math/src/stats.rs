//! Descriptive statistics and empirical distributions.
//!
//! The paper reports its results almost entirely as CDFs and complementary
//! CDFs (Figures 5, 6, 8); this module provides the estimators the harnesses
//! use, plus the summary statistics (mean, median, percentiles) used in the
//! measurement campaigns.

/// Arithmetic mean. Returns `None` for an empty slice.
pub fn mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    Some(xs.iter().sum::<f64>() / xs.len() as f64)
}

/// Population variance. Returns `None` for an empty slice.
pub fn variance(xs: &[f64]) -> Option<f64> {
    let m = mean(xs)?;
    Some(xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64)
}

/// Population standard deviation.
pub fn std_dev(xs: &[f64]) -> Option<f64> {
    variance(xs).map(f64::sqrt)
}

/// Minimum, ignoring NaNs never (inputs are expected NaN-free).
pub fn min(xs: &[f64]) -> Option<f64> {
    xs.iter().copied().min_by(f64::total_cmp)
}

/// Maximum.
pub fn max(xs: &[f64]) -> Option<f64> {
    xs.iter().copied().max_by(f64::total_cmp)
}

/// Index of the minimum element (first occurrence).
pub fn argmin(xs: &[f64]) -> Option<usize> {
    xs.iter()
        .enumerate()
        .min_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
}

/// Index of the maximum element (first occurrence).
pub fn argmax(xs: &[f64]) -> Option<usize> {
    xs.iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
}

/// Linear-interpolation percentile, `q ∈ [0, 100]`.
///
/// Uses the common "linear between closest ranks" definition (NumPy default).
pub fn percentile(xs: &[f64], q: f64) -> Option<f64> {
    if xs.is_empty() || !(0.0..=100.0).contains(&q) {
        return None;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(f64::total_cmp);
    let pos = q / 100.0 * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Some(sorted[lo] + (sorted[hi] - sorted[lo]) * frac)
}

/// Median (50th percentile).
pub fn median(xs: &[f64]) -> Option<f64> {
    percentile(xs, 50.0)
}

/// An empirical distribution, precomputed for repeated CDF/CCDF queries and
/// for exporting plot-ready curves.
#[derive(Debug, Clone)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds the empirical CDF of the samples. Returns `None` when empty.
    pub fn new(samples: &[f64]) -> Option<Self> {
        if samples.is_empty() {
            return None;
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(f64::total_cmp);
        Some(Ecdf { sorted })
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Always false by construction (empty sample sets are rejected in `new`).
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// `P(X ≤ x)`.
    pub fn cdf(&self, x: f64) -> f64 {
        // partition_point gives the count of samples <= x.
        let count = self.sorted.partition_point(|&v| v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// `P(X > x)` — the complementary CDF, as plotted in Figures 5 and 6.
    pub fn ccdf(&self, x: f64) -> f64 {
        1.0 - self.cdf(x)
    }

    /// The underlying sorted samples.
    pub fn samples(&self) -> &[f64] {
        &self.sorted
    }

    /// Quantile (inverse CDF) by the nearest-rank-above rule, `p ∈ [0,1]`.
    pub fn quantile(&self, p: f64) -> f64 {
        let p = p.clamp(0.0, 1.0);
        let n = self.sorted.len();
        let idx = ((p * n as f64).ceil() as usize).clamp(1, n) - 1;
        self.sorted[idx]
    }

    /// Exports the curve as `(x, P(X ≤ x))` step points — one per distinct
    /// sample — ready for plotting or CSV dumps.
    pub fn curve(&self) -> Vec<(f64, f64)> {
        let n = self.sorted.len() as f64;
        let mut pts = Vec::new();
        for (i, &x) in self.sorted.iter().enumerate() {
            if i + 1 == self.sorted.len() || self.sorted[i + 1] != x {
                pts.push((x, (i + 1) as f64 / n));
            }
        }
        pts
    }

    /// Exports the complementary curve as `(x, P(X > x))` step points.
    pub fn ccdf_curve(&self) -> Vec<(f64, f64)> {
        self.curve()
            .into_iter()
            .map(|(x, p)| (x, 1.0 - p))
            .collect()
    }
}

/// Fixed-width histogram over `[lo, hi)` with `bins` buckets; out-of-range
/// samples clamp to the end buckets. Returns bucket counts.
pub fn histogram(xs: &[f64], lo: f64, hi: f64, bins: usize) -> Vec<usize> {
    assert!(bins > 0 && hi > lo, "invalid histogram spec");
    let mut counts = vec![0usize; bins];
    let width = (hi - lo) / bins as f64;
    for &x in xs {
        let idx = (((x - lo) / width).floor() as i64).clamp(0, bins as i64 - 1) as usize;
        counts[idx] += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_median_basic() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(mean(&xs), Some(2.5));
        assert_eq!(median(&xs), Some(2.5));
        assert_eq!(mean(&[]), None);
    }

    #[test]
    fn variance_of_constant_is_zero() {
        assert_eq!(variance(&[5.0; 10]), Some(0.0));
    }

    #[test]
    fn percentile_endpoints() {
        let xs = [3.0, 1.0, 2.0];
        assert_eq!(percentile(&xs, 0.0), Some(1.0));
        assert_eq!(percentile(&xs, 100.0), Some(3.0));
        assert_eq!(percentile(&xs, 50.0), Some(2.0));
        assert_eq!(percentile(&xs, 101.0), None);
    }

    #[test]
    fn argmin_argmax() {
        let xs = [2.0, -1.0, 5.0, -1.0];
        assert_eq!(argmin(&xs), Some(1));
        assert_eq!(argmax(&xs), Some(2));
        assert_eq!(argmin(&[]), None);
    }

    #[test]
    fn ecdf_step_values() {
        let e = Ecdf::new(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(e.cdf(0.5), 0.0);
        assert_eq!(e.cdf(1.0), 0.25);
        assert_eq!(e.cdf(2.5), 0.5);
        assert_eq!(e.cdf(4.0), 1.0);
        assert_eq!(e.ccdf(2.0), 0.5);
    }

    #[test]
    fn ecdf_rejects_empty() {
        assert!(Ecdf::new(&[]).is_none());
    }

    #[test]
    fn ecdf_quantile_is_inverse_of_cdf() {
        let e = Ecdf::new(&[10.0, 20.0, 30.0, 40.0, 50.0]).unwrap();
        assert_eq!(e.quantile(0.2), 10.0);
        assert_eq!(e.quantile(0.5), 30.0);
        assert_eq!(e.quantile(1.0), 50.0);
        assert_eq!(e.quantile(0.0), 10.0);
    }

    #[test]
    fn ecdf_curve_deduplicates() {
        let e = Ecdf::new(&[1.0, 1.0, 2.0]).unwrap();
        let curve = e.curve();
        assert_eq!(curve.len(), 2);
        assert_eq!(curve[0], (1.0, 2.0 / 3.0));
        assert_eq!(curve[1], (2.0, 1.0));
    }

    #[test]
    fn ccdf_curve_complements() {
        let e = Ecdf::new(&[1.0, 2.0]).unwrap();
        let c = e.ccdf_curve();
        assert_eq!(c[0], (1.0, 0.5));
        assert_eq!(c[1], (2.0, 0.0));
    }

    #[test]
    fn histogram_counts_and_clamps() {
        let xs = [-1.0, 0.1, 0.9, 1.5, 10.0];
        let h = histogram(&xs, 0.0, 2.0, 2);
        // -1.0 clamps into bin 0; 10.0 clamps into bin 1.
        assert_eq!(h, vec![3, 2]);
    }

    #[test]
    fn std_dev_known_value() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((std_dev(&xs).unwrap() - 2.0).abs() < 1e-12);
    }
}
