//! Dense complex matrices.
//!
//! MIMO channels are small dense complex matrices (2×2 in the paper's
//! experiments, up to ~8×8 in the large-MIMO ablations), and the inverse
//! problem solves small least-squares systems. A simple row-major dense
//! matrix is the right tool; no sparse or expression-template machinery.

use crate::complex::Complex64;
use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

/// Errors from matrix operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MatError {
    /// Operand shapes are incompatible: `(rows_a, cols_a)` vs `(rows_b, cols_b)`.
    ShapeMismatch((usize, usize), (usize, usize)),
    /// A square matrix was required.
    NotSquare(usize, usize),
    /// The system is singular (or numerically so) and cannot be solved.
    Singular,
}

impl fmt::Display for MatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MatError::ShapeMismatch(a, b) => {
                write!(f, "shape mismatch: {}x{} vs {}x{}", a.0, a.1, b.0, b.1)
            }
            MatError::NotSquare(r, c) => write!(f, "matrix is {r}x{c}, square required"),
            MatError::Singular => write!(f, "matrix is singular"),
        }
    }
}

impl std::error::Error for MatError {}

/// A dense, row-major complex matrix.
///
/// ```
/// use press_math::{CMat, Complex64};
/// let i = CMat::identity(2);
/// let a = CMat::from_rows(&[
///     &[Complex64::new(1.0, 0.0), Complex64::new(0.0, 1.0)],
///     &[Complex64::new(2.0, 0.0), Complex64::new(0.0, -1.0)],
/// ]);
/// assert_eq!((&a * &i).unwrap(), a);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CMat {
    rows: usize,
    cols: usize,
    data: Vec<Complex64>,
}

impl CMat {
    /// Creates a `rows × cols` zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        CMat {
            rows,
            cols,
            data: vec![Complex64::ZERO; rows * cols],
        }
    }

    /// Creates the `n × n` identity.
    pub fn identity(n: usize) -> Self {
        let mut m = CMat::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = Complex64::ONE;
        }
        m
    }

    /// Builds a matrix from row slices. Panics if rows have unequal lengths.
    pub fn from_rows(rows: &[&[Complex64]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend_from_slice(row);
        }
        CMat {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Builds a matrix from a flat row-major vector. Panics on length mismatch.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<Complex64>) -> Self {
        assert_eq!(data.len(), rows * cols, "flat data length mismatch");
        CMat { rows, cols, data }
    }

    /// Builds via a generator function `f(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> Complex64) -> Self {
        let mut m = CMat::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// True when the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrow of the flat row-major storage.
    #[inline]
    pub fn as_slice(&self) -> &[Complex64] {
        &self.data
    }

    /// Transpose (no conjugation).
    pub fn transpose(&self) -> CMat {
        CMat::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Conjugate (Hermitian) transpose, `A^H`.
    pub fn hermitian(&self) -> CMat {
        CMat::from_fn(self.cols, self.rows, |i, j| self[(j, i)].conj())
    }

    /// Element-wise conjugate.
    pub fn conj(&self) -> CMat {
        CMat {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|x| x.conj()).collect(),
        }
    }

    /// Scales every entry by a complex factor.
    pub fn scale(&self, s: Complex64) -> CMat {
        CMat {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|x| *x * s).collect(),
        }
    }

    /// Matrix product. Errors when inner dimensions disagree.
    pub fn matmul(&self, rhs: &CMat) -> Result<CMat, MatError> {
        if self.cols != rhs.rows {
            return Err(MatError::ShapeMismatch(self.shape(), rhs.shape()));
        }
        let mut out = CMat::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == Complex64::ZERO {
                    continue;
                }
                for j in 0..rhs.cols {
                    out[(i, j)] += a * rhs[(k, j)];
                }
            }
        }
        Ok(out)
    }

    /// Matrix–vector product.
    pub fn matvec(&self, v: &[Complex64]) -> Result<Vec<Complex64>, MatError> {
        if self.cols != v.len() {
            return Err(MatError::ShapeMismatch(self.shape(), (v.len(), 1)));
        }
        Ok((0..self.rows)
            .map(|i| (0..self.cols).map(|j| self[(i, j)] * v[j]).sum())
            .collect())
    }

    /// Frobenius norm `sqrt(Σ|a_ij|²)`.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x.norm_sqr()).sum::<f64>().sqrt()
    }

    /// Trace of a square matrix.
    pub fn trace(&self) -> Result<Complex64, MatError> {
        if !self.is_square() {
            return Err(MatError::NotSquare(self.rows, self.cols));
        }
        Ok((0..self.rows).map(|i| self[(i, i)]).sum())
    }

    /// Gram matrix `A^H·A` (always square, Hermitian positive semidefinite).
    pub fn gram(&self) -> CMat {
        self.hermitian()
            .matmul(self)
            .expect("gram dimensions always agree") // press-lint: allow(panic-freedom) — gram dimensions agree by construction
    }

    /// Solves `A·x = b` for square `A` by Gaussian elimination with partial
    /// pivoting.
    ///
    /// # Errors
    /// [`MatError::NotSquare`] for non-square `A`, [`MatError::ShapeMismatch`]
    /// when `b` has the wrong length, [`MatError::Singular`] when a pivot
    /// vanishes.
    pub fn solve(&self, b: &[Complex64]) -> Result<Vec<Complex64>, MatError> {
        if !self.is_square() {
            return Err(MatError::NotSquare(self.rows, self.cols));
        }
        if b.len() != self.rows {
            return Err(MatError::ShapeMismatch(self.shape(), (b.len(), 1)));
        }
        let n = self.rows;
        let mut a = self.clone();
        let mut x = b.to_vec();
        for col in 0..n {
            // Partial pivot: largest magnitude in this column.
            let (pivot_row, pivot_mag) = (col..n)
                .map(|r| (r, a[(r, col)].abs()))
                .max_by(|u, v| u.1.total_cmp(&v.1))
                .expect("non-empty column"); // press-lint: allow(panic-freedom) — col..n is non-empty for col < n
            if pivot_mag < 1e-300 {
                return Err(MatError::Singular);
            }
            if pivot_row != col {
                for j in 0..n {
                    let tmp = a[(col, j)];
                    a[(col, j)] = a[(pivot_row, j)];
                    a[(pivot_row, j)] = tmp;
                }
                x.swap(col, pivot_row);
            }
            let inv = a[(col, col)].inv();
            for r in col + 1..n {
                let factor = a[(r, col)] * inv;
                if factor == Complex64::ZERO {
                    continue;
                }
                for j in col..n {
                    let sub = factor * a[(col, j)];
                    a[(r, j)] -= sub;
                }
                let sub = factor * x[col];
                x[r] -= sub;
            }
        }
        // Back substitution.
        for col in (0..n).rev() {
            let mut acc = x[col];
            for j in col + 1..n {
                acc -= a[(col, j)] * x[j];
            }
            x[col] = acc / a[(col, col)];
        }
        Ok(x)
    }

    /// Solves the least-squares problem `min ‖A·x − b‖₂` via the normal
    /// equations `A^H A x = A^H b` with Tikhonov damping `λ` (pass 0 for none).
    ///
    /// Adequate for the small, well-scaled systems the inverse-problem solver
    /// produces; the damping guards rank deficiency.
    pub fn least_squares(&self, b: &[Complex64], lambda: f64) -> Result<Vec<Complex64>, MatError> {
        if b.len() != self.rows {
            return Err(MatError::ShapeMismatch(self.shape(), (b.len(), 1)));
        }
        let mut gram = self.gram();
        for i in 0..gram.rows() {
            gram[(i, i)] += Complex64::real(lambda);
        }
        let rhs = self.hermitian().matvec(b)?;
        gram.solve(&rhs)
    }

    /// Inverse of a square matrix.
    pub fn inverse(&self) -> Result<CMat, MatError> {
        if !self.is_square() {
            return Err(MatError::NotSquare(self.rows, self.cols));
        }
        let n = self.rows;
        let mut cols = Vec::with_capacity(n);
        for j in 0..n {
            let mut e = vec![Complex64::ZERO; n];
            e[j] = Complex64::ONE;
            cols.push(self.solve(&e)?);
        }
        Ok(CMat::from_fn(n, n, |i, j| cols[j][i]))
    }
}

impl Index<(usize, usize)> for CMat {
    type Output = Complex64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &Complex64 {
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for CMat {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut Complex64 {
        &mut self.data[i * self.cols + j]
    }
}

impl Add for &CMat {
    type Output = CMat;
    fn add(self, rhs: &CMat) -> CMat {
        assert_eq!(self.shape(), rhs.shape(), "add shape mismatch");
        CMat {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| *a + *b)
                .collect(),
        }
    }
}

impl Sub for &CMat {
    type Output = CMat;
    fn sub(self, rhs: &CMat) -> CMat {
        assert_eq!(self.shape(), rhs.shape(), "sub shape mismatch");
        CMat {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| *a - *b)
                .collect(),
        }
    }
}

impl Mul for &CMat {
    type Output = Result<CMat, MatError>;
    fn mul(self, rhs: &CMat) -> Result<CMat, MatError> {
        self.matmul(rhs)
    }
}

impl fmt::Display for CMat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            for j in 0..self.cols {
                write!(f, "{}\t", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(re: f64, im: f64) -> Complex64 {
        Complex64::new(re, im)
    }

    #[test]
    fn identity_is_multiplicative_identity() {
        let a = CMat::from_fn(3, 3, |i, j| c(i as f64, j as f64));
        let i = CMat::identity(3);
        assert_eq!(a.matmul(&i).unwrap(), a);
        assert_eq!(i.matmul(&a).unwrap(), a);
    }

    #[test]
    fn matmul_shape_error() {
        let a = CMat::zeros(2, 3);
        let b = CMat::zeros(2, 3);
        assert!(matches!(a.matmul(&b), Err(MatError::ShapeMismatch(_, _))));
    }

    #[test]
    fn hermitian_of_product() {
        // (AB)^H == B^H A^H
        let a = CMat::from_fn(2, 3, |i, j| c(i as f64 + 1.0, j as f64 - 1.0));
        let b = CMat::from_fn(3, 2, |i, j| c(j as f64, i as f64 * 0.5));
        let lhs = a.matmul(&b).unwrap().hermitian();
        let rhs = b.hermitian().matmul(&a.hermitian()).unwrap();
        assert!((&lhs - &rhs).frobenius_norm() < 1e-12);
    }

    #[test]
    fn solve_recovers_known_solution() {
        let a = CMat::from_rows(&[
            &[c(2.0, 1.0), c(0.0, -1.0), c(1.0, 0.0)],
            &[c(0.0, 3.0), c(1.0, 1.0), c(-2.0, 0.5)],
            &[c(1.0, 0.0), c(4.0, -2.0), c(0.5, 0.5)],
        ]);
        let x_true = vec![c(1.0, -1.0), c(0.5, 2.0), c(-3.0, 0.0)];
        let b = a.matvec(&x_true).unwrap();
        let x = a.solve(&b).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((*xi - *ti).abs() < 1e-10);
        }
    }

    #[test]
    fn solve_singular_reports_error() {
        let a = CMat::from_rows(&[&[c(1.0, 0.0), c(2.0, 0.0)], &[c(2.0, 0.0), c(4.0, 0.0)]]);
        assert_eq!(
            a.solve(&[c(1.0, 0.0), c(2.0, 0.0)]),
            Err(MatError::Singular)
        );
    }

    #[test]
    fn inverse_times_self_is_identity() {
        let a = CMat::from_rows(&[&[c(3.0, 1.0), c(0.0, 2.0)], &[c(-1.0, 0.0), c(1.0, -1.0)]]);
        let inv = a.inverse().unwrap();
        let prod = a.matmul(&inv).unwrap();
        assert!((&prod - &CMat::identity(2)).frobenius_norm() < 1e-10);
    }

    #[test]
    fn least_squares_exact_when_consistent() {
        let a = CMat::from_fn(5, 2, |i, j| c((i * (j + 1)) as f64 + 1.0, i as f64 * 0.1));
        let x_true = vec![c(0.5, 0.5), c(-1.0, 2.0)];
        let b = a.matvec(&x_true).unwrap();
        let x = a.least_squares(&b, 0.0).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((*xi - *ti).abs() < 1e-8);
        }
    }

    #[test]
    fn least_squares_damped_handles_rank_deficiency() {
        // Two identical columns: undamped normal equations are singular.
        let a = CMat::from_fn(4, 2, |i, _| c(i as f64 + 1.0, 0.0));
        let b = vec![c(1.0, 0.0); 4];
        let x = a.least_squares(&b, 1e-6).unwrap();
        assert!(x.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn gram_is_hermitian() {
        let a = CMat::from_fn(3, 2, |i, j| c(i as f64, j as f64 + 0.5));
        let g = a.gram();
        assert!((&g - &g.hermitian()).frobenius_norm() < 1e-12);
    }

    #[test]
    fn trace_requires_square() {
        assert!(matches!(
            CMat::zeros(2, 3).trace(),
            Err(MatError::NotSquare(2, 3))
        ));
        let a = CMat::identity(4);
        assert!((a.trace().unwrap() - c(4.0, 0.0)).abs() < 1e-15);
    }

    #[test]
    fn frobenius_norm_of_identity() {
        assert!((CMat::identity(9).frobenius_norm() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = CMat::from_fn(3, 3, |i, j| c((i + j) as f64, (i * j) as f64));
        let v = vec![c(1.0, 0.0), c(0.0, 1.0), c(2.0, -1.0)];
        let as_mat = CMat::from_fn(3, 1, |i, _| v[i]);
        let mv = a.matvec(&v).unwrap();
        let mm = a.matmul(&as_mat).unwrap();
        for i in 0..3 {
            assert!((mv[i] - mm[(i, 0)]).abs() < 1e-12);
        }
    }
}
