//! Radix-2 fast Fourier transform.
//!
//! Used by the OFDM PHY (64-point and 128-point transforms) and by
//! delay-domain analysis of channel frequency responses. Implemented from
//! scratch — an iterative, in-place Cooley–Tukey radix-2 FFT with
//! bit-reversal permutation. Sizes are restricted to powers of two, which is
//! all OFDM numerologies need.

use crate::complex::Complex64;

/// Errors from FFT operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FftError {
    /// The input length is not a power of two (or is zero).
    NotPowerOfTwo(usize),
}

impl std::fmt::Display for FftError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FftError::NotPowerOfTwo(n) => {
                write!(f, "FFT length {n} is not a nonzero power of two")
            }
        }
    }
}

impl std::error::Error for FftError {}

/// Returns true when `n` is a usable FFT size.
#[inline]
pub fn is_valid_fft_size(n: usize) -> bool {
    n != 0 && n.is_power_of_two()
}

fn bit_reverse_permute(data: &mut [Complex64]) {
    let n = data.len();
    if n < 4 {
        // 1- and 2-point permutations are the identity; also avoids a shift
        // overflow in the general formula below.
        return;
    }
    let shift = n.leading_zeros() + 1;
    for i in 0..n {
        let j = i.reverse_bits() >> shift;
        if j > i {
            data.swap(i, j);
        }
    }
}

fn fft_in_place(data: &mut [Complex64], inverse: bool) {
    let n = data.len();
    bit_reverse_permute(data);
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex64::cis(ang);
        let mut i = 0;
        while i < n {
            let mut w = Complex64::ONE;
            for k in 0..len / 2 {
                let u = data[i + k];
                let v = data[i + k + len / 2] * w;
                data[i + k] = u + v;
                data[i + k + len / 2] = u - v;
                w *= wlen;
            }
            i += len;
        }
        len <<= 1;
    }
}

/// In-place forward FFT (engineering convention: `X[k] = Σ x[n]·e^{−j2πkn/N}`).
///
/// # Errors
/// Returns [`FftError::NotPowerOfTwo`] when the buffer length is unusable.
pub fn fft(data: &mut [Complex64]) -> Result<(), FftError> {
    if !is_valid_fft_size(data.len()) {
        return Err(FftError::NotPowerOfTwo(data.len()));
    }
    fft_in_place(data, false);
    Ok(())
}

/// In-place inverse FFT, normalized by `1/N` so that `ifft(fft(x)) == x`.
///
/// # Errors
/// Returns [`FftError::NotPowerOfTwo`] when the buffer length is unusable.
pub fn ifft(data: &mut [Complex64]) -> Result<(), FftError> {
    let n = data.len();
    if !is_valid_fft_size(n) {
        return Err(FftError::NotPowerOfTwo(n));
    }
    fft_in_place(data, true);
    let scale = 1.0 / n as f64;
    for x in data.iter_mut() {
        *x = x.scale(scale);
    }
    Ok(())
}

/// Convenience: forward FFT of a borrowed slice into a fresh vector.
pub fn fft_copy(data: &[Complex64]) -> Result<Vec<Complex64>, FftError> {
    let mut out = data.to_vec();
    fft(&mut out)?;
    Ok(out)
}

/// Convenience: inverse FFT of a borrowed slice into a fresh vector.
pub fn ifft_copy(data: &[Complex64]) -> Result<Vec<Complex64>, FftError> {
    let mut out = data.to_vec();
    ifft(&mut out)?;
    Ok(out)
}

/// Rotates a spectrum between "DC-first" (FFT natural) and "centered"
/// (negative frequencies first) layouts. Self-inverse for even lengths.
pub fn fft_shift(data: &[Complex64]) -> Vec<Complex64> {
    let n = data.len();
    let half = n.div_ceil(2);
    let mut out = Vec::with_capacity(n);
    out.extend_from_slice(&data[half..]);
    out.extend_from_slice(&data[..half]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &[Complex64], b: &[Complex64], eps: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((*x - *y).abs() < eps, "{x} vs {y}");
        }
    }

    #[test]
    fn rejects_non_power_of_two() {
        let mut v = vec![Complex64::ZERO; 12];
        assert_eq!(fft(&mut v), Err(FftError::NotPowerOfTwo(12)));
        assert_eq!(ifft(&mut v), Err(FftError::NotPowerOfTwo(12)));
        let mut empty: Vec<Complex64> = vec![];
        assert_eq!(fft(&mut empty), Err(FftError::NotPowerOfTwo(0)));
    }

    #[test]
    fn impulse_transforms_to_flat_spectrum() {
        let mut v = vec![Complex64::ZERO; 8];
        v[0] = Complex64::ONE;
        fft(&mut v).unwrap();
        for x in &v {
            assert!((*x - Complex64::ONE).abs() < 1e-12);
        }
    }

    #[test]
    fn single_tone_lands_on_one_bin() {
        let n = 64;
        let k0 = 5;
        let v: Vec<Complex64> = (0..n)
            .map(|t| Complex64::cis(2.0 * std::f64::consts::PI * k0 as f64 * t as f64 / n as f64))
            .collect();
        let spec = fft_copy(&v).unwrap();
        for (k, x) in spec.iter().enumerate() {
            if k == k0 {
                assert!((x.abs() - n as f64).abs() < 1e-9);
            } else {
                assert!(x.abs() < 1e-9, "leak at bin {k}: {}", x.abs());
            }
        }
    }

    #[test]
    fn ifft_inverts_fft() {
        let v: Vec<Complex64> = (0..128)
            .map(|t| Complex64::new((t as f64 * 0.37).sin(), (t as f64 * 0.11).cos()))
            .collect();
        let round = ifft_copy(&fft_copy(&v).unwrap()).unwrap();
        assert_close(&v, &round, 1e-10);
    }

    #[test]
    fn parseval_energy_conservation() {
        let v: Vec<Complex64> = (0..32)
            .map(|t| Complex64::new((t as f64).sin(), (t as f64 * 2.0).cos()))
            .collect();
        let time_energy: f64 = v.iter().map(|x| x.norm_sqr()).sum();
        let spec = fft_copy(&v).unwrap();
        let freq_energy: f64 = spec.iter().map(|x| x.norm_sqr()).sum::<f64>() / 32.0;
        assert!((time_energy - freq_energy).abs() < 1e-9);
    }

    #[test]
    fn linearity() {
        let a: Vec<Complex64> = (0..16).map(|t| Complex64::real(t as f64)).collect();
        let b: Vec<Complex64> = (0..16)
            .map(|t| Complex64::new(0.0, (t * t) as f64))
            .collect();
        let sum: Vec<Complex64> = a.iter().zip(&b).map(|(x, y)| *x + *y).collect();
        let fa = fft_copy(&a).unwrap();
        let fb = fft_copy(&b).unwrap();
        let fs = fft_copy(&sum).unwrap();
        let fsum: Vec<Complex64> = fa.iter().zip(&fb).map(|(x, y)| *x + *y).collect();
        assert_close(&fs, &fsum, 1e-9);
    }

    #[test]
    fn fft_shift_roundtrip_even() {
        let v: Vec<Complex64> = (0..8).map(|t| Complex64::real(t as f64)).collect();
        let shifted = fft_shift(&v);
        assert_eq!(shifted[0].re, 4.0);
        let back = fft_shift(&shifted);
        assert_close(&v, &back, 1e-15);
    }

    #[test]
    fn size_one_is_identity() {
        let mut v = vec![Complex64::new(2.0, -3.0)];
        fft(&mut v).unwrap();
        assert!((v[0] - Complex64::new(2.0, -3.0)).abs() < 1e-15);
    }
}
