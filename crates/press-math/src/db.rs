//! Decibel conversions.
//!
//! RF work mixes linear power, linear amplitude, dB, dBm and dBi constantly;
//! centralizing the conversions avoids the classic factor-of-two (power vs.
//! amplitude) mistakes.

/// Converts a linear *power* ratio to decibels: `10·log10(x)`.
///
/// Returns `-inf` for zero, NaN for negative input (power ratios are
/// non-negative by construction; a NaN is a loud bug signal).
#[inline]
pub fn pow_to_db(x: f64) -> f64 {
    10.0 * x.log10()
}

/// Converts decibels to a linear *power* ratio: `10^(x/10)`.
#[inline]
pub fn db_to_pow(db: f64) -> f64 {
    10f64.powf(db / 10.0)
}

/// Converts a linear *amplitude* (voltage/field) ratio to decibels: `20·log10(x)`.
#[inline]
pub fn amp_to_db(x: f64) -> f64 {
    20.0 * x.log10()
}

/// Converts decibels to a linear *amplitude* ratio: `10^(x/20)`.
#[inline]
pub fn db_to_amp(db: f64) -> f64 {
    10f64.powf(db / 20.0)
}

/// Converts milliwatts to dBm.
#[inline]
pub fn mw_to_dbm(mw: f64) -> f64 {
    pow_to_db(mw)
}

/// Converts dBm to milliwatts.
#[inline]
pub fn dbm_to_mw(dbm: f64) -> f64 {
    db_to_pow(dbm)
}

/// Converts dBm to watts.
#[inline]
pub fn dbm_to_watts(dbm: f64) -> f64 {
    db_to_pow(dbm) * 1e-3
}

/// Converts watts to dBm.
#[inline]
pub fn watts_to_dbm(w: f64) -> f64 {
    pow_to_db(w * 1e3)
}

/// Thermal noise power in dBm for a given bandwidth (Hz) at ~290 K:
/// `-174 dBm/Hz + 10·log10(B)`.
///
/// For a 20 MHz Wi-Fi channel this is ≈ −101 dBm, the noise floor used by the
/// simulated receivers before their noise figure is applied.
#[inline]
pub fn thermal_noise_dbm(bandwidth_hz: f64) -> f64 {
    -173.8 + 10.0 * bandwidth_hz.log10()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_roundtrip() {
        for db in [-30.0, -3.0, 0.0, 3.0, 26.0] {
            assert!((pow_to_db(db_to_pow(db)) - db).abs() < 1e-12);
        }
    }

    #[test]
    fn amplitude_roundtrip() {
        for db in [-26.0, 0.0, 14.0] {
            assert!((amp_to_db(db_to_amp(db)) - db).abs() < 1e-12);
        }
    }

    #[test]
    fn three_db_doubles_power() {
        assert!((db_to_pow(3.0103) - 2.0).abs() < 1e-4);
    }

    #[test]
    fn six_db_doubles_amplitude() {
        assert!((db_to_amp(6.0206) - 2.0).abs() < 1e-4);
    }

    #[test]
    fn dbm_watts() {
        assert!((dbm_to_watts(30.0) - 1.0).abs() < 1e-12);
        assert!((watts_to_dbm(0.001) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn thermal_noise_20mhz_close_to_minus_101_dbm() {
        let n = thermal_noise_dbm(20e6);
        assert!((n + 100.8).abs() < 0.5, "got {n}");
    }

    #[test]
    fn zero_power_is_neg_inf() {
        assert!(pow_to_db(0.0).is_infinite() && pow_to_db(0.0) < 0.0);
    }
}
