//! # press-math
//!
//! Self-contained numerics substrate for the PRESS reproduction
//! ("Programmable Radio Environments for Smart Spaces", HotNets'17).
//!
//! Everything the rest of the workspace needs that a scientific-computing
//! dependency would otherwise provide lives here, implemented from scratch:
//!
//! * [`Complex64`] — complex arithmetic (channel coefficients, phasors);
//! * [`CMat`] — dense complex matrices with solve / least-squares / inverse;
//! * [`svd`] — singular values and MIMO condition numbers (Figure 8);
//! * [`fft`] — radix-2 FFT for the OFDM PHY;
//! * [`stats`] — CDF/CCDF estimators (Figures 5, 6, 8) and summaries;
//! * [`db`] — decibel/linear conversions;
//! * [`consts`] — physical constants (speed of light, ISM band frequencies).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
pub mod complex;
pub mod consts;
pub mod db;
pub mod fft;
pub mod mat;
pub mod stats;
pub mod svd;

pub use complex::Complex64;
pub use mat::{CMat, MatError};
pub use stats::Ecdf;
