//! Complex arithmetic used throughout the PRESS stack.
//!
//! The simulation works almost entirely with complex basebands: channel
//! frequency responses, reflection coefficients, OFDM symbols. We implement a
//! small, dependency-free `Complex64` instead of pulling in `num-complex`,
//! keeping the workspace self-contained (see DESIGN.md dependency policy).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` components.
///
/// ```
/// use press_math::Complex64;
/// let j = Complex64::new(0.0, 1.0);
/// assert!((j * j + Complex64::ONE).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex64 {
    /// The additive identity, `0 + 0j`.
    pub const ZERO: Complex64 = Complex64 { re: 0.0, im: 0.0 };
    /// The multiplicative identity, `1 + 0j`.
    pub const ONE: Complex64 = Complex64 { re: 1.0, im: 0.0 };
    /// The imaginary unit, `0 + 1j`.
    pub const I: Complex64 = Complex64 { re: 0.0, im: 1.0 };

    /// Creates a complex number from rectangular components.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex64 { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn real(re: f64) -> Self {
        Complex64 { re, im: 0.0 }
    }

    /// Creates a complex number from polar form `r·e^{jθ}`.
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Complex64::new(r * theta.cos(), r * theta.sin())
    }

    /// `e^{jθ}` — a unit phasor. The workhorse of channel synthesis.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Complex64::new(theta.cos(), theta.sin())
    }

    /// Magnitude (absolute value).
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude. Cheaper than [`abs`](Self::abs) when comparing powers.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Argument (phase angle) in radians, in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex64::new(self.re, -self.im)
    }

    /// Multiplicative inverse. Returns non-finite components when `self` is zero.
    #[inline]
    pub fn inv(self) -> Self {
        let d = self.norm_sqr();
        Complex64::new(self.re / d, -self.im / d)
    }

    /// Complex exponential `e^{self}`.
    #[inline]
    pub fn exp(self) -> Self {
        Complex64::from_polar(self.re.exp(), self.im)
    }

    /// Principal square root.
    pub fn sqrt(self) -> Self {
        let r = self.abs();
        let theta = self.arg();
        Complex64::from_polar(r.sqrt(), theta / 2.0)
    }

    /// Scales by a real factor.
    #[inline]
    pub fn scale(self, s: f64) -> Self {
        Complex64::new(self.re * s, self.im * s)
    }

    /// Returns `(magnitude, phase)`.
    #[inline]
    pub fn to_polar(self) -> (f64, f64) {
        (self.abs(), self.arg())
    }

    /// True when both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl fmt::Display for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{:.6}+{:.6}j", self.re, self.im)
        } else {
            write!(f, "{:.6}-{:.6}j", self.re, -self.im)
        }
    }
}

impl From<f64> for Complex64 {
    fn from(re: f64) -> Self {
        Complex64::real(re)
    }
}

impl Add for Complex64 {
    type Output = Complex64;
    #[inline]
    fn add(self, rhs: Complex64) -> Complex64 {
        Complex64::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex64 {
    type Output = Complex64;
    #[inline]
    fn sub(self, rhs: Complex64) -> Complex64 {
        Complex64::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: Complex64) -> Complex64 {
        Complex64::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Div for Complex64 {
    type Output = Complex64;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // z/w computed as z·w⁻¹
    fn div(self, rhs: Complex64) -> Complex64 {
        self * rhs.inv()
    }
}

impl Mul<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: f64) -> Complex64 {
        self.scale(rhs)
    }
}

impl Mul<Complex64> for f64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: Complex64) -> Complex64 {
        rhs.scale(self)
    }
}

impl Div<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn div(self, rhs: f64) -> Complex64 {
        Complex64::new(self.re / rhs, self.im / rhs)
    }
}

impl Neg for Complex64 {
    type Output = Complex64;
    #[inline]
    fn neg(self) -> Complex64 {
        Complex64::new(-self.re, -self.im)
    }
}

impl AddAssign for Complex64 {
    #[inline]
    fn add_assign(&mut self, rhs: Complex64) {
        *self = *self + rhs;
    }
}

impl SubAssign for Complex64 {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex64) {
        *self = *self - rhs;
    }
}

impl MulAssign for Complex64 {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex64) {
        *self = *self * rhs;
    }
}

impl DivAssign for Complex64 {
    #[inline]
    fn div_assign(&mut self, rhs: Complex64) {
        *self = *self / rhs;
    }
}

impl Sum for Complex64 {
    fn sum<I: Iterator<Item = Complex64>>(iter: I) -> Complex64 {
        iter.fold(Complex64::ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    #[test]
    fn add_sub_roundtrip() {
        let a = Complex64::new(1.5, -2.5);
        let b = Complex64::new(-0.25, 4.0);
        assert!(((a + b) - b - a).abs() < EPS);
    }

    #[test]
    fn mul_matches_polar() {
        let a = Complex64::from_polar(2.0, 0.3);
        let b = Complex64::from_polar(3.0, -1.1);
        let p = a * b;
        assert!((p.abs() - 6.0).abs() < EPS);
        assert!((p.arg() - (0.3 - 1.1)).abs() < EPS);
    }

    #[test]
    fn division_inverts_multiplication() {
        let a = Complex64::new(3.0, 4.0);
        let b = Complex64::new(-1.0, 2.0);
        assert!(((a * b) / b - a).abs() < 1e-12);
    }

    #[test]
    fn conj_properties() {
        let a = Complex64::new(1.0, -7.0);
        assert!(((a * a.conj()).im).abs() < EPS);
        assert!(((a * a.conj()).re - a.norm_sqr()).abs() < EPS);
    }

    #[test]
    fn cis_is_unit() {
        for k in 0..100 {
            let theta = k as f64 * 0.13;
            assert!((Complex64::cis(theta).abs() - 1.0).abs() < EPS);
        }
    }

    #[test]
    fn sqrt_squares_back() {
        let a = Complex64::new(-3.0, 0.5);
        let s = a.sqrt();
        assert!((s * s - a).abs() < 1e-10);
    }

    #[test]
    fn exp_of_imaginary_is_cis() {
        let theta = 0.77;
        let e = (Complex64::I * theta).exp();
        assert!((e - Complex64::cis(theta)).abs() < EPS);
    }

    #[test]
    fn inv_of_zero_is_not_finite() {
        assert!(!Complex64::ZERO.inv().is_finite());
    }

    #[test]
    fn sum_iterator() {
        let total: Complex64 = (0..4).map(|k| Complex64::new(k as f64, 1.0)).sum();
        assert!((total - Complex64::new(6.0, 4.0)).abs() < EPS);
    }

    #[test]
    fn display_formats_sign() {
        let s = format!("{}", Complex64::new(1.0, -2.0));
        assert!(s.contains('-'));
    }
}
