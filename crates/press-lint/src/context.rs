//! Per-file analysis context: which crate a file belongs to, whether it is
//! test/bench/example code, and which token ranges sit inside `#[cfg(test)]`
//! or `#[test]` items.

use crate::lexer::{Tok, TokKind};

/// Where a file sits in the workspace and how strictly to lint it.
#[derive(Debug, Clone)]
pub struct FileContext {
    /// Workspace-relative path with `/` separators.
    pub rel_path: String,
    /// Crate the file belongs to (`press` for the facade package).
    pub crate_name: String,
    /// True for press-bench: the measurement harness is allowed wall clocks
    /// and scratch seeds because its output is a report, not a simulation.
    pub bench_crate: bool,
    /// True for the `pressd` daemon's I/O shell (`main.rs` / `shell.rs`
    /// only): the shell may read the wall clock for stderr diagnostics.
    /// The daemon's pure modules (protocol, event loop, replay) stay under
    /// the full ambient-entropy ban — byte-identical replay depends on it.
    pub daemon_shell: bool,
    /// True when the whole file is test/bench/example surface (under a
    /// `tests/`, `benches/` or `examples/` directory).
    pub test_file: bool,
}

impl FileContext {
    /// Classify a workspace-relative path.
    pub fn from_rel_path(rel_path: &str) -> FileContext {
        let rel = rel_path.replace('\\', "/");
        let parts: Vec<&str> = rel.split('/').collect();
        let crate_name = if parts.first() == Some(&"crates") && parts.len() > 1 {
            parts[1].to_string()
        } else {
            // Facade package: src/, tests/, examples/ at the workspace root.
            String::from("press")
        };
        let test_file = parts
            .iter()
            .any(|p| matches!(*p, "tests" | "benches" | "examples" | "bin"));
        let daemon_shell =
            crate_name == "pressd" && matches!(parts.last(), Some(&"main.rs") | Some(&"shell.rs"));
        FileContext {
            bench_crate: crate_name == "press-bench",
            daemon_shell,
            crate_name,
            rel_path: rel,
            test_file,
        }
    }
}

/// Token-index ranges (half-open) that sit inside `#[cfg(test)]` / `#[test]`
/// items.
#[derive(Debug, Default)]
pub struct TestRegions {
    ranges: Vec<(usize, usize)>,
}

impl TestRegions {
    /// True if token index `idx` falls inside any test region.
    pub fn contains(&self, idx: usize) -> bool {
        self.ranges.iter().any(|&(a, b)| a <= idx && idx < b)
    }
}

/// Find `#[cfg(test)]` / `#[test]` attributed items and mark their bodies.
///
/// The scan is syntactic: after a qualifying attribute we take everything up
/// to the matching close brace of the next `{` (the `mod tests { ... }` or
/// `fn case() { ... }` body). `cfg(not(test))` does not qualify.
pub fn test_regions(toks: &[Tok]) -> TestRegions {
    let mut regions = TestRegions::default();
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].is_punct("#") && i + 1 < toks.len() && toks[i + 1].is_punct("[") {
            // Collect the attribute token range: from `[` to its matching `]`.
            let attr_start = i + 2;
            let mut depth = 1usize;
            let mut j = attr_start;
            while j < toks.len() && depth > 0 {
                if toks[j].is_punct("[") {
                    depth += 1;
                } else if toks[j].is_punct("]") {
                    depth -= 1;
                }
                j += 1;
            }
            let attr_end = j.saturating_sub(1); // index of `]`
            if attr_is_testish(&toks[attr_start..attr_end]) {
                // Find the body: first `{` before any `;` at attribute depth.
                let mut k = j;
                // Skip further attributes (`#[test] #[ignore] fn ...`).
                while k + 1 < toks.len() && toks[k].is_punct("#") && toks[k + 1].is_punct("[") {
                    let mut d = 1usize;
                    let mut m = k + 2;
                    while m < toks.len() && d > 0 {
                        if toks[m].is_punct("[") {
                            d += 1;
                        } else if toks[m].is_punct("]") {
                            d -= 1;
                        }
                        m += 1;
                    }
                    k = m;
                }
                let mut open = None;
                while k < toks.len() {
                    if toks[k].is_punct("{") {
                        open = Some(k);
                        break;
                    }
                    if toks[k].is_punct(";") {
                        break; // `#[cfg(test)] mod tests;` — out-of-line, skip
                    }
                    k += 1;
                }
                if let Some(open) = open {
                    let mut d = 1usize;
                    let mut m = open + 1;
                    while m < toks.len() && d > 0 {
                        if toks[m].is_punct("{") {
                            d += 1;
                        } else if toks[m].is_punct("}") {
                            d -= 1;
                        }
                        m += 1;
                    }
                    regions.ranges.push((open, m));
                    i = j;
                    continue;
                }
            }
            i = j;
            continue;
        }
        i += 1;
    }
    regions
}

/// Does an attribute body mark test-only code?
///
/// Qualifies: `test`, `cfg(test)`, `cfg(all(test, ...))`, `bench`.
/// Does not qualify: `cfg(not(test))`.
fn attr_is_testish(attr: &[Tok]) -> bool {
    // Bare `#[test]` / `#[bench]`.
    if attr.len() == 1 && (attr[0].is_ident("test") || attr[0].is_ident("bench")) {
        return true;
    }
    if !attr.first().is_some_and(|t| t.is_ident("cfg")) {
        return false;
    }
    // Inside cfg(...): accept an ident `test` not preceded by `not (`.
    for (k, t) in attr.iter().enumerate() {
        if t.kind == TokKind::Ident && t.text == "test" {
            let negated = k >= 2 && attr[k - 2].is_ident("not") && attr[k - 1].is_punct("(");
            if !negated {
                return true;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn crate_classification() {
        let c = FileContext::from_rel_path("crates/press-core/src/search.rs");
        assert_eq!(c.crate_name, "press-core");
        assert!(!c.bench_crate && !c.test_file);

        let c = FileContext::from_rel_path("crates/press-bench/src/bin/fig4.rs");
        assert!(c.bench_crate && c.test_file);

        let c = FileContext::from_rel_path("examples/quickstart.rs");
        assert_eq!(c.crate_name, "press");
        assert!(c.test_file);

        let c = FileContext::from_rel_path("src/rig.rs");
        assert_eq!(c.crate_name, "press");
        assert!(!c.test_file);
    }

    #[test]
    fn metrics_crate_is_a_strict_sim_crate() {
        // The exposition layer gets no carve-out: byte-identical
        // live-vs-rebuilt rendering depends on the full wall-clock and
        // ambient-entropy ban, so press-metrics lints exactly like the
        // simulation crates it observes.
        for path in [
            "crates/press-metrics/src/lib.rs",
            "crates/press-metrics/src/aggregate.rs",
            "crates/press-metrics/src/slo.rs",
            "crates/pressd/src/metrics.rs",
        ] {
            let c = FileContext::from_rel_path(path);
            assert!(!c.bench_crate, "{path} is not the measurement harness");
            assert!(!c.daemon_shell, "{path} must stay under the entropy ban");
            assert!(!c.test_file, "{path} is library surface");
        }
    }

    #[test]
    fn daemon_shell_carve_out_is_crate_and_stem_scoped() {
        for shell in ["crates/pressd/src/main.rs", "crates/pressd/src/shell.rs"] {
            let c = FileContext::from_rel_path(shell);
            assert_eq!(c.crate_name, "pressd");
            assert!(c.daemon_shell, "{shell} is the daemon's I/O shell");
        }
        // The daemon's pure modules are not the shell…
        for pure in [
            "crates/pressd/src/eventloop.rs",
            "crates/pressd/src/protocol.rs",
            "crates/pressd/src/replay.rs",
            "crates/pressd/src/lib.rs",
        ] {
            assert!(
                !FileContext::from_rel_path(pure).daemon_shell,
                "{pure} must stay under the ambient-entropy ban"
            );
        }
        // …and a shell-named file in a simulation crate gets no carve-out.
        assert!(!FileContext::from_rel_path("crates/press-core/src/shell.rs").daemon_shell);
        assert!(!FileContext::from_rel_path("src/main.rs").daemon_shell);
    }

    #[test]
    fn cfg_test_mod_is_a_region() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n fn t() { body(); }\n}\nfn after() {}";
        let l = lex(src);
        let r = test_regions(&l.toks);
        let body = l.toks.iter().position(|t| t.is_ident("body")).unwrap();
        let lib = l.toks.iter().position(|t| t.is_ident("lib")).unwrap();
        let after = l.toks.iter().position(|t| t.is_ident("after")).unwrap();
        assert!(r.contains(body));
        assert!(!r.contains(lib));
        assert!(!r.contains(after));
    }

    #[test]
    fn test_fn_attr_is_a_region() {
        let src = "#[test]\nfn case() { inner(); }\nfn outer() {}";
        let l = lex(src);
        let r = test_regions(&l.toks);
        let inner = l.toks.iter().position(|t| t.is_ident("inner")).unwrap();
        let outer = l.toks.iter().position(|t| t.is_ident("outer")).unwrap();
        assert!(r.contains(inner));
        assert!(!r.contains(outer));
    }

    #[test]
    fn cfg_not_test_is_not_a_region() {
        let src = "#[cfg(not(test))]\nmod prod { fn p() { body(); } }";
        let l = lex(src);
        let r = test_regions(&l.toks);
        let body = l.toks.iter().position(|t| t.is_ident("body")).unwrap();
        assert!(!r.contains(body));
    }

    #[test]
    fn stacked_attributes_reach_the_body() {
        let src = "#[test]\n#[ignore]\nfn case() { inner(); }";
        let l = lex(src);
        let r = test_regions(&l.toks);
        let inner = l.toks.iter().position(|t| t.is_ident("inner")).unwrap();
        assert!(r.contains(inner));
    }
}
