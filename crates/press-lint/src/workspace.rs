//! Workspace discovery and the whole-tree analysis entry point.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::checks;
use crate::context::{test_regions, FileContext};
use crate::diag::Diagnostic;
use crate::lexer;

/// Result of analyzing a set of files.
#[derive(Debug, Default)]
pub struct Report {
    /// Number of `.rs` files scanned.
    pub files: usize,
    /// Findings that survived suppression, in (file, line) order.
    pub diagnostics: Vec<Diagnostic>,
    /// Findings silenced by `// press-lint: allow(..)` comments.
    pub suppressed: usize,
}

/// Analyze one source string as if it lived at `rel_path` in the workspace.
///
/// Returns surviving diagnostics plus the number suppressed. This is the
/// unit the fixture tests drive directly.
pub fn analyze_source(rel_path: &str, src: &str) -> (Vec<Diagnostic>, usize) {
    let ctx = FileContext::from_rel_path(rel_path);
    let lexed = lexer::lex(src);
    let regions = test_regions(&lexed.toks);
    let raw = checks::run_all(&ctx, &lexed.toks, &regions);
    let mut kept = Vec::new();
    let mut suppressed = 0usize;
    for d in raw {
        let silenced = lexed.suppressions.iter().any(|s| {
            (s.line == d.line || (!s.trailing && s.line + 1 == d.line))
                && s.slugs.iter().any(|slug| slug == d.lint || slug == "all")
        });
        if silenced {
            suppressed += 1;
        } else {
            kept.push(d);
        }
    }
    (kept, suppressed)
}

/// Directories never scanned, wherever they appear.
const SKIP_DIRS: &[&str] = &["target", ".git", ".github", "results"];

/// Path suffixes excluded from the scan: the linter's own fixture corpus is
/// deliberately violation-dense.
const SKIP_SUFFIXES: &[&str] = &["crates/press-lint/tests/fixtures"];

/// Recursively collect workspace `.rs` files in deterministic (sorted) order.
pub fn collect_rs_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<PathBuf> = fs::read_dir(&dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        entries.sort();
        for path in entries {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if path.is_dir() {
                if SKIP_DIRS.contains(&name) {
                    continue;
                }
                let rel = rel_to(root, &path);
                if SKIP_SUFFIXES.iter().any(|s| rel == *s) {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

fn rel_to(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Analyze every `.rs` file under `root`.
pub fn analyze_workspace(root: &Path) -> io::Result<Report> {
    let mut report = Report::default();
    for path in collect_rs_files(root)? {
        let src = fs::read_to_string(&path)?;
        let rel = rel_to(root, &path);
        let (diags, suppressed) = analyze_source(&rel, &src);
        report.files += 1;
        report.suppressed += suppressed;
        report.diagnostics.extend(diags);
    }
    report
        .diagnostics
        .sort_by(|a, b| (&a.file, a.line, a.col).cmp(&(&b.file, b.line, b.col)));
    Ok(report)
}

/// Walk upward from `start` to the first directory whose `Cargo.toml`
/// declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut cur = Some(start.to_path_buf());
    while let Some(dir) = cur {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        cur = dir.parent().map(Path::to_path_buf);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suppression_silences_same_and_next_line() {
        let src = "\
// press-lint: allow(nondeterministic-iteration)
use std::collections::HashSet;
use std::collections::HashMap; // press-lint: allow(nondeterministic-iteration)
use std::collections::HashMap;
";
        let (diags, suppressed) = analyze_source("crates/press-core/src/x.rs", src);
        assert_eq!(suppressed, 2);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].line, 4);
    }

    #[test]
    fn allow_all_and_unrelated_slugs() {
        let src = "use std::collections::HashSet; // press-lint: allow(all)\n";
        let (diags, suppressed) = analyze_source("crates/press-core/src/x.rs", src);
        assert!(diags.is_empty());
        assert_eq!(suppressed, 1);

        let src = "use std::collections::HashSet; // press-lint: allow(float-ordering)\n";
        let (diags, suppressed) = analyze_source("crates/press-core/src/x.rs", src);
        assert_eq!(diags.len(), 1);
        assert_eq!(suppressed, 0);
    }
}
