//! Workspace discovery and the two-pass analysis entry point.
//!
//! Pass 1 runs per file and is embarrassingly parallel: lex, run the local
//! lints (L1–L6, L9), summarize the file into the symbol model
//! ([`crate::model::FileSummary`]). Results come back in path order
//! regardless of thread count — files are dealt to workers as contiguous
//! chunks of the sorted list and stitched back by position — so the
//! diagnostic stream is byte-identical at `--jobs 1` and `--jobs 16`.
//! Pass 1 is also where the incremental cache hooks in: a file whose
//! content hash matches the cache skips the lexer entirely.
//!
//! Pass 2 assembles the [`crate::model::Model`] from every file's summary
//! and runs the model lints (L7 seed-stream provenance, L8 kernel
//! allocation-freedom). Suppression comments are applied *after* pass 2, so
//! `// press-lint: allow(..)` works uniformly for local and model lints.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use crate::baseline::{Baseline, Entry};
use crate::cache::{Cache, FileAnalysis};
use crate::checks;
use crate::context::{test_regions, FileContext};
use crate::diag::Diagnostic;
use crate::hash::{fnv1a64, line_key};
use crate::lexer;
use crate::model::{summarize, Model, ModelFile};
use crate::modelcheck;

/// How to run the analyzer.
#[derive(Debug, Default)]
pub struct Options {
    /// Cache file to read/write; `None` disables the cache.
    pub cache_path: Option<PathBuf>,
    /// Worker threads for the per-file pass; 0 = one per available core.
    pub jobs: usize,
    /// Baseline file to subtract from the report.
    pub baseline: Option<PathBuf>,
}

/// Result of analyzing a set of files.
#[derive(Debug, Default)]
pub struct Report {
    /// Number of `.rs` files scanned.
    pub files: usize,
    /// Findings that survived suppression and baseline, in (file, line,
    /// col, lint) order.
    pub diagnostics: Vec<Diagnostic>,
    /// Findings silenced by `// press-lint: allow(..)` comments.
    pub suppressed: usize,
    /// Findings absorbed by the baseline.
    pub baselined: usize,
    /// Baseline entries that matched nothing — candidates for deletion.
    pub stale_baseline: Vec<Entry>,
    /// Files whose pass-1 analysis was served from the cache.
    pub cache_hits: usize,
    /// Files that were (re-)lexed this run.
    pub cache_misses: usize,
}

/// Directories never scanned, wherever they appear.
const SKIP_DIRS: &[&str] = &["target", ".git", ".github", "results"];

/// Path suffixes excluded from the scan: the linter's own fixture corpus is
/// deliberately violation-dense.
const SKIP_SUFFIXES: &[&str] = &["crates/press-lint/tests/fixtures"];

/// Recursively collect workspace `.rs` files in deterministic (sorted) order.
pub fn collect_rs_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<PathBuf> = fs::read_dir(&dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        entries.sort();
        for path in entries {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if path.is_dir() {
                if SKIP_DIRS.contains(&name) {
                    continue;
                }
                let rel = rel_to(root, &path);
                if SKIP_SUFFIXES.iter().any(|s| rel == *s) {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

fn rel_to(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Run pass 1 on one file's source.
fn analyze_file(rel_path: &str, src: &str) -> FileAnalysis {
    let ctx = FileContext::from_rel_path(rel_path);
    let lexed = lexer::lex(src);
    let regions = test_regions(&lexed.toks);
    let summary = summarize(&lexed, &regions);
    FileAnalysis {
        hash: fnv1a64(src.as_bytes()),
        diags: checks::run_all(&ctx, &lexed.toks, &regions),
        suppressions: lexed.suppressions,
        summary,
    }
}

/// Analyze an in-memory set of (rel_path, source) files as one workspace:
/// pass 1 per file, pass 2 over the joint model, suppressions applied last.
/// This is the unit the fixture tests drive (single- and cross-file).
pub fn analyze_set(files: &[(&str, &str)]) -> Report {
    let analyses: Vec<(String, FileAnalysis)> = files
        .iter()
        .map(|(rel, src)| (rel.to_string(), analyze_file(rel, src)))
        .collect();
    assemble(analyses, &Options::default(), |_, _| 0).0
}

/// Analyze one source string as if it lived at `rel_path` in the workspace.
///
/// Returns surviving diagnostics plus the number suppressed — the
/// single-file compatibility wrapper around [`analyze_set`].
pub fn analyze_source(rel_path: &str, src: &str) -> (Vec<Diagnostic>, usize) {
    let report = analyze_set(&[(rel_path, src)]);
    (report.diagnostics, report.suppressed)
}

/// Pass 2 + suppression + sorting over completed pass-1 analyses. The
/// `line_key` closure maps (rel_path, line) to the baseline key for that
/// line. Returns the report and the analyses (for cache write-back).
fn assemble(
    analyses: Vec<(String, FileAnalysis)>,
    options: &Options,
    line_key: impl FnMut(&str, u32) -> u64,
) -> (Report, Vec<(String, FileAnalysis)>) {
    let mut report = Report {
        files: analyses.len(),
        ..Report::default()
    };

    // Pass 2: the model lints over the joint symbol model.
    let model = Model::new(
        analyses
            .iter()
            .map(|(rel, fa)| ModelFile {
                ctx: FileContext::from_rel_path(rel),
                summary: fa.summary.clone(),
            })
            .collect(),
    );
    let mut model_diags = Vec::new();
    modelcheck::run_model(&model, &mut model_diags);

    // Suppression filtering, uniform across local and model findings.
    let mut kept = Vec::new();
    for (rel, fa) in &analyses {
        let local = fa.diags.iter().cloned();
        let modeled = model_diags.iter().filter(|d| &d.file == rel).cloned();
        for d in local.chain(modeled) {
            let silenced = fa.suppressions.iter().any(|s| {
                (s.line == d.line || (!s.trailing && s.line + 1 == d.line))
                    && s.slugs.iter().any(|slug| slug == d.lint || slug == "all")
            });
            if silenced {
                report.suppressed += 1;
            } else {
                kept.push(d);
            }
        }
    }
    kept.sort_by(|a, b| (&a.file, a.line, a.col, a.lint).cmp(&(&b.file, b.line, b.col, b.lint)));

    // Baseline subtraction.
    if let Some(path) = &options.baseline {
        match Baseline::load(path) {
            Ok(bl) => {
                let r = bl.filter(kept, line_key);
                report.baselined = r.baselined;
                report.stale_baseline = r.stale;
                kept = r.kept;
            }
            Err(e) => {
                // A bad baseline must not silently pass the gate: surface it
                // as a synthetic error-severity diagnostic.
                kept.push(Diagnostic {
                    lint: "baseline",
                    severity: crate::diag::Severity::Error,
                    file: path.to_string_lossy().into_owned(),
                    line: 1,
                    col: 1,
                    message: format!("could not load baseline: {e}"),
                    help: "fix or regenerate with --write-baseline",
                });
            }
        }
    }

    report.diagnostics = kept;
    (report, analyses)
}

/// Analyze every `.rs` file under `root` with the given options.
pub fn analyze_workspace_with(root: &Path, options: &Options) -> io::Result<Report> {
    let paths = collect_rs_files(root)?;
    let mut sources: Vec<(String, String)> = Vec::with_capacity(paths.len());
    for path in &paths {
        sources.push((rel_to(root, path), fs::read_to_string(path)?));
    }

    let cache = options
        .cache_path
        .as_deref()
        .map(Cache::load)
        .unwrap_or_default();

    // Pass 1: cache hits resolve immediately; misses lex in parallel.
    let mut slots: Vec<Option<FileAnalysis>> = Vec::with_capacity(sources.len());
    let mut misses: Vec<usize> = Vec::new();
    let mut hits = 0usize;
    for (i, (rel, src)) in sources.iter().enumerate() {
        let hash = fnv1a64(src.as_bytes());
        match cache.entries.get(rel).filter(|fa| fa.hash == hash) {
            Some(fa) => {
                slots.push(Some(fa.clone()));
                hits += 1;
            }
            None => {
                slots.push(None);
                misses.push(i);
            }
        }
    }
    let miss_count = misses.len();
    run_pass1(&sources, &misses, &mut slots, options.jobs);

    // Every slot is filled by pass 1; re-lint serially as a panic-free
    // fallback should that invariant ever break.
    let analyses: Vec<(String, FileAnalysis)> = sources
        .iter()
        .zip(slots)
        .map(|((rel, src), fa)| {
            let fa = fa.unwrap_or_else(|| analyze_file(rel, src));
            (rel.clone(), fa)
        })
        .collect();

    // Baseline keys need line content; index sources by rel path.
    let by_rel: std::collections::BTreeMap<&str, &str> = sources
        .iter()
        .map(|(rel, src)| (rel.as_str(), src.as_str()))
        .collect();
    let key_fn = |file: &str, line: u32| -> u64 {
        by_rel
            .get(file)
            .and_then(|src| src.lines().nth(line.saturating_sub(1) as usize))
            .map(line_key)
            .unwrap_or(0)
    };

    let (mut report, analyses) = assemble(analyses, options, key_fn);
    report.cache_hits = hits;
    report.cache_misses = miss_count;

    if let Some(path) = &options.cache_path {
        let mut out = Cache::default();
        for (rel, fa) in analyses {
            out.entries.insert(rel, fa);
        }
        out.store(path);
    }
    Ok(report)
}

/// Lex-and-lint the missed files across worker threads. Work is dealt as
/// contiguous chunks of the (sorted) miss list and written back by index,
/// so the output is independent of scheduling.
fn run_pass1(
    sources: &[(String, String)],
    misses: &[usize],
    slots: &mut [Option<FileAnalysis>],
    jobs: usize,
) {
    if misses.is_empty() {
        return;
    }
    let jobs = if jobs == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        jobs
    }
    .min(misses.len());

    if jobs <= 1 {
        for &i in misses {
            let (rel, src) = &sources[i];
            slots[i] = Some(analyze_file(rel, src));
        }
        return;
    }

    let done: Mutex<Vec<(usize, FileAnalysis)>> = Mutex::new(Vec::with_capacity(misses.len()));
    let chunk = misses.len().div_ceil(jobs);
    std::thread::scope(|scope| {
        for part in misses.chunks(chunk) {
            let done = &done;
            scope.spawn(move || {
                let mut local = Vec::with_capacity(part.len());
                for &i in part {
                    let (rel, src) = &sources[i];
                    local.push((i, analyze_file(rel, src)));
                }
                // Poison recovery: workers only ever extend with complete
                // per-file results, so the list stays consistent even if a
                // sibling worker panicked mid-run.
                done.lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .extend(local);
            });
        }
    });
    let done = done
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    for (i, fa) in done {
        slots[i] = Some(fa);
    }
}

/// Analyze every `.rs` file under `root` with default options (no cache, no
/// baseline, auto parallelism) — the compatibility entry point.
pub fn analyze_workspace(root: &Path) -> io::Result<Report> {
    analyze_workspace_with(root, &Options::default())
}

/// Build the workspace symbol model for `root` (no linting) — the
/// `--emit seed-table` path.
pub fn build_model(root: &Path) -> io::Result<Model> {
    let mut files = Vec::new();
    for path in collect_rs_files(root)? {
        let rel = rel_to(root, &path);
        let src = fs::read_to_string(&path)?;
        let lexed = lexer::lex(&src);
        let regions = test_regions(&lexed.toks);
        files.push(ModelFile {
            ctx: FileContext::from_rel_path(&rel),
            summary: summarize(&lexed, &regions),
        });
    }
    Ok(Model::new(files))
}

/// Walk upward from `start` to the first directory whose `Cargo.toml`
/// declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut cur = Some(start.to_path_buf());
    while let Some(dir) = cur {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        cur = dir.parent().map(Path::to_path_buf);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suppression_silences_same_and_next_line() {
        let src = "\
// press-lint: allow(nondeterministic-iteration)
use std::collections::HashSet;
use std::collections::HashMap; // press-lint: allow(nondeterministic-iteration)
use std::collections::HashMap;
";
        let (diags, suppressed) = analyze_source("crates/press-core/src/x.rs", src);
        assert_eq!(suppressed, 2);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].line, 4);
    }

    #[test]
    fn allow_all_and_unrelated_slugs() {
        let src = "use std::collections::HashSet; // press-lint: allow(all)\n";
        let (diags, suppressed) = analyze_source("crates/press-core/src/x.rs", src);
        assert!(diags.is_empty());
        assert_eq!(suppressed, 1);

        let src = "use std::collections::HashSet; // press-lint: allow(float-ordering)\n";
        let (diags, suppressed) = analyze_source("crates/press-core/src/x.rs", src);
        assert_eq!(diags.len(), 1);
        assert_eq!(suppressed, 0);
    }

    #[test]
    fn model_lints_run_in_analyze_set_and_respect_allows() {
        // Cross-file: the bogus helper lives in a.rs, the finding in b.rs.
        // The helper's seedish name satisfies L3's local scan — only the
        // model lint can see that it never consumes its seed.
        const HELPER: (&str, &str) = (
            "crates/press-core/src/a.rs",
            "pub fn stream_for(seed: u64, k: u64) -> u64 { k }\n",
        );
        let report = analyze_set(&[
            HELPER,
            (
                "crates/press-core/src/b.rs",
                "fn run(base: u64) { let r = StdRng::seed_from_u64(stream_for(base, 2)); }\n",
            ),
        ]);
        assert_eq!(report.diagnostics.len(), 1, "{:?}", report.diagnostics);
        assert_eq!(report.diagnostics[0].lint, "seed-stream-provenance");
        assert_eq!(report.diagnostics[0].file, "crates/press-core/src/b.rs");

        // The same finding is suppressible like any local lint.
        let report = analyze_set(&[
            HELPER,
            (
                "crates/press-core/src/b.rs",
                "fn run(base: u64) {\n\
                 // press-lint: allow(seed-stream-provenance)\n\
                 let r = StdRng::seed_from_u64(stream_for(base, 2));\n\
                 }\n",
            ),
        ]);
        assert!(report.diagnostics.is_empty());
        assert_eq!(report.suppressed, 1);
    }

    #[test]
    fn diagnostics_sorted_across_files() {
        let report = analyze_set(&[
            (
                "crates/press-core/src/b.rs",
                "use std::collections::HashSet;\n",
            ),
            (
                "crates/press-core/src/a.rs",
                "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n",
            ),
        ]);
        assert_eq!(report.diagnostics.len(), 2);
        assert!(report.diagnostics[0].file < report.diagnostics[1].file);
    }
}
