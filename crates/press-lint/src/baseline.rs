//! The accepted-findings baseline.
//!
//! Turning a new lint on over a mature tree produces findings the team has
//! not triaged yet; failing CI on all of them at once just gets the lint
//! turned off. The baseline is the middle path: a checked-in file of
//! *accepted, existing* findings that the analyzer subtracts from its
//! report, so CI only fails on findings that are new relative to the
//! baseline. Entries are keyed by (lint, file, hash-of-trimmed-line, count)
//! — the line-content hash, not the line number, so findings keep matching
//! when unrelated edits shift the file, and the count caps how many
//! identical findings one entry can absorb (a baselined `.clone()` cannot
//! silently grow into five).
//!
//! Entries that no longer match anything are *stale*: the analyzer reports
//! them so the baseline only ever shrinks — the intended end state for this
//! workspace is the empty baseline the repo checks in (`press-lint.baseline`
//! holds the header and no entries; new findings are fixed or `allow`ed
//! with a written rationale instead of accumulating here).

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::Path;

use crate::diag::Diagnostic;

const HEADER: &str = "press-lint-baseline/v1";

/// One baseline entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    /// Lint slug.
    pub lint: String,
    /// Workspace-relative path.
    pub file: String,
    /// FNV-1a 64 of the trimmed source line the finding sits on.
    pub line_hash: u64,
    /// How many identical findings this entry absorbs.
    pub count: usize,
}

/// A loaded baseline.
#[derive(Debug, Default)]
pub struct Baseline {
    entries: BTreeMap<(String, String, u64), usize>,
}

impl Baseline {
    /// Number of distinct baselined (lint, file, line-hash) entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the baseline absorbs nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Parse a baseline file. Unlike the cache, a malformed baseline is an
    /// error: silently ignoring it would un-suppress (or worse, keep
    /// suppressing) findings without anyone noticing.
    pub fn load(path: &Path) -> io::Result<Baseline> {
        let text = fs::read_to_string(path)?;
        Baseline::parse(&text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    /// Parse baseline text.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let mut lines = text.lines();
        if lines.next().map(str::trim) != Some(HEADER) {
            return Err(format!("baseline must start with `{HEADER}`"));
        }
        let mut bl = Baseline::default();
        for (n, line) in lines.enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let fields: Vec<&str> = line.split('\t').collect();
            let [lint, file, hash, count] = fields[..] else {
                return Err(format!(
                    "baseline line {}: expected 4 tab-separated fields",
                    n + 2
                ));
            };
            let hash = u64::from_str_radix(hash, 16)
                .map_err(|_| format!("baseline line {}: bad line hash", n + 2))?;
            let count: usize = count
                .parse()
                .map_err(|_| format!("baseline line {}: bad count", n + 2))?;
            *bl.entries
                .entry((lint.to_string(), file.to_string(), hash))
                .or_insert(0) += count;
        }
        Ok(bl)
    }

    /// Split `diags` into (surviving, absorbed-count), consuming entry
    /// counts as findings match, and report entries left with unconsumed
    /// counts as stale. `line_key` maps (file, line) to the trimmed-line
    /// hash for the finding's anchor line.
    pub fn filter(
        &self,
        diags: Vec<Diagnostic>,
        mut line_key: impl FnMut(&str, u32) -> u64,
    ) -> FilterResult {
        let mut remaining = self.entries.clone();
        let mut kept = Vec::new();
        let mut baselined = 0usize;
        for d in diags {
            let key = (
                d.lint.to_string(),
                d.file.clone(),
                line_key(&d.file, d.line),
            );
            match remaining.get_mut(&key) {
                Some(count) if *count > 0 => {
                    *count -= 1;
                    baselined += 1;
                }
                _ => kept.push(d),
            }
        }
        let stale = remaining
            .into_iter()
            .filter(|&(_, count)| count > 0)
            .map(|((lint, file, line_hash), count)| Entry {
                lint,
                file,
                line_hash,
                count,
            })
            .collect();
        FilterResult {
            kept,
            baselined,
            stale,
        }
    }
}

/// Output of [`Baseline::filter`].
#[derive(Debug)]
pub struct FilterResult {
    /// Findings not absorbed by the baseline.
    pub kept: Vec<Diagnostic>,
    /// Number of findings absorbed.
    pub baselined: usize,
    /// Entries (with residual counts) that matched nothing — candidates for
    /// deletion.
    pub stale: Vec<Entry>,
}

/// Render a baseline that would absorb exactly `diags` (the
/// `--write-baseline` output). Deterministic: sorted by key.
pub fn render(diags: &[Diagnostic], mut line_key: impl FnMut(&str, u32) -> u64) -> String {
    let mut counts: BTreeMap<(String, String, u64), usize> = BTreeMap::new();
    for d in diags {
        *counts
            .entry((
                d.lint.to_string(),
                d.file.clone(),
                line_key(&d.file, d.line),
            ))
            .or_insert(0) += 1;
    }
    let mut out = String::from(HEADER);
    out.push('\n');
    for ((lint, file, hash), count) in counts {
        out.push_str(&format!("{lint}\t{file}\t{hash:016x}\t{count}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Severity;

    fn d(lint: &'static str, file: &str, line: u32) -> Diagnostic {
        Diagnostic {
            lint,
            severity: Severity::Warning,
            file: file.into(),
            line,
            col: 1,
            message: String::new(),
            help: "",
        }
    }

    #[test]
    fn filter_absorbs_up_to_count_and_reports_stale() {
        let diags = vec![
            d("panic-freedom", "src/a.rs", 3),
            d("panic-freedom", "src/a.rs", 9), // same trimmed content as line 3
            d("float-ordering", "src/b.rs", 1),
        ];
        // Key every a.rs line to the same hash; entry count 1 absorbs only one.
        let text = format!(
            "{HEADER}\npanic-freedom\tsrc/a.rs\t{:016x}\t1\nkernel-allocation\tsrc/z.rs\t00ff\t2\n",
            42u64
        );
        let bl = Baseline::parse(&text).unwrap();
        let r = bl.filter(diags, |file, _| if file == "src/a.rs" { 42 } else { 7 });
        assert_eq!(r.baselined, 1);
        assert_eq!(r.kept.len(), 2);
        assert_eq!(r.stale.len(), 1);
        assert_eq!(r.stale[0].file, "src/z.rs");
        assert_eq!(r.stale[0].count, 2);
    }

    #[test]
    fn render_then_parse_absorbs_everything() {
        let diags = vec![
            d("panic-freedom", "src/a.rs", 3),
            d("panic-freedom", "src/a.rs", 3),
            d("float-ordering", "src/b.rs", 1),
        ];
        let key = |file: &str, line: u32| crate::hash::fnv1a64(format!("{file}:{line}").as_bytes());
        let text = render(&diags, key);
        let bl = Baseline::parse(&text).unwrap();
        let r = bl.filter(diags, key);
        assert_eq!(r.baselined, 3);
        assert!(r.kept.is_empty());
        assert!(r.stale.is_empty());
    }

    #[test]
    fn malformed_baseline_is_an_error() {
        assert!(Baseline::parse("nonsense\n").is_err());
        assert!(Baseline::parse(&format!("{HEADER}\nonly\ttwo\n")).is_err());
        // Comments and blank lines are fine.
        assert!(Baseline::parse(&format!("{HEADER}\n# note\n\n")).is_ok());
    }
}
