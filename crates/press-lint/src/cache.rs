//! The incremental result cache.
//!
//! A cold run lexes every file in the workspace; that is the expensive pass.
//! But between two lint runs almost nothing changes, so the analyzer caches
//! the complete per-file pass-1 output — raw local diagnostics, suppression
//! comments, and the [`crate::model::FileSummary`] the workspace model is
//! rebuilt from — keyed by an FNV-1a hash of the file's bytes. A warm run
//! re-reads file contents (cheap, and required anyway to compute baseline
//! line keys), matches hashes, and only re-lexes files whose bytes changed.
//! Pass 2 (the model lints) always re-runs over the rebuilt model: it is
//! microseconds of pure lookup work, and re-running it is what makes a
//! cached file still able to *receive* new cross-file findings when one of
//! its callees changed.
//!
//! The cache is a plain tab-separated text file (default
//! `target/press-lint.cache`), versioned by a header that folds in the lint
//! catalog: adding or changing a lint invalidates every entry at once. A
//! missing, unreadable, or stale-format cache degrades to a cold run —
//! the cache can never change *what* is reported, only how fast.

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::Path;

use crate::catalog;
use crate::checks::lint_help;
use crate::diag::Diagnostic;
use crate::lexer::Suppression;
use crate::model::{AllocSite, CallSite, FileSummary, FnInfo, SeedCall};

/// One file's cached pass-1 analysis.
#[derive(Debug, Clone, Default)]
pub struct FileAnalysis {
    /// FNV-1a 64 of the file bytes this analysis was computed from.
    pub hash: u64,
    /// Raw local (L1–L6, L9) findings, before suppression filtering.
    pub diags: Vec<Diagnostic>,
    /// Suppression comments found in the file.
    pub suppressions: Vec<Suppression>,
    /// The pass-1 symbol summary.
    pub summary: FileSummary,
}

/// The whole cache: rel_path → analysis.
#[derive(Debug, Default)]
pub struct Cache {
    /// Entries keyed by workspace-relative path.
    pub entries: BTreeMap<String, FileAnalysis>,
}

/// Format version plus a fingerprint of the lint catalog: any catalog change
/// (new lint, renamed slug) makes old entries unusable, so it participates
/// in the header and stale headers drop the whole cache.
fn header() -> String {
    let slugs: Vec<&str> = catalog::ALL.iter().map(|l| l.slug).collect();
    format!("press-lint-cache/v2 {}", slugs.join(","))
}

impl Cache {
    /// Load a cache file. Any problem — missing file, bad header, torn
    /// write — returns an empty cache; correctness never depends on it.
    pub fn load(path: &Path) -> Cache {
        let Ok(text) = fs::read_to_string(path) else {
            return Cache::default();
        };
        let mut lines = text.lines();
        if lines.next() != Some(header().as_str()) {
            return Cache::default();
        }
        let mut cache = Cache::default();
        let mut cur: Option<(String, FileAnalysis)> = None;
        for line in lines {
            let mut f = line.split('\t');
            let Some(tag) = f.next() else { continue };
            let fields: Vec<&str> = f.collect();
            match tag {
                "file" => {
                    if let Some((path, fa)) = cur.take() {
                        cache.entries.insert(path, fa);
                    }
                    let [path, hash] = fields[..] else {
                        return Cache::default();
                    };
                    let Ok(hash) = u64::from_str_radix(hash, 16) else {
                        return Cache::default();
                    };
                    cur = Some((
                        unescape(path),
                        FileAnalysis {
                            hash,
                            ..FileAnalysis::default()
                        },
                    ));
                }
                _ => {
                    let Some((path, fa)) = cur.as_mut() else {
                        return Cache::default();
                    };
                    if !parse_record(tag, &fields, path, fa) {
                        return Cache::default();
                    }
                }
            }
        }
        if let Some((path, fa)) = cur.take() {
            cache.entries.insert(path, fa);
        }
        cache
    }

    /// Write the cache. Failures are ignored (e.g. read-only checkout): the
    /// next run is merely cold.
    pub fn store(&self, path: &Path) {
        let mut out = String::new();
        out.push_str(&header());
        out.push('\n');
        for (rel, fa) in &self.entries {
            render_file(&mut out, rel, fa);
        }
        if let Some(dir) = path.parent() {
            let _ = fs::create_dir_all(dir);
        }
        let _ = write_atomic(path, &out);
    }
}

/// Write via a temp file + rename so a crashed run can't leave a torn cache.
fn write_atomic(path: &Path, contents: &str) -> io::Result<()> {
    let tmp = path.with_extension("cache.tmp");
    fs::write(&tmp, contents)?;
    fs::rename(&tmp, path)
}

fn render_file(out: &mut String, rel: &str, fa: &FileAnalysis) {
    use std::fmt::Write;
    let _ = writeln!(out, "file\t{}\t{:016x}", escape(rel), fa.hash);
    for d in &fa.diags {
        let _ = writeln!(
            out,
            "diag\t{}\t{}\t{}\t{}",
            d.lint,
            d.line,
            d.col,
            escape(&d.message)
        );
    }
    for s in &fa.suppressions {
        let _ = writeln!(
            out,
            "supp\t{}\t{}\t{}",
            s.line,
            s.trailing as u8,
            s.slugs.join(",")
        );
    }
    for func in &fa.summary.fns {
        let _ = writeln!(
            out,
            "fn\t{}\t{}\t{}\t{}{}{}{}",
            func.name,
            func.line,
            func.col,
            func.in_test as u8,
            func.kernel as u8,
            func.seed_param as u8,
            func.uses_seed_param as u8
        );
        for c in &func.calls {
            let _ = writeln!(out, "call\t{}\t{}\t{}", c.name, c.line, c.col);
        }
        for a in &func.allocs {
            let _ = writeln!(out, "alloc\t{}\t{}\t{}", escape(&a.what), a.line, a.col);
        }
    }
    for sc in &fa.summary.seed_calls {
        let _ = writeln!(
            out,
            "seed\t{}\t{}\t{}\t{}\t{}\t{}",
            sc.line,
            sc.col,
            sc.in_test as u8,
            sc.derives_locally as u8,
            escape(&sc.enclosing),
            escape(&sc.stream_expr)
        );
        for c in &sc.arg_calls {
            let _ = writeln!(out, "seedcall\t{}\t{}\t{}", c.name, c.line, c.col);
        }
    }
    for c in &fa.summary.consts {
        let _ = writeln!(out, "const\t{}", c);
    }
}

/// Parse one non-`file` record into the current entry. Returns false on any
/// malformed field (which drops the whole cache).
fn parse_record(tag: &str, fields: &[&str], rel_path: &str, fa: &mut FileAnalysis) -> bool {
    let int = |s: &str| s.parse::<u32>().ok();
    let flag = |s: u8| s == b'1';
    match tag {
        "diag" => {
            let [slug, line, col, message] = fields[..] else {
                return false;
            };
            let Some(lint) = catalog::by_slug(slug) else {
                return false;
            };
            let (Some(line), Some(col)) = (int(line), int(col)) else {
                return false;
            };
            fa.diags.push(Diagnostic {
                lint: lint.slug,
                severity: lint.severity,
                file: rel_path.to_string(),
                line,
                col,
                message: unescape(message),
                help: lint_help(lint.slug),
            });
            true
        }
        "supp" => {
            let [line, trailing, slugs] = fields[..] else {
                return false;
            };
            let Some(line) = int(line) else { return false };
            fa.suppressions.push(Suppression {
                line,
                trailing: trailing == "1",
                slugs: if slugs.is_empty() {
                    Vec::new()
                } else {
                    slugs.split(',').map(str::to_string).collect()
                },
            });
            true
        }
        "fn" => {
            let [name, line, col, bits] = fields[..] else {
                return false;
            };
            let (Some(line), Some(col)) = (int(line), int(col)) else {
                return false;
            };
            let b = bits.as_bytes();
            if b.len() != 4 {
                return false;
            }
            fa.summary.fns.push(FnInfo {
                name: name.to_string(),
                line,
                col,
                in_test: flag(b[0]),
                kernel: flag(b[1]),
                seed_param: flag(b[2]),
                uses_seed_param: flag(b[3]),
                calls: Vec::new(),
                allocs: Vec::new(),
            });
            true
        }
        "call" | "alloc" => {
            let [name, line, col] = fields[..] else {
                return false;
            };
            let (Some(line), Some(col)) = (int(line), int(col)) else {
                return false;
            };
            let Some(func) = fa.summary.fns.last_mut() else {
                return false;
            };
            if tag == "call" {
                func.calls.push(CallSite {
                    name: name.to_string(),
                    line,
                    col,
                });
            } else {
                func.allocs.push(AllocSite {
                    what: unescape(name),
                    line,
                    col,
                });
            }
            true
        }
        "seed" => {
            let [line, col, in_test, derives, enclosing, expr] = fields[..] else {
                return false;
            };
            let (Some(line), Some(col)) = (int(line), int(col)) else {
                return false;
            };
            fa.summary.seed_calls.push(SeedCall {
                line,
                col,
                in_test: in_test == "1",
                derives_locally: derives == "1",
                enclosing: unescape(enclosing),
                stream_expr: unescape(expr),
                arg_calls: Vec::new(),
            });
            true
        }
        "seedcall" => {
            let [name, line, col] = fields[..] else {
                return false;
            };
            let (Some(line), Some(col)) = (int(line), int(col)) else {
                return false;
            };
            let Some(sc) = fa.summary.seed_calls.last_mut() else {
                return false;
            };
            sc.arg_calls.push(CallSite {
                name: name.to_string(),
                line,
                col,
            });
            true
        }
        "const" => {
            let [name] = fields[..] else { return false };
            fa.summary.consts.push(name.to_string());
            true
        }
        _ => false,
    }
}

/// Escape tabs/newlines/backslashes so free text survives the record format.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out
}

fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('\\') => out.push('\\'),
            Some(other) => out.push(other),
            None => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{test_regions, FileContext};
    use crate::lexer::lex;
    use crate::model::summarize;

    fn analyze(rel: &str, src: &str) -> FileAnalysis {
        let ctx = FileContext::from_rel_path(rel);
        let lexed = lex(src);
        let regions = test_regions(&lexed.toks);
        let summary = summarize(&lexed, &regions);
        FileAnalysis {
            hash: crate::hash::fnv1a64(src.as_bytes()),
            diags: crate::checks::run_all(&ctx, &lexed.toks, &regions),
            suppressions: lexed.suppressions,
            summary,
        }
    }

    #[test]
    fn round_trips_a_real_analysis() {
        let src = "\
// press-lint: allow(nondeterministic-iteration)
use std::collections::HashSet;
pub const DEFAULT_SEED: u64 = 7;
fn synth_into(out: &mut [f64]) { let v = vec![0.0]; out[0] = v[0]; helper(out); }
fn helper(seed: u64) -> u64 { seed.wrapping_add(1) }
fn run(seed: u64) { let r = StdRng::seed_from_u64(derive_stream_seed(seed, 1, 0)); }
";
        let fa = analyze("crates/press-core/src/x.rs", src);
        assert!(!fa.diags.is_empty());
        assert!(!fa.summary.fns.is_empty());
        assert_eq!(fa.summary.seed_calls.len(), 1);

        let dir = std::env::temp_dir().join("press-lint-cache-test-rt");
        let path = dir.join("c.cache");
        let mut cache = Cache::default();
        cache
            .entries
            .insert("crates/press-core/src/x.rs".into(), fa.clone());
        cache.store(&path);
        let loaded = Cache::load(&path);
        let got = &loaded.entries["crates/press-core/src/x.rs"];

        assert_eq!(got.hash, fa.hash);
        assert_eq!(got.summary, fa.summary);
        assert_eq!(got.diags.len(), fa.diags.len());
        for (a, b) in got.diags.iter().zip(&fa.diags) {
            assert_eq!(
                (a.lint, a.line, a.col, &a.message, a.severity, a.help),
                (b.lint, b.line, b.col, &b.message, b.severity, b.help)
            );
        }
        assert_eq!(got.suppressions.len(), fa.suppressions.len());
        assert_eq!(got.suppressions[0].slugs, fa.suppressions[0].slugs);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_or_stale_cache_is_empty() {
        let missing = Path::new("/definitely/not/here/press-lint.cache");
        assert!(Cache::load(missing).entries.is_empty());

        let dir = std::env::temp_dir().join("press-lint-cache-test-stale");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("c.cache");
        std::fs::write(&path, "press-lint-cache/v1 old\nfile\tx\t00\n").unwrap();
        assert!(Cache::load(&path).entries.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn escaping_survives_hostile_text() {
        assert_eq!(unescape(&escape("a\tb\nc\\d")), "a\tb\nc\\d");
    }
}
