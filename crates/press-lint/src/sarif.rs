//! SARIF 2.1.0 output.
//!
//! SARIF (Static Analysis Results Interchange Format) is the format GitHub
//! code scanning ingests: upload the file from CI and findings appear as
//! annotations on the PR diff, with the lint catalog rendered as a rule
//! index. Only the small stable core of the spec is emitted — one run, one
//! tool, rules from the catalog, one result per diagnostic with a physical
//! location — which is exactly the subset every SARIF consumer understands.

use crate::catalog;
use crate::diag::{json_str, Diagnostic, Severity};

/// Render a full SARIF 2.1.0 log for `diags`.
///
/// Deterministic: rule order is catalog order, result order is the caller's
/// (already (file, line, col)-sorted) diagnostic order.
pub fn render(diags: &[Diagnostic]) -> String {
    let mut out = String::with_capacity(4096 + diags.len() * 256);
    out.push_str("{\"version\":\"2.1.0\",");
    out.push_str(
        "\"$schema\":\"https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json\",",
    );
    out.push_str("\"runs\":[{\"tool\":{\"driver\":{\"name\":\"press-lint\",");
    out.push_str("\"informationUri\":\"DESIGN.md\",\"rules\":[");
    for (i, lint) in catalog::ALL.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"id\":{},\"shortDescription\":{{\"text\":{}}},\"defaultConfiguration\":{{\"level\":{}}}}}",
            json_str(lint.slug),
            json_str(lint.summary),
            json_str(level(lint.severity)),
        ));
    }
    out.push_str("]}},\"results\":[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"ruleId\":{},\"level\":{},\"message\":{{\"text\":{}}},\
             \"locations\":[{{\"physicalLocation\":{{\"artifactLocation\":{{\"uri\":{}}},\
             \"region\":{{\"startLine\":{},\"startColumn\":{}}}}}}}]}}",
            json_str(d.lint),
            json_str(level(d.severity)),
            json_str(&format!("{} (help: {})", d.message, d.help)),
            json_str(&d.file),
            d.line,
            d.col,
        ));
    }
    out.push_str("]}]}");
    out
}

fn level(s: Severity) -> &'static str {
    match s {
        Severity::Warning => "warning",
        Severity::Error => "error",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_and_escaping() {
        let diags = vec![Diagnostic {
            lint: "panic-freedom",
            severity: Severity::Warning,
            file: "crates/press-core/src/space.rs".into(),
            line: 12,
            col: 9,
            message: "`panic!` aborts \"everything\"".into(),
            help: "return a Result",
        }];
        let s = render(&diags);
        assert!(s.starts_with("{\"version\":\"2.1.0\""));
        assert!(s.ends_with("]}]}"));
        assert!(s.contains("\"ruleId\":\"panic-freedom\""));
        assert!(s.contains("\"startLine\":12"));
        assert!(s.contains("\\\"everything\\\""));
        // Every catalog rule is in the rule index.
        for lint in catalog::ALL {
            assert!(s.contains(&format!("\"id\":\"{}\"", lint.slug)));
        }
        // Balanced braces/brackets (cheap well-formedness check).
        let bal = |open: char, close: char| {
            s.chars().filter(|&c| c == open).count() == s.chars().filter(|&c| c == close).count()
        };
        assert!(bal('{', '}') && bal('[', ']'));
    }

    #[test]
    fn empty_report_is_still_a_valid_log() {
        let s = render(&[]);
        assert!(s.contains("\"results\":[]"));
    }
}
