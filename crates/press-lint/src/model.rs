//! Pass 1: the workspace symbol model.
//!
//! The original analyzer was a per-file token scanner, which is enough for
//! lints whose evidence sits on one line (`HashSet`, `thread_rng`). The
//! invariants that matter most now are *cross-file*: a seed stream derived
//! in `press-core/src/space.rs` is consumed in `joint.rs`, and the
//! allocation-freedom of `synthesize_into` depends on everything it calls.
//! This module lifts the lexer output into a small symbol model — per-file
//! `fn` items with parameter names, call edges, allocation sites and
//! seed-derivation facts — that pass 2 (the model lints, L7/L8) walks.
//!
//! The model is deliberately name-resolved, not type-resolved: a call edge
//! `caller -> callee` exists when `callee(` appears in `caller`'s body and
//! exactly one non-test `fn callee` exists in the workspace. Ambiguous
//! names (every `new`, `len`, ...) resolve to nothing and contribute no
//! edges — the walk prefers precision over recall, which is the right
//! trade for a zero-dependency lexer-level tool: every edge it does follow
//! is real.

use crate::context::{FileContext, TestRegions};
use crate::lexer::{Lexed, Tok, TokKind};

/// One call site inside a `fn` body: `name(..)`, `recv.name(..)` or
/// `path::name(..)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallSite {
    /// Callee identifier.
    pub name: String,
    /// 1-based line of the callee token.
    pub line: u32,
    /// 1-based column of the callee token.
    pub col: u32,
}

/// One direct allocation inside a `fn` body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllocSite {
    /// What allocated, e.g. `vec!`, `Vec::new`, `.collect`, `.clone`.
    pub what: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

/// One `seed_from_u64(..)` construction site, with the provenance facts
/// pass 2 and the seed-table emitter need.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeedCall {
    /// 1-based line of the `seed_from_u64` token.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// True when the site sits inside a `#[cfg(test)]`/`#[test]` region.
    pub in_test: bool,
    /// Name of the enclosing `fn` (empty at module scope).
    pub enclosing: String,
    /// The argument expression, normalized for the seed table (local
    /// variables substituted one `let` level deep, `self.` stripped).
    pub stream_expr: String,
    /// Workspace functions invoked inside the (substituted) argument.
    pub arg_calls: Vec<CallSite>,
    /// True when the (substituted) argument references a seed/stream-named
    /// identifier — the local fact L3 already checks.
    pub derives_locally: bool,
}

/// One `fn` item and the facts the model lints need about it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnInfo {
    /// Function name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// 1-based column of the `fn` keyword.
    pub col: u32,
    /// True when the item sits inside a test region.
    pub in_test: bool,
    /// True when the function is a hot kernel: name matches the
    /// `*_into`/`*_scratch`/`*_batched` idiom or a `// press-lint: kernel`
    /// marker precedes it.
    pub kernel: bool,
    /// True when a parameter is seed/stream-named.
    pub seed_param: bool,
    /// True when the body references that seed/stream parameter.
    pub uses_seed_param: bool,
    /// Call sites in the body, in source order.
    pub calls: Vec<CallSite>,
    /// Direct allocation sites in the body, in source order.
    pub allocs: Vec<AllocSite>,
}

/// Everything the model keeps about one file. This is what the incremental
/// cache persists per content hash: rebuilding the workspace model from
/// summaries costs microseconds, so a warm re-lint skips the lexer (the
/// expensive pass) for every unchanged file.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FileSummary {
    /// `fn` items in source order.
    pub fns: Vec<FnInfo>,
    /// `seed_from_u64` sites in source order.
    pub seed_calls: Vec<SeedCall>,
    /// `const`/`static` names defined at any scope.
    pub consts: Vec<String>,
}

const KERNEL_SUFFIXES: &[&str] = &["_into", "_scratch", "_batched"];

/// Keywords that look like calls when followed by `(`.
fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "fn" | "if"
            | "while"
            | "for"
            | "match"
            | "loop"
            | "return"
            | "let"
            | "in"
            | "as"
            | "mut"
            | "ref"
            | "move"
            | "unsafe"
            | "where"
            | "impl"
            | "dyn"
            | "pub"
            | "use"
            | "mod"
            | "struct"
            | "enum"
            | "trait"
            | "type"
            | "const"
            | "static"
            | "else"
            | "break"
            | "continue"
    )
}

fn is_seedish(name: &str) -> bool {
    let lower = name.to_lowercase();
    lower.contains("seed") || lower.contains("stream")
}

/// Find the index of the token matching an opening delimiter at `open`.
fn matching(toks: &[Tok], open: usize, open_s: &str, close_s: &str) -> Option<usize> {
    let mut depth = 0usize;
    for (k, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct(open_s) {
            depth += 1;
        } else if t.is_punct(close_s) {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

/// Summarize one lexed file into the model facts. `regions` marks test
/// code; `lexed.kernel_markers` promotes marked fns into the kernel set.
pub fn summarize(lexed: &Lexed, regions: &TestRegions) -> FileSummary {
    let toks = &lexed.toks;
    let mut summary = FileSummary::default();

    // --- fn items: name, params, body range --------------------------------
    // Collected first so call/alloc/seed sites can be attributed to their
    // innermost enclosing fn by body token range.
    struct RawFn {
        info: FnInfo,
        body: (usize, usize), // half-open token range
        params: Vec<String>,
    }
    let mut raw: Vec<RawFn> = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if !toks[i].is_ident("fn") {
            // `const NAME` / `static NAME` definitions for the seed table.
            if (toks[i].is_ident("const") || toks[i].is_ident("static"))
                && toks
                    .get(i + 1)
                    .is_some_and(|n| n.kind == TokKind::Ident && n.text != "fn")
            {
                summary.consts.push(toks[i + 1].text.clone());
            }
            i += 1;
            continue;
        }
        let Some(name_tok) = toks.get(i + 1).filter(|n| n.kind == TokKind::Ident) else {
            i += 1;
            continue;
        };
        // Skip generics between the name and the parameter list.
        let mut j = i + 2;
        if toks.get(j).is_some_and(|t| t.is_punct("<")) {
            let mut depth = 0i64;
            while j < toks.len() {
                match toks[j].text.as_str() {
                    "<" | "<<" if toks[j].kind == TokKind::Punct => {
                        depth += toks[j].text.len() as i64;
                    }
                    ">" | ">>" if toks[j].kind == TokKind::Punct => {
                        depth -= toks[j].text.len() as i64;
                    }
                    "->" | "=>" => {}
                    _ => {}
                }
                j += 1;
                if depth <= 0 {
                    break;
                }
            }
        }
        let Some(popen) = toks.get(j).filter(|t| t.is_punct("(")).map(|_| j) else {
            i += 1;
            continue;
        };
        let Some(pclose) = matching(toks, popen, "(", ")") else {
            i += 1;
            continue;
        };
        // Parameter names: idents at paren depth 1 immediately followed by
        // `:` (skips pattern internals and nested fn-pointer types).
        let mut params = Vec::new();
        let mut depth = 0usize;
        for k in popen..=pclose {
            if toks[k].is_punct("(") {
                depth += 1;
            } else if toks[k].is_punct(")") {
                depth -= 1;
            } else if depth == 1
                && toks[k].kind == TokKind::Ident
                && toks.get(k + 1).is_some_and(|n| n.is_punct(":"))
            {
                params.push(toks[k].text.clone());
            }
        }
        // Body: the first `{` before a `;` at brace depth 0.
        let mut k = pclose + 1;
        let mut body = None;
        while k < toks.len() {
            if toks[k].is_punct("{") {
                let close = matching(toks, k, "{", "}").unwrap_or(toks.len());
                body = Some((k, close + 1));
                break;
            }
            if toks[k].is_punct(";") {
                break; // trait method declaration — no body
            }
            k += 1;
        }
        let kernel_named = KERNEL_SUFFIXES
            .iter()
            .any(|s| name_tok.text.ends_with(s) && name_tok.text.len() > s.len());
        let fn_line = toks[i].line;
        let kernel_marked = lexed
            .kernel_markers
            .iter()
            .any(|&m| m == fn_line || (m < fn_line && nearest_fn_after(toks, m) == Some(i)));
        raw.push(RawFn {
            info: FnInfo {
                name: name_tok.text.clone(),
                line: fn_line,
                col: toks[i].col,
                in_test: regions.contains(i),
                kernel: kernel_named || kernel_marked,
                seed_param: params.iter().any(|p| is_seedish(p)),
                uses_seed_param: false,
                calls: Vec::new(),
                allocs: Vec::new(),
            },
            body: body.unwrap_or((pclose + 1, pclose + 1)),
            params,
        });
        i = popen;
    }

    // Innermost enclosing fn for a token index (body ranges copied out so
    // the lookup doesn't hold a borrow of `raw` while we mutate it).
    let bodies: Vec<(usize, usize)> = raw.iter().map(|f| f.body).collect();
    let enclosing = |idx: usize| -> Option<usize> {
        let mut best: Option<usize> = None;
        for (fi, &(b0, b1)) in bodies.iter().enumerate() {
            if b0 < idx && idx < b1 {
                let better = match best {
                    None => true,
                    Some(b) => (b1 - b0) < (bodies[b].1 - bodies[b].0),
                };
                if better {
                    best = Some(fi);
                }
            }
        }
        best
    };

    // --- body facts: calls, allocations, seed-param usage ------------------
    for idx in 0..toks.len() {
        let t = &toks[idx];
        if t.kind != TokKind::Ident {
            continue;
        }
        let Some(fi) = enclosing(idx) else { continue };
        // Seed-parameter usage.
        if raw[fi].info.seed_param && raw[fi].params.contains(&t.text) && is_seedish(&t.text) {
            raw[fi].info.uses_seed_param = true;
        }
        // Allocation sites.
        if let Some(what) = alloc_at(toks, idx) {
            raw[fi].info.allocs.push(AllocSite {
                what,
                line: t.line,
                col: t.col,
            });
            continue;
        }
        // Call sites: `name(` that is not a definition, keyword or macro.
        if toks.get(idx + 1).is_some_and(|n| n.is_punct("("))
            && !is_keyword(&t.text)
            && !(idx >= 1 && toks[idx - 1].is_ident("fn"))
        {
            raw[fi].info.calls.push(CallSite {
                name: t.text.clone(),
                line: t.line,
                col: t.col,
            });
        }
    }

    // --- seed_from_u64 sites ----------------------------------------------
    for idx in 0..toks.len() {
        if !toks[idx].is_ident("seed_from_u64") {
            continue;
        }
        let Some(close) = toks
            .get(idx + 1)
            .filter(|n| n.is_punct("("))
            .and_then(|_| matching(toks, idx + 1, "(", ")"))
        else {
            continue;
        };
        let fi = enclosing(idx);
        let args: Vec<Tok> = toks[idx + 2..close].to_vec();
        // One level of local dataflow: a lone-identifier argument is
        // substituted by its `let <ident> = <expr>;` initializer from the
        // enclosing body, so `seed_from_u64(stream)` resolves to the
        // expression that actually built the stream.
        let args = if let (Some(fi), [only]) = (fi, &args[..]) {
            if only.kind == TokKind::Ident {
                substitute_local(toks, raw[fi].body, idx, &only.text).unwrap_or(args)
            } else {
                args
            }
        } else {
            args
        };
        let mut arg_calls = Vec::new();
        for (k, a) in args.iter().enumerate() {
            if a.kind == TokKind::Ident
                && args.get(k + 1).is_some_and(|n| n.is_punct("("))
                && !is_keyword(&a.text)
            {
                arg_calls.push(CallSite {
                    name: a.text.clone(),
                    line: a.line,
                    col: a.col,
                });
            }
        }
        let derives_locally = args
            .iter()
            .any(|a| a.kind == TokKind::Ident && is_seedish(&a.text));
        summary.seed_calls.push(SeedCall {
            line: toks[idx].line,
            col: toks[idx].col,
            in_test: regions.contains(idx),
            enclosing: fi.map(|f| raw[f].info.name.clone()).unwrap_or_default(),
            stream_expr: render_expr(&args),
            arg_calls,
            derives_locally,
        });
    }

    summary.fns = raw.into_iter().map(|r| r.info).collect();
    summary
}

/// Token index of the first `fn` keyword on a line strictly after `line`,
/// with nothing but attributes/other fns between — used to attach
/// standalone `// press-lint: kernel` markers. Returns the index of the
/// nearest following `fn` token.
fn nearest_fn_after(toks: &[Tok], line: u32) -> Option<usize> {
    toks.iter().position(|t| t.line > line && t.is_ident("fn"))
}

/// Find `let <name> = <expr> ;` (or `let mut <name> = ...`) inside `body`
/// before token `before`, returning the initializer tokens.
fn substitute_local(
    toks: &[Tok],
    body: (usize, usize),
    before: usize,
    name: &str,
) -> Option<Vec<Tok>> {
    let mut found: Option<Vec<Tok>> = None;
    let mut k = body.0;
    while k < before.min(body.1) {
        if toks[k].is_ident("let") {
            let mut n = k + 1;
            if toks.get(n).is_some_and(|t| t.is_ident("mut")) {
                n += 1;
            }
            if toks.get(n).is_some_and(|t| t.is_ident(name))
                && toks.get(n + 1).is_some_and(|t| t.is_punct("="))
            {
                // Initializer runs to the `;` at delimiter depth 0.
                let start = n + 2;
                let mut depth = 0i64;
                let mut end = start;
                while end < toks.len() {
                    let t = &toks[end];
                    if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
                        depth += 1;
                    } else if t.is_punct(")") || t.is_punct("]") || t.is_punct("}") {
                        depth -= 1;
                    } else if t.is_punct(";") && depth == 0 {
                        break;
                    }
                    end += 1;
                }
                found = Some(toks[start..end].to_vec()); // last assignment before use wins
            }
        }
        k += 1;
    }
    found
}

/// Render an argument token slice as a normalized expression string for
/// the seed table: `self.` receivers stripped, canonical spacing.
pub fn render_expr(args: &[Tok]) -> String {
    let mut out = String::new();
    let mut toks: Vec<&Tok> = args.iter().collect();
    // Strip a leading `self .`.
    if toks.len() >= 2 && toks[0].is_ident("self") && toks[1].is_punct(".") {
        toks.drain(0..2);
    }
    let operator = |s: &str| matches!(s, "+" | "-" | "*" | "/" | "^" | "%" | "<<" | ">>" | "as");
    for (k, t) in toks.iter().enumerate() {
        let text = t.text.as_str();
        let prev = if k > 0 { toks[k - 1].text.as_str() } else { "" };
        let prev2 = if k > 1 { toks[k - 2].text.as_str() } else { "" };
        // A `*` at expression start or after a delimiter/operator is a
        // deref, not a multiply: render it tight against its operand.
        let prev_is_deref =
            prev == "*" && (prev2.is_empty() || matches!(prev2, "(" | ",") || operator(prev2));
        let space = match text {
            "," => false,
            "(" | ")" | "." | "::" | "!" => false,
            _ if prev.is_empty() => false,
            _ => !matches!(prev, "(" | "." | "::" | "!" | "&" | "-") && !prev_is_deref,
        };
        if space && (prev == "," || operator(text) || operator(prev)) {
            out.push(' ');
        }
        out.push_str(text);
    }
    out
}

/// Allocation classification for token `idx`; returns the display name.
fn alloc_at(toks: &[Tok], idx: usize) -> Option<String> {
    let t = &toks[idx];
    let next_is = |s: &str| toks.get(idx + 1).is_some_and(|n| n.is_punct(s));
    let prev_is = |s: &str| idx >= 1 && toks[idx - 1].is_punct(s);
    match t.text.as_str() {
        // Macros that allocate.
        "vec" | "format" if next_is("!") => Some(format!("{}!", t.text)),
        // Constructor paths.
        "new" | "with_capacity" | "from"
            if prev_is("::")
                && idx >= 2
                && matches!(
                    toks[idx - 2].text.as_str(),
                    "Vec" | "Box" | "String" | "VecDeque"
                ) =>
        {
            Some(format!("{}::{}", toks[idx - 2].text, t.text))
        }
        // Allocating method calls.
        "collect" | "to_vec" | "to_owned" | "clone"
            if prev_is(".") && (next_is("(") || next_is("::")) =>
        {
            Some(format!(".{}", t.text))
        }
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// The workspace model (pass 2 input)
// ---------------------------------------------------------------------------

/// One file's summary plus its lint context.
#[derive(Debug, Clone)]
pub struct ModelFile {
    /// Lint context (crate, bench/test classification).
    pub ctx: FileContext,
    /// The pass-1 facts.
    pub summary: FileSummary,
}

/// The whole-workspace symbol model.
#[derive(Debug, Default)]
pub struct Model {
    /// Files in deterministic (path-sorted) order.
    pub files: Vec<ModelFile>,
}

/// A resolved function: (file index, fn index).
pub type FnRef = (usize, usize);

impl Model {
    /// Build the model from per-file summaries.
    pub fn new(files: Vec<ModelFile>) -> Model {
        Model { files }
    }

    /// Resolve a callee name to the unique non-test library `fn` with that
    /// name, if exactly one exists. Definitions in test files and in the
    /// bench crate never resolve: the model lints reason over library code
    /// only, and a bench helper that happens to share a name with a std
    /// method (`fn expect`, say) must not donate call edges to kernels.
    pub fn resolve_unique(&self, name: &str) -> Option<FnRef> {
        let mut found: Option<FnRef> = None;
        for (pi, f) in self.files.iter().enumerate() {
            if f.ctx.bench_crate || f.ctx.test_file {
                continue;
            }
            for (fi, func) in f.summary.fns.iter().enumerate() {
                if func.name == name && !func.in_test {
                    if found.is_some() {
                        return None; // ambiguous
                    }
                    found = Some((pi, fi));
                }
            }
        }
        found
    }

    /// Look a function up by reference.
    pub fn func(&self, r: FnRef) -> &FnInfo {
        &self.files[r.0].summary.fns[r.1]
    }

    /// True when a `const`/`static` with this name exists anywhere in the
    /// workspace model.
    pub fn has_const(&self, name: &str) -> bool {
        self.files
            .iter()
            .any(|f| f.summary.consts.iter().any(|c| c == name))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::test_regions;
    use crate::lexer::lex;

    fn summarize_src(src: &str) -> FileSummary {
        let lexed = lex(src);
        let regions = test_regions(&lexed.toks);
        summarize(&lexed, &regions)
    }

    #[test]
    fn fn_items_params_and_kernel_idiom() {
        let s = summarize_src(
            "pub fn synthesize_into(&self, cfg: &Config, out: &mut Vec<C>) {}\n\
             fn helper(seed: u64, n: usize) -> u64 { seed.wrapping_add(n as u64) }\n\
             // press-lint: kernel\n\
             fn score4(h: &[f64]) -> f64 { 0.0 }\n",
        );
        assert_eq!(s.fns.len(), 3);
        assert!(s.fns[0].kernel, "suffix idiom");
        assert!(!s.fns[0].seed_param);
        assert!(s.fns[1].seed_param && s.fns[1].uses_seed_param);
        assert!(!s.fns[1].kernel);
        assert!(s.fns[2].kernel, "marker comment");
    }

    #[test]
    fn seed_param_present_but_unused_is_recorded() {
        let s = summarize_src("fn bogus_seed(seed: u64) -> u64 { 12345 }\n");
        assert!(s.fns[0].seed_param);
        assert!(!s.fns[0].uses_seed_param);
    }

    #[test]
    fn calls_and_allocs_attributed_to_innermost_fn() {
        let s = summarize_src(
            "fn outer(a: &[f64]) -> Vec<f64> {\n\
                 let v: Vec<f64> = a.iter().map(|x| x + 1.0).collect();\n\
                 fn inner(b: f64) -> f64 { helper(b) }\n\
                 score(&v);\n\
                 v\n\
             }\n",
        );
        let outer = &s.fns[0];
        let inner = &s.fns[1];
        assert_eq!(outer.name, "outer");
        assert!(outer.allocs.iter().any(|a| a.what == ".collect"));
        assert!(outer.calls.iter().any(|c| c.name == "score"));
        assert!(!outer.calls.iter().any(|c| c.name == "helper"));
        assert!(inner.calls.iter().any(|c| c.name == "helper"));
    }

    #[test]
    fn alloc_kinds_detected_clone_from_is_not() {
        let s = summarize_src(
            "fn k_into(out: &mut Vec<f64>) {\n\
                 let a = vec![1.0];\n\
                 let b = Vec::with_capacity(4);\n\
                 let c = Box::new(1);\n\
                 let d = a.clone();\n\
                 out.clone_from(&d);\n\
                 let e = a.to_vec();\n\
             }\n",
        );
        let whats: Vec<&str> = s.fns[0].allocs.iter().map(|a| a.what.as_str()).collect();
        assert!(whats.contains(&"vec!"));
        assert!(whats.contains(&"Vec::with_capacity"));
        assert!(whats.contains(&"Box::new"));
        assert!(whats.contains(&".clone"));
        assert!(whats.contains(&".to_vec"));
        assert!(!whats.iter().any(|w| w.contains("clone_from")));
    }

    #[test]
    fn seed_call_captures_local_substitution() {
        let s = summarize_src(
            "fn run(seed: u64, lead: u64) {\n\
                 let stream = link_stream_seed(seed, lead, 0);\n\
                 let mut rng = StdRng::seed_from_u64(stream);\n\
             }\n",
        );
        assert_eq!(s.seed_calls.len(), 1);
        let c = &s.seed_calls[0];
        assert_eq!(c.stream_expr, "link_stream_seed(seed, lead, 0)");
        assert_eq!(c.arg_calls.len(), 1);
        assert_eq!(c.arg_calls[0].name, "link_stream_seed");
        assert!(c.derives_locally);
        assert_eq!(c.enclosing, "run");
    }

    #[test]
    fn seed_call_renders_wrapping_add_and_self() {
        let s = summarize_src(
            "impl C { fn go(&self) { let r = StdRng::seed_from_u64(self.seed.wrapping_add(2)); } }\n",
        );
        assert_eq!(s.seed_calls[0].stream_expr, "seed.wrapping_add(2)");
    }

    #[test]
    fn consts_are_collected() {
        let s = summarize_src("pub const DEFAULT_SEED: u64 = 7;\nstatic OTHER: u8 = 0;\n");
        assert_eq!(s.consts, vec!["DEFAULT_SEED", "OTHER"]);
    }

    #[test]
    fn resolve_unique_rejects_ambiguous_names() {
        let mk = |src: &str, path: &str| ModelFile {
            ctx: FileContext::from_rel_path(path),
            summary: summarize_src(src),
        };
        let model = Model::new(vec![
            mk(
                "fn solo(x: u64) -> u64 { x }\nfn dup() {}\n",
                "crates/press-core/src/a.rs",
            ),
            mk("fn dup() {}\n", "crates/press-core/src/b.rs"),
        ]);
        assert!(model.resolve_unique("solo").is_some());
        assert!(model.resolve_unique("dup").is_none());
        assert!(model.resolve_unique("missing").is_none());
    }
}
