//! Diagnostics: severity, spans, rendering (human and JSON).

use std::fmt;

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Fails the run only under `--deny-warnings`.
    Warning,
    /// Always fails the run.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// One finding, anchored to a file/line/column.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Lint slug (e.g. `nondeterministic-iteration`).
    pub lint: &'static str,
    /// Severity of this finding.
    pub severity: Severity,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// What is wrong, concretely.
    pub message: String,
    /// How to fix it.
    pub help: &'static str,
}

impl Diagnostic {
    /// Render in the familiar rustc two-line style.
    pub fn render_human(&self) -> String {
        format!(
            "{}[{}]: {}\n  --> {}:{}:{}\n   = help: {}\n",
            self.severity, self.lint, self.message, self.file, self.line, self.col, self.help
        )
    }

    /// Render as a JSON object (machine-readable CI output).
    pub fn render_json(&self) -> String {
        format!(
            "{{\"lint\":{},\"severity\":{},\"file\":{},\"line\":{},\"column\":{},\"message\":{},\"help\":{}}}",
            json_str(self.lint),
            json_str(&self.severity.to_string()),
            json_str(&self.file),
            self.line,
            self.col,
            json_str(&self.message),
            json_str(self.help),
        )
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn json_render_is_valid_shape() {
        let d = Diagnostic {
            lint: "float-ordering",
            severity: Severity::Warning,
            file: "src/lib.rs".into(),
            line: 3,
            col: 7,
            message: "`==` on an f64".into(),
            help: "use total_cmp or an epsilon",
        };
        let j = d.render_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"line\":3"));
        assert!(j.contains("\"severity\":\"warning\""));
    }
}
