//! The six lint passes, run over a file's token stream.
//!
//! Every check is a linear scan with small fixed lookahead/lookbehind — no
//! expression trees. That keeps the analyzer trivially fast (the whole
//! workspace lints in well under a second) and immune to macro soup, at the
//! cost of being a heuristic: the catalog is tuned so that every rule is
//! either precise (L1, L2, L4a) or scoped to contexts where the convention
//! is absolute (L3 in library code, L4b outside tests, L5's suffix taint).

use crate::catalog;
use crate::context::{FileContext, TestRegions};
use crate::diag::Diagnostic;
use crate::lexer::{Tok, TokKind};

/// Run every lint over one lexed file. Suppressions are applied by the
/// caller; this returns raw findings.
pub fn run_all(ctx: &FileContext, toks: &[Tok], regions: &TestRegions) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    check_nondet_iteration(ctx, toks, &mut out);
    check_ambient_entropy(ctx, toks, &mut out);
    check_seed_stream(ctx, toks, regions, &mut out);
    check_float_ordering(ctx, toks, regions, &mut out);
    check_db_linear_mixing(ctx, toks, &mut out);
    check_kernel_reduction(ctx, toks, regions, &mut out);
    check_panic_freedom(ctx, toks, regions, &mut out);
    out.sort_by(|a, b| (a.line, a.col, a.lint).cmp(&(b.line, b.col, b.lint)));
    out
}

fn diag(lint: &'static catalog::Lint, ctx: &FileContext, t: &Tok, message: String) -> Diagnostic {
    Diagnostic {
        lint: lint.slug,
        severity: lint.severity,
        file: ctx.rel_path.clone(),
        line: t.line,
        col: t.col,
        message,
        help: lint_help(lint.slug),
    }
}

pub(crate) fn lint_help(slug: &str) -> &'static str {
    match slug {
        "nondeterministic-iteration" => {
            "use BTreeMap/BTreeSet, or collect and sort before iterating"
        }
        "ambient-entropy" => {
            "thread all randomness from an explicit seed (StdRng::seed_from_u64) and model time \
             inside the simulation"
        }
        "seed-stream-discipline" => {
            "derive the seed from a named parameter (`seed`, `seed.wrapping_add(n)`, \
             `derive_stream_seed(seed, ..)`) so streams stay decorrelated and reproducible"
        }
        "float-ordering" => "use f64::total_cmp for ordering, or an explicit epsilon for equality",
        "db-linear-unit-mixing" => {
            "convert explicitly via press_math::db (db_to_pow/pow_to_db/db_to_amp/amp_to_db) \
             before mixing scales"
        }
        "kernel-reduction" => {
            "write the reduction as an explicit in-order loop or fold so the accumulation \
             order is visible and stays fixed"
        }
        "panic-freedom" => {
            "return a Result, use a checked accessor, or document the invariant that makes \
             the panic unreachable with `// press-lint: allow(panic-freedom)`"
        }
        _ => "",
    }
}

// ---------------------------------------------------------------------------
// L1: nondeterministic-iteration
// ---------------------------------------------------------------------------

/// Flag `HashMap`/`HashSet` identifiers in simulation crates. The std hash
/// map is seeded per process, so iteration order — and therefore anything
/// accumulated from it — varies run to run.
fn check_nondet_iteration(ctx: &FileContext, toks: &[Tok], out: &mut Vec<Diagnostic>) {
    if ctx.bench_crate {
        return;
    }
    for t in toks {
        if t.kind == TokKind::Ident && (t.text == "HashMap" || t.text == "HashSet") {
            out.push(diag(
                &catalog::NONDET_ITERATION,
                ctx,
                t,
                format!(
                    "`{}` has a per-process iteration order; simulation crates must be \
                     bit-reproducible per seed",
                    t.text
                ),
            ));
        }
    }
}

// ---------------------------------------------------------------------------
// L2: ambient-entropy
// ---------------------------------------------------------------------------

/// Forbid OS entropy and wall clocks outside press-bench and the pressd
/// daemon shell (`pressd`'s `main.rs`/`shell.rs`, which may time I/O for
/// stderr diagnostics). One `thread_rng()` anywhere in the loop and
/// per-seed episode replay is gone.
fn check_ambient_entropy(ctx: &FileContext, toks: &[Tok], out: &mut Vec<Diagnostic>) {
    if ctx.bench_crate || ctx.daemon_shell {
        return;
    }
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        let flagged = match t.text.as_str() {
            "thread_rng" | "from_entropy" => true,
            // Attaching a wall clock to a tracer stamps nondeterministic
            // wall_s fields into otherwise byte-reproducible JSONL.
            "set_wall_clock" => true,
            "random" => path_prefix_is(toks, i, "rand"),
            "now" => path_prefix_is(toks, i, "Instant") || path_prefix_is(toks, i, "SystemTime"),
            _ => false,
        };
        if flagged {
            let what = if t.text == "now" {
                format!("`{}::now` reads the wall clock", path_head(toks, i))
            } else if t.text == "random" {
                String::from("`rand::random` draws from the thread-local OS-seeded RNG")
            } else if t.text == "set_wall_clock" {
                String::from("`set_wall_clock` attaches wall-clock stamps to the trace stream")
            } else {
                format!("`{}` draws from OS entropy", t.text)
            };
            out.push(diag(
                &catalog::AMBIENT_ENTROPY,
                ctx,
                t,
                format!(
                    "{what}; only press-bench and the pressd I/O shell may observe the \
                     outside world"
                ),
            ));
        }
    }
}

/// Is token `i` preceded by `<head> ::`?
fn path_prefix_is(toks: &[Tok], i: usize, head: &str) -> bool {
    i >= 2 && toks[i - 1].is_punct("::") && toks[i - 2].is_ident(head)
}

fn path_head(toks: &[Tok], i: usize) -> &str {
    if i >= 2 && toks[i - 1].is_punct("::") {
        &toks[i - 2].text
    } else {
        ""
    }
}

// ---------------------------------------------------------------------------
// L3: seed-stream-discipline
// ---------------------------------------------------------------------------

/// In library code every `seed_from_u64(...)` argument must reference a named
/// seed or stream (the `seed` / `seed+1` / `seed+2` convention from the
/// controller). Scratch literals are fine in tests, benches and examples —
/// there the literal *is* the experiment's name.
///
/// Per-link streams have their own convention: a seed expression that mixes
/// in a link identity must go through `link_stream_seed` (or the raw
/// `derive_stream_seed` splitter). Ad-hoc mixes like `seed ^ link_id`
/// correlate streams across links and collide with the scalar `seed+n`
/// streams, so they are flagged even though a seed ident is present.
fn check_seed_stream(
    ctx: &FileContext,
    toks: &[Tok],
    regions: &TestRegions,
    out: &mut Vec<Diagnostic>,
) {
    if ctx.bench_crate || ctx.test_file {
        return;
    }
    for (i, t) in toks.iter().enumerate() {
        if !t.is_ident("seed_from_u64") || regions.contains(i) {
            continue;
        }
        let Some(open) = toks.get(i + 1).filter(|n| n.is_punct("(")) else {
            continue;
        };
        let _ = open;
        let close = match matching_paren(toks, i + 1) {
            Some(c) => c,
            None => continue,
        };
        let args = &toks[i + 2..close];
        let derives_from_seed = args.iter().any(|a| {
            a.kind == TokKind::Ident && {
                let lower = a.text.to_lowercase();
                lower.contains("seed") || lower.contains("stream")
            }
        });
        if !derives_from_seed {
            out.push(diag(
                &catalog::SEED_STREAM,
                ctx,
                t,
                String::from(
                    "RNG constructed from an ad-hoc seed expression in library code; nothing \
                     ties this stream to the episode seed",
                ),
            ));
            continue;
        }
        // Per-link / per-shard sub-rule: a link or shard identity in the
        // seed expression must be split in through the dedicated
        // derivation helpers.
        let mentions_link = args.iter().any(|a| {
            a.kind == TokKind::Ident && {
                let lower = a.text.to_lowercase();
                lower.contains("link") || lower.contains("shard")
            }
        });
        let uses_splitter = args
            .iter()
            .any(|a| a.is_ident("link_stream_seed") || a.is_ident("derive_stream_seed"));
        if mentions_link && !uses_splitter {
            out.push(diag(
                &catalog::SEED_STREAM,
                ctx,
                t,
                String::from(
                    "per-link/per-shard RNG stream mixed by hand; derive it with \
                     link_stream_seed (or derive_stream_seed) so these streams neither \
                     collide with the seed+n scalar streams nor correlate across links \
                     or shards",
                ),
            ));
        }
    }
}

/// Given the index of a `(`, return the index of its matching `)`.
fn matching_paren(toks: &[Tok], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (k, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct("(") {
            depth += 1;
        } else if t.is_punct(")") {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

// ---------------------------------------------------------------------------
// L4: float-ordering
// ---------------------------------------------------------------------------

/// Two shapes:
/// (a) `partial_cmp(..).unwrap()` / `.expect(..)` — panics the first time a
///     NaN reaches the comparison; `total_cmp` is total and NaN-safe.
/// (b) `==` / `!=` against a float literal outside test code — tests assert
///     bit-identity deliberately, production code should not.
fn check_float_ordering(
    ctx: &FileContext,
    toks: &[Tok],
    regions: &TestRegions,
    out: &mut Vec<Diagnostic>,
) {
    for (i, t) in toks.iter().enumerate() {
        // (a) partial_cmp(..).unwrap()
        if t.is_ident("partial_cmp") && toks.get(i + 1).is_some_and(|n| n.is_punct("(")) {
            if let Some(close) = matching_paren(toks, i + 1) {
                if toks.get(close + 1).is_some_and(|n| n.is_punct("."))
                    && toks
                        .get(close + 2)
                        .is_some_and(|n| n.is_ident("unwrap") || n.is_ident("expect"))
                {
                    out.push(diag(
                        &catalog::FLOAT_ORDERING,
                        ctx,
                        t,
                        String::from(
                            "`partial_cmp(..).unwrap()` panics on NaN and silently depends on \
                             partial order",
                        ),
                    ));
                }
            }
        }
        // (b) float-literal equality in non-test code.
        if t.kind == TokKind::Punct && (t.text == "==" || t.text == "!=") {
            let in_test = ctx.bench_crate || ctx.test_file || regions.contains(i);
            if in_test {
                continue;
            }
            let float_neighbor = toks
                .get(i.wrapping_sub(1))
                .is_some_and(|p| p.kind == TokKind::Float)
                || toks.get(i + 1).is_some_and(|n| n.kind == TokKind::Float)
                || (toks.get(i + 1).is_some_and(|n| n.is_punct("-"))
                    && toks.get(i + 2).is_some_and(|n| n.kind == TokKind::Float));
            if float_neighbor {
                out.push(diag(
                    &catalog::FLOAT_ORDERING,
                    ctx,
                    t,
                    format!(
                        "`{}` against a float literal is an exact bit comparison",
                        t.text
                    ),
                ));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// L5: db-linear-unit-mixing
// ---------------------------------------------------------------------------

/// Unit class inferred from an identifier's suffix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Unit {
    Db,
    Linear,
}

fn classify(name: &str) -> Option<Unit> {
    let n = name.to_lowercase();
    const DB: &[&str] = &["_db", "_dbm", "_dbi"];
    const LINEAR: &[&str] = &["_linear", "_lin", "_pow", "_amp", "_mw", "_watts", "_power"];
    if DB.iter().any(|s| n.ends_with(s)) {
        return Some(Unit::Db);
    }
    if LINEAR.iter().any(|s| n.ends_with(s)) {
        return Some(Unit::Linear);
    }
    None
}

/// Flag `+ - * /` whose two operand chains carry conflicting unit suffixes
/// (`snr_db + path_gain_linear`). dB-with-dB and linear-with-linear pass;
/// multiplying either class by a unitless scalar passes. The suffix taint is
/// deliberately shallow — it follows the naming convention the workspace
/// already uses (`*_db`, `*_dbm`, `*_linear`, `*_mw`, ...), and converter
/// calls classify by their return unit (`db_to_pow` → linear, `pow_to_db` →
/// dB) because the convention puts the unit last.
fn check_db_linear_mixing(ctx: &FileContext, toks: &[Tok], out: &mut Vec<Diagnostic>) {
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Punct || !matches!(t.text.as_str(), "+" | "-" | "*" | "/") {
            continue;
        }
        // Binary only: the previous token must be able to end an operand.
        let binary = toks.get(i.wrapping_sub(1)).is_some_and(|p| {
            matches!(p.kind, TokKind::Ident | TokKind::Int | TokKind::Float)
                || p.is_punct(")")
                || p.is_punct("]")
        });
        if !binary || i == 0 {
            continue;
        }
        let before = chain_unit_before(toks, i);
        let after = chain_unit_after(toks, i);
        if let (Some(a), Some(b)) = (before, after) {
            if a != b {
                out.push(diag(
                    &catalog::DB_LINEAR_MIXING,
                    ctx,
                    t,
                    format!(
                        "arithmetic mixes a dB-scale identifier with a linear-scale identifier \
                         across `{}`",
                        t.text
                    ),
                ));
            }
        }
    }
}

/// Unit of the operand chain ending just before token `op` (walk back over
/// `ident`, `.`, `::`, and balanced `(..)`/`[..]` groups; classify the first
/// classifiable identifier in that span).
fn chain_unit_before(toks: &[Tok], op: usize) -> Option<Unit> {
    let mut k = op; // exclusive end
    let mut start = op;
    while start > 0 {
        let t = &toks[start - 1];
        if t.is_punct(")") || t.is_punct("]") {
            // Skip back over the balanced group.
            let (open, close) = if t.is_punct(")") {
                ("(", ")")
            } else {
                ("[", "]")
            };
            let mut depth = 0usize;
            let mut j = start - 1;
            loop {
                if toks[j].is_punct(close) {
                    depth += 1;
                } else if toks[j].is_punct(open) {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                if j == 0 {
                    return None;
                }
                j -= 1;
            }
            start = j;
        } else if t.kind == TokKind::Ident
            || t.kind == TokKind::Int
            || t.kind == TokKind::Float
            || t.is_punct(".")
            || t.is_punct("::")
        {
            start -= 1;
        } else {
            break;
        }
    }
    k = k.min(toks.len());
    toks[start..k]
        .iter()
        .filter(|t| t.kind == TokKind::Ident)
        .find_map(|t| classify(&t.text))
}

/// Unit of the operand chain starting just after token `op` (skip unary
/// prefixes, then walk `ident`, `.`, `::`, balanced groups).
fn chain_unit_after(toks: &[Tok], op: usize) -> Option<Unit> {
    let mut k = op + 1;
    // Unary prefixes.
    while k < toks.len()
        && (toks[k].is_punct("&") || toks[k].is_punct("-") || toks[k].is_punct("!"))
    {
        k += 1;
    }
    let start = k;
    while k < toks.len() {
        let t = &toks[k];
        if t.is_punct("(") || t.is_punct("[") {
            let (open, close) = if t.is_punct("(") {
                ("(", ")")
            } else {
                ("[", "]")
            };
            let mut depth = 0usize;
            while k < toks.len() {
                if toks[k].is_punct(open) {
                    depth += 1;
                } else if toks[k].is_punct(close) {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                k += 1;
            }
            k += 1;
        } else if t.kind == TokKind::Ident
            || t.kind == TokKind::Int
            || t.kind == TokKind::Float
            || t.is_punct(".")
            || t.is_punct("::")
        {
            k += 1;
        } else {
            break;
        }
    }
    toks[start..k.min(toks.len())]
        .iter()
        .filter(|t| t.kind == TokKind::Ident)
        .find_map(|t| classify(&t.text))
}

// ---------------------------------------------------------------------------
// L6: kernel-reduction
// ---------------------------------------------------------------------------

/// In a file that contains a fixed-width lane kernel (detected by the
/// `chunks_exact` idiom the SoA batch kernel is built on), flag method-call
/// `.sum` reductions outside test code. `Iterator::sum` is free to be
/// re-associated by future refactors (and hides its accumulation order
/// today); the kernel's bit-identity contract requires every
/// floating-point reduction to be an explicit in-order loop or fold whose
/// order a reviewer can see. Benches and tests may still `.sum()` — they
/// measure or assert, they are not the contract.
fn check_kernel_reduction(
    ctx: &FileContext,
    toks: &[Tok],
    regions: &TestRegions,
    out: &mut Vec<Diagnostic>,
) {
    if ctx.bench_crate || ctx.test_file {
        return;
    }
    let is_kernel_file = toks
        .iter()
        .any(|t| t.kind == TokKind::Ident && t.text == "chunks_exact");
    if !is_kernel_file {
        return;
    }
    for (i, t) in toks.iter().enumerate() {
        if t.is_ident("sum") && i >= 1 && toks[i - 1].is_punct(".") && !regions.contains(i) {
            out.push(diag(
                &catalog::KERNEL_REDUCTION,
                ctx,
                t,
                String::from(
                    "iterator `.sum()` in a lane-kernel file hides the accumulation order the \
                     kernel's bit-identity contract depends on",
                ),
            ));
        }
    }
}

// ---------------------------------------------------------------------------
// L9: panic-freedom
// ---------------------------------------------------------------------------

/// Flag `.unwrap()` / `.expect(..)` method calls and the panicking macros
/// (`panic!`, `unreachable!`, `todo!`, `unimplemented!`) in non-test library
/// code. The pressd daemon direction (ROADMAP) turns every library panic
/// into a whole-control-loop abort, so panics must either become `Result`s
/// or carry a documented `allow` naming the invariant that rules them out.
///
/// Deliberate carve-outs:
/// - `partial_cmp(..).unwrap()` is L4's finding (float-ordering), not L9's —
///   double-reporting one token helps nobody.
/// - Slice indexing (`xs[i]`) is not flagged: the lexer has no types, so it
///   cannot tell a bounds-checked hot-loop index (ubiquitous in the kernels,
///   panic-free by construction) from a fallible map lookup. A lint that
///   fires on every kernel line would be allowed into silence immediately.
/// - `assert!`/`debug_assert!` are contract checks, not control flow — an
///   assert that fires is a bug found, which is the point of having it.
fn check_panic_freedom(
    ctx: &FileContext,
    toks: &[Tok],
    regions: &TestRegions,
    out: &mut Vec<Diagnostic>,
) {
    if ctx.bench_crate || ctx.test_file {
        return;
    }
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || regions.contains(i) {
            continue;
        }
        match t.text.as_str() {
            "unwrap" | "expect" => {
                // Method call only: `.unwrap(` / `.expect(`.
                if !(i >= 1
                    && toks[i - 1].is_punct(".")
                    && toks.get(i + 1).is_some_and(|n| n.is_punct("(")))
                {
                    continue;
                }
                // `partial_cmp(..).unwrap()` belongs to L4.
                if i >= 2 && toks[i - 2].is_punct(")") {
                    if let Some(open) = matching_paren_backward(toks, i - 2) {
                        if open >= 1 && toks[open - 1].is_ident("partial_cmp") {
                            continue;
                        }
                    }
                }
                out.push(diag(
                    &catalog::PANIC_FREEDOM,
                    ctx,
                    t,
                    format!(
                        "`.{}()` in library code panics at runtime; a daemonized control \
                         loop cannot absorb an abort",
                        t.text
                    ),
                ));
            }
            "panic" | "unreachable" | "todo" | "unimplemented"
                if toks.get(i + 1).is_some_and(|n| n.is_punct("!")) =>
            {
                out.push(diag(
                    &catalog::PANIC_FREEDOM,
                    ctx,
                    t,
                    format!("`{}!` aborts the control loop in library code", t.text),
                ));
            }
            _ => {}
        }
    }
}

/// Given the index of a `)`, return the index of its matching `(`.
fn matching_paren_backward(toks: &[Tok], close: usize) -> Option<usize> {
    let mut depth = 0usize;
    let mut j = close;
    loop {
        if toks[j].is_punct(")") {
            depth += 1;
        } else if toks[j].is_punct("(") {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
        if j == 0 {
            return None;
        }
        j -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::test_regions;
    use crate::lexer::lex;

    fn run(path: &str, src: &str) -> Vec<Diagnostic> {
        let ctx = FileContext::from_rel_path(path);
        let lexed = lex(src);
        let regions = test_regions(&lexed.toks);
        run_all(&ctx, &lexed.toks, &regions)
    }

    const LIB: &str = "crates/press-core/src/x.rs";

    #[test]
    fn l1_flags_hash_collections_outside_bench() {
        let d = run(LIB, "use std::collections::HashSet;\n");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].lint, "nondeterministic-iteration");
        assert_eq!(d[0].line, 1);
        assert!(run(
            "crates/press-bench/src/lib.rs",
            "use std::collections::HashMap;"
        )
        .is_empty());
    }

    #[test]
    fn l2_flags_entropy_and_clocks() {
        for (src, frag) in [
            ("let mut r = rand::thread_rng();", "thread_rng"),
            ("let r = StdRng::from_entropy();", "from_entropy"),
            ("let x: u8 = rand::random();", "random"),
            ("let t = Instant::now();", "now"),
            ("let t = SystemTime::now();", "now"),
        ] {
            let d = run(LIB, src);
            assert_eq!(d.len(), 1, "{src}");
            assert_eq!(d[0].lint, "ambient-entropy", "{src}");
            assert!(d[0].severity == crate::diag::Severity::Error);
            let _ = frag;
        }
        // `now` and `random` only flag behind the known paths.
        assert!(run(LIB, "let t = sim.now(); let r = draw.random();").is_empty());
    }

    #[test]
    fn l3_literal_seed_in_lib_flagged_named_seed_clean() {
        let d = run(LIB, "let rng = StdRng::seed_from_u64(42);");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].lint, "seed-stream-discipline");
        assert!(run(
            LIB,
            "let rng = StdRng::seed_from_u64(self.seed.wrapping_add(2));"
        )
        .is_empty());
        assert!(run(
            LIB,
            "let rng = StdRng::seed_from_u64(derive_stream_seed(seed, j, 0));"
        )
        .is_empty());
        // Tests and benches may use scratch literals.
        assert!(run(
            LIB,
            "#[cfg(test)]\nmod tests { fn t() { let r = StdRng::seed_from_u64(7); } }"
        )
        .is_empty());
        assert!(run(
            "crates/press-bench/src/bin/fig4.rs",
            "let r = StdRng::seed_from_u64(7);"
        )
        .is_empty());
    }

    #[test]
    fn l3_hand_mixed_link_or_shard_stream_flagged_helpers_clean() {
        for src in [
            "let rng = StdRng::seed_from_u64(seed ^ link_id);",
            "let rng = StdRng::seed_from_u64(seed + shard_idx);",
        ] {
            let d = run(LIB, src);
            assert_eq!(d.len(), 1, "{src}");
            assert_eq!(d[0].lint, "seed-stream-discipline", "{src}");
            assert!(d[0].message.contains("link_stream_seed"), "{src}");
        }
        for src in [
            "let rng = StdRng::seed_from_u64(link_stream_seed(seed, link_id, 0));",
            "let rng = StdRng::seed_from_u64(link_stream_seed(seed, shard_lead, 0));",
            "let rng = StdRng::seed_from_u64(derive_stream_seed(seed, shard_idx, 4));",
        ] {
            assert!(run(LIB, src).is_empty(), "{src}");
        }
    }

    #[test]
    fn l4_partial_cmp_unwrap_and_float_eq() {
        let d = run(LIB, "xs.sort_by(|a, b| a.partial_cmp(b).unwrap());");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].lint, "float-ordering");
        let d = run(LIB, "if x == 1.5 { }");
        assert_eq!(d.len(), 1);
        // A partial_cmp *definition* (the des.rs Ord impl) is clean.
        assert!(run(
            LIB,
            "fn partial_cmp(&self, other: &Self) -> Option<Ordering> { Some(self.cmp(other)) }"
        )
        .is_empty());
        // total_cmp and epsilon comparisons are clean.
        assert!(run(
            LIB,
            "xs.sort_by(f64::total_cmp); if (x - 1.5).abs() < 1e-9 { }"
        )
        .is_empty());
        // Float equality inside tests is a deliberate bit-identity assertion.
        assert!(run(
            LIB,
            "#[cfg(test)]\nmod tests { fn t() { assert!(x == 1.5); } }"
        )
        .is_empty());
    }

    #[test]
    fn l5_db_linear_mixing() {
        let d = run(LIB, "let y = snr_db + path_gain_linear;");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].lint, "db-linear-unit-mixing");
        let d = run(LIB, "let y = noise_mw * floor_db;");
        assert_eq!(d.len(), 1);
        // Same-unit arithmetic and unitless scalars are clean.
        assert!(run(LIB, "let y = a_db - b_db; let z = gain_linear * 2.0;").is_empty());
        // Converter calls classify by their return unit.
        assert!(run(LIB, "let y = snr_db + pow_to_db(path_gain_linear);").is_empty());
        let d = run(LIB, "let y = snr_db + db_to_pow(other_db);");
        assert_eq!(d.len(), 1, "adding a linear power to a dB value");
    }

    #[test]
    fn l6_kernel_files_must_spell_reductions() {
        // A `.sum()` in a file with a lane kernel is flagged...
        let d = run(
            LIB,
            "fn k(a: &mut [f64], c: &[f64]) { for ch in c.chunks_exact(4) {} }\n\
             fn total(xs: &[f64]) -> f64 { xs.iter().sum() }",
        );
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].lint, "kernel-reduction");
        // ...but the same `.sum()` without a kernel in the file is not.
        assert!(run(LIB, "fn total(xs: &[f64]) -> f64 { xs.iter().sum() }").is_empty());
        // Explicit folds in kernel files are the sanctioned spelling.
        assert!(run(
            LIB,
            "fn k(c: &[f64]) -> f64 { let mut acc = 0.0; for ch in c.chunks_exact(4) { \
             for l in 0..4 { acc += ch[l]; } } acc }"
        )
        .is_empty());
        // Test modules inside a kernel file may still assert with `.sum()`.
        assert!(run(
            LIB,
            "fn k(c: &[f64]) { for ch in c.chunks_exact(4) {} }\n\
             #[cfg(test)]\nmod tests { fn t(xs: &[f64]) -> f64 { xs.iter().sum() } }"
        )
        .is_empty());
        // Bench crates measure, they are not the contract.
        assert!(run(
            "crates/press-bench/src/bin/fig4.rs",
            "fn k(c: &[f64]) { for ch in c.chunks_exact(4) {} }\n\
             fn total(xs: &[f64]) -> f64 { xs.iter().sum() }"
        )
        .is_empty());
        // A `sum` ident that is not a method call (field, fn name) is fine.
        assert!(run(
            LIB,
            "fn k(c: &[f64]) { for ch in c.chunks_exact(4) {} }\n\
             fn sum(a: f64, b: f64) -> f64 { let sum = a + b; sum }"
        )
        .is_empty());
    }

    #[test]
    fn l9_flags_panic_sites_in_library_code() {
        let d = run(LIB, "fn f(x: Option<u8>) -> u8 { x.unwrap() }");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].lint, "panic-freedom");
        let d = run(LIB, "fn f(x: Option<u8>) -> u8 { x.expect(\"present\") }");
        assert_eq!(d.len(), 1);
        let d = run(LIB, "fn f() { panic!(\"boom\"); }");
        assert_eq!(d.len(), 1);
        let d = run(
            LIB,
            "fn f(k: u8) { match k { 0 => {} _ => unreachable!() } }",
        );
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn l9_carve_outs_do_not_fire() {
        // partial_cmp().unwrap() is L4's single finding, not an L9 double.
        let d = run(LIB, "xs.sort_by(|a, b| a.partial_cmp(b).unwrap());");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].lint, "float-ordering");
        // unwrap_or / unwrap_or_else / asserts / indexing are fine.
        assert!(run(
            LIB,
            "fn f(x: Option<u8>, xs: &[u8]) -> u8 { assert!(!xs.is_empty()); \
             x.unwrap_or(0) + x.unwrap_or_else(|| xs[0]) }"
        )
        .is_empty());
        // Tests, benches and test regions may panic freely.
        assert!(run(
            LIB,
            "#[cfg(test)]\nmod t { fn f() { None::<u8>.unwrap(); } }"
        )
        .is_empty());
        assert!(run("crates/press-core/tests/t.rs", "fn f() { x.unwrap(); }").is_empty());
        assert!(run("crates/press-bench/src/lib.rs", "fn f() { x.unwrap(); }").is_empty());
        // A field or fn named panic without `!` is not a macro.
        assert!(run(LIB, "fn f(p: &P) -> bool { p.panic }").is_empty());
    }

    #[test]
    fn diagnostics_are_ordered_by_span() {
        let d = run(
            LIB,
            "use std::collections::HashSet;\nlet r = rand::thread_rng();\n",
        );
        assert_eq!(d.len(), 2);
        assert!(d[0].line < d[1].line);
    }
}
