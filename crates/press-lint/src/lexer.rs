//! A minimal Rust lexer, just rich enough for the lint catalog.
//!
//! `syn` is the obvious tool for this job, but the analyzer must build with
//! zero dependencies (it is the first thing CI runs, including in offline
//! sandboxes), so we hand-roll a token scanner instead. The lints only need
//! identifiers, literals, punctuation and comment text with line/column
//! spans — no expression trees — and a lexer-level view has one real
//! advantage: it never misparses the macro-heavy test code that trips up
//! AST-based tools.

/// Token classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`HashSet`, `fn`, `r#async`).
    Ident,
    /// Integer literal (`42`, `0x9E37`, `1_000u64`).
    Int,
    /// Float literal (`1.0`, `2e-3`, `1f64`).
    Float,
    /// String, raw-string or byte-string literal (contents dropped).
    Str,
    /// Char literal.
    Char,
    /// Lifetime (`'a`).
    Lifetime,
    /// Punctuation, possibly compound (`::`, `==`, `->`).
    Punct,
}

/// One lexed token with its source span.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Classification.
    pub kind: TokKind,
    /// Source text (for `Str`/`Char` this is a placeholder, not the contents).
    pub text: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column of the first character.
    pub col: u32,
}

impl Tok {
    /// True if this token is an identifier with exactly this text.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// True if this token is punctuation with exactly this text.
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokKind::Punct && self.text == s
    }
}

/// A `// press-lint: allow(...)` suppression comment.
#[derive(Debug, Clone)]
pub struct Suppression {
    /// 1-based line the comment sits on.
    pub line: u32,
    /// True for a trailing comment (code precedes it on the same line): it
    /// silences its own line only. A standalone comment line also silences
    /// the line below it.
    pub trailing: bool,
    /// Lint slugs named in the `allow(...)` list (or `all`).
    pub slugs: Vec<String>,
}

/// Lexer output: the token stream plus any suppression comments.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Tokens in source order.
    pub toks: Vec<Tok>,
    /// Suppression comments in source order.
    pub suppressions: Vec<Suppression>,
    /// Lines carrying a `// press-lint: kernel` marker. The marker promotes
    /// the next `fn` item (or the one on the same line) into the hot-kernel
    /// set that L8 holds allocation-free, for kernels whose names don't
    /// match the `*_into`/`*_scratch`/`*_batched` idiom.
    pub kernel_markers: Vec<u32>,
}

/// Lex `src` into tokens, collecting `press-lint: allow(...)` comments.
///
/// The scanner is forgiving: on any construct it does not understand it
/// advances one character and carries on, so a pathological file degrades to
/// fewer findings rather than a crash.
pub fn lex(src: &str) -> Lexed {
    let b: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;

    macro_rules! bump {
        () => {{
            if b[i] == '\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
            i += 1;
        }};
    }

    while i < b.len() {
        let c = b[i];
        let (tline, tcol) = (line, col);

        // Whitespace.
        if c.is_whitespace() {
            bump!();
            continue;
        }

        // Line comment (and suppression extraction).
        if c == '/' && i + 1 < b.len() && b[i + 1] == '/' {
            let start = i;
            while i < b.len() && b[i] != '\n' {
                bump!();
            }
            let text: String = b[start..i].iter().collect();
            let trailing = out.toks.last().is_some_and(|t| t.line == tline);
            if let Some(sup) = parse_suppression(&text, tline, trailing) {
                out.suppressions.push(sup);
            }
            if is_kernel_marker(&text) {
                out.kernel_markers.push(tline);
            }
            continue;
        }

        // Block comment, nested.
        if c == '/' && i + 1 < b.len() && b[i + 1] == '*' {
            let mut depth = 0usize;
            while i < b.len() {
                if b[i] == '/' && i + 1 < b.len() && b[i + 1] == '*' {
                    depth += 1;
                    bump!();
                    bump!();
                } else if b[i] == '*' && i + 1 < b.len() && b[i + 1] == '/' {
                    depth -= 1;
                    bump!();
                    bump!();
                    if depth == 0 {
                        break;
                    }
                } else {
                    bump!();
                }
            }
            continue;
        }

        // Raw strings: r"..." / r#"..."# / br#"..."#  (and raw idents r#foo).
        if c == 'r' || c == 'b' {
            let mut j = i;
            let mut prefix_b = false;
            if b[j] == 'b' {
                prefix_b = true;
                j += 1;
            }
            if j < b.len() && b[j] == 'r' {
                j += 1;
                let mut hashes = 0usize;
                while j < b.len() && b[j] == '#' {
                    hashes += 1;
                    j += 1;
                }
                if j < b.len() && b[j] == '"' {
                    // Raw (byte) string: scan to closing quote + hashes.
                    while i < j {
                        bump!();
                    }
                    bump!(); // opening quote
                    'raw: while i < b.len() {
                        if b[i] == '"' {
                            let mut k = i + 1;
                            let mut seen = 0usize;
                            while k < b.len() && seen < hashes && b[k] == '#' {
                                seen += 1;
                                k += 1;
                            }
                            if seen == hashes {
                                while i < k {
                                    bump!();
                                }
                                break 'raw;
                            }
                        }
                        bump!();
                    }
                    out.toks.push(Tok {
                        kind: TokKind::Str,
                        text: String::from("\"raw\""),
                        line: tline,
                        col: tcol,
                    });
                    continue;
                } else if !prefix_b && hashes == 1 && j < b.len() && is_ident_start(b[j]) {
                    // Raw identifier r#foo.
                    bump!(); // r
                    bump!(); // #
                    let start = i;
                    while i < b.len() && is_ident_continue(b[i]) {
                        bump!();
                    }
                    out.toks.push(Tok {
                        kind: TokKind::Ident,
                        text: b[start..i].iter().collect(),
                        line: tline,
                        col: tcol,
                    });
                    continue;
                }
            }
        }

        // Plain or byte string.
        if c == '"' || (c == 'b' && i + 1 < b.len() && b[i + 1] == '"') {
            if c == 'b' {
                bump!();
            }
            bump!(); // opening quote
            while i < b.len() {
                if b[i] == '\\' && i + 1 < b.len() {
                    bump!();
                    bump!();
                } else if b[i] == '"' {
                    bump!();
                    break;
                } else {
                    bump!();
                }
            }
            out.toks.push(Tok {
                kind: TokKind::Str,
                text: String::from("\"...\""),
                line: tline,
                col: tcol,
            });
            continue;
        }

        // Char literal vs lifetime.
        if c == '\'' {
            // Lifetime: 'ident not followed by a closing quote.
            if i + 1 < b.len() && is_ident_start(b[i + 1]) {
                let mut j = i + 1;
                while j < b.len() && is_ident_continue(b[j]) {
                    j += 1;
                }
                if j < b.len() && b[j] == '\'' && j == i + 2 {
                    // 'x' — a char literal, fall through below.
                } else {
                    bump!();
                    let start = i;
                    while i < b.len() && is_ident_continue(b[i]) {
                        bump!();
                    }
                    out.toks.push(Tok {
                        kind: TokKind::Lifetime,
                        text: b[start..i].iter().collect(),
                        line: tline,
                        col: tcol,
                    });
                    continue;
                }
            }
            bump!(); // opening quote
            while i < b.len() {
                if b[i] == '\\' && i + 1 < b.len() {
                    bump!();
                    bump!();
                } else if b[i] == '\'' {
                    bump!();
                    break;
                } else {
                    bump!();
                }
            }
            out.toks.push(Tok {
                kind: TokKind::Char,
                text: String::from("'.'"),
                line: tline,
                col: tcol,
            });
            continue;
        }

        // Identifier / keyword.
        if is_ident_start(c) {
            let start = i;
            while i < b.len() && is_ident_continue(b[i]) {
                bump!();
            }
            out.toks.push(Tok {
                kind: TokKind::Ident,
                text: b[start..i].iter().collect(),
                line: tline,
                col: tcol,
            });
            continue;
        }

        // Number.
        if c.is_ascii_digit() {
            let start = i;
            let mut is_float = false;
            if c == '0' && i + 1 < b.len() && matches!(b[i + 1], 'x' | 'X' | 'b' | 'B' | 'o' | 'O')
            {
                bump!();
                bump!();
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == '_') {
                    bump!();
                }
            } else {
                while i < b.len() && (b[i].is_ascii_digit() || b[i] == '_') {
                    bump!();
                }
                // Fractional part: a dot followed by a digit (not `..` or a
                // method call like `1.max(2)`).
                if i + 1 < b.len() && b[i] == '.' && b[i + 1].is_ascii_digit() {
                    is_float = true;
                    bump!();
                    while i < b.len() && (b[i].is_ascii_digit() || b[i] == '_') {
                        bump!();
                    }
                } else if i < b.len()
                    && b[i] == '.'
                    && (i + 1 >= b.len() || (!is_ident_start(b[i + 1]) && b[i + 1] != '.'))
                {
                    // Trailing-dot float like `2.`.
                    is_float = true;
                    bump!();
                }
                // Exponent.
                if i < b.len() && matches!(b[i], 'e' | 'E') {
                    let mut j = i + 1;
                    if j < b.len() && matches!(b[j], '+' | '-') {
                        j += 1;
                    }
                    if j < b.len() && b[j].is_ascii_digit() {
                        is_float = true;
                        while i < j {
                            bump!();
                        }
                        while i < b.len() && (b[i].is_ascii_digit() || b[i] == '_') {
                            bump!();
                        }
                    }
                }
                // Type suffix.
                if i < b.len() && is_ident_start(b[i]) {
                    let sstart = i;
                    while i < b.len() && is_ident_continue(b[i]) {
                        bump!();
                    }
                    let suffix: String = b[sstart..i].iter().collect();
                    if suffix.starts_with('f') {
                        is_float = true;
                    }
                }
            }
            out.toks.push(Tok {
                kind: if is_float {
                    TokKind::Float
                } else {
                    TokKind::Int
                },
                text: b[start..i].iter().collect(),
                line: tline,
                col: tcol,
            });
            continue;
        }

        // Compound punctuation we care about, longest match first.
        const COMPOUND: &[&str] = &[
            "..=", "::", "==", "!=", "<=", ">=", "->", "=>", "..", "+=", "-=", "*=", "/=", "&&",
            "||", "<<", ">>",
        ];
        let mut matched = false;
        for p in COMPOUND {
            let pc: Vec<char> = p.chars().collect();
            if b[i..].starts_with(&pc[..]) {
                for _ in 0..pc.len() {
                    bump!();
                }
                out.toks.push(Tok {
                    kind: TokKind::Punct,
                    text: (*p).to_string(),
                    line: tline,
                    col: tcol,
                });
                matched = true;
                break;
            }
        }
        if matched {
            continue;
        }

        bump!();
        out.toks.push(Tok {
            kind: TokKind::Punct,
            text: c.to_string(),
            line: tline,
            col: tcol,
        });
    }

    out
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Is this line comment a `// press-lint: kernel` hot-path marker?
fn is_kernel_marker(comment: &str) -> bool {
    let marker = "press-lint:";
    let Some(pos) = comment.find(marker) else {
        return false;
    };
    let rest = comment[pos + marker.len()..].trim_start();
    rest == "kernel" || rest.starts_with("kernel ") || rest.starts_with("kernel(")
}

/// Parse `// press-lint: allow(slug, slug2)` out of a line comment.
fn parse_suppression(comment: &str, line: u32, trailing: bool) -> Option<Suppression> {
    let marker = "press-lint:";
    let pos = comment.find(marker)?;
    let rest = comment[pos + marker.len()..].trim_start();
    let rest = rest.strip_prefix("allow")?.trim_start();
    let rest = rest.strip_prefix('(')?;
    let close = rest.find(')')?;
    let slugs: Vec<String> = rest[..close]
        .split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect();
    if slugs.is_empty() {
        return None;
    }
    Some(Suppression {
        line,
        trailing,
        slugs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idents_and_numbers() {
        let l = lex("let snr_db = 3.0 + x_linear * 2;");
        let kinds: Vec<TokKind> = l.toks.iter().map(|t| t.kind).collect();
        assert_eq!(
            kinds,
            vec![
                TokKind::Ident,
                TokKind::Ident,
                TokKind::Punct,
                TokKind::Float,
                TokKind::Punct,
                TokKind::Ident,
                TokKind::Punct,
                TokKind::Int,
                TokKind::Punct,
            ]
        );
    }

    #[test]
    fn strings_and_comments_are_opaque() {
        let l = lex("let s = \"HashMap thread_rng\"; /* HashSet */ // HashMap\n");
        assert!(!l.toks.iter().any(|t| t.text.contains("HashMap")));
    }

    #[test]
    fn range_is_not_a_float() {
        let l = lex("for i in 0..16 {}");
        assert!(l.toks.iter().all(|t| t.kind != TokKind::Float));
        assert!(l.toks.iter().any(|t| t.is_punct("..")));
    }

    #[test]
    fn exponent_and_suffix_floats() {
        for src in ["1e-3", "2.5e9", "1f64", "2."] {
            let l = lex(src);
            assert_eq!(l.toks[0].kind, TokKind::Float, "{src}");
        }
        assert_eq!(lex("1u64").toks[0].kind, TokKind::Int);
    }

    #[test]
    fn lifetimes_vs_chars() {
        let l = lex("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        assert_eq!(
            l.toks
                .iter()
                .filter(|t| t.kind == TokKind::Lifetime)
                .count(),
            2
        );
        assert_eq!(l.toks.iter().filter(|t| t.kind == TokKind::Char).count(), 2);
    }

    #[test]
    fn suppression_comment_parsed() {
        let l = lex("let x = 1; // press-lint: allow(float-ordering, ambient-entropy)\n");
        assert_eq!(l.suppressions.len(), 1);
        assert_eq!(
            l.suppressions[0].slugs,
            vec!["float-ordering", "ambient-entropy"]
        );
        assert_eq!(l.suppressions[0].line, 1);
    }

    #[test]
    fn line_numbers_track() {
        let l = lex("a\nb\n  c");
        assert_eq!(l.toks[0].line, 1);
        assert_eq!(l.toks[1].line, 2);
        assert_eq!(l.toks[2].line, 3);
        assert_eq!(l.toks[2].col, 3);
    }

    #[test]
    fn kernel_markers_collected() {
        let l = lex(
            "// press-lint: kernel\nfn fast(a: &[f64]) {}\nfn slow() {} // press-lint: kernel\n",
        );
        assert_eq!(l.kernel_markers, vec![1, 3]);
        // An allow comment is not a kernel marker, and vice versa.
        let l = lex("// press-lint: allow(kernel-allocation)\n// press-lint: kernelish\n");
        assert!(l.kernel_markers.is_empty());
        assert_eq!(l.suppressions.len(), 1);
    }

    #[test]
    fn raw_strings_skipped() {
        let l = lex("let s = r#\"HashMap \" inner\"#; let t = 1;");
        assert!(!l.toks.iter().any(|t| t.text.contains("HashMap")));
        assert!(l.toks.iter().any(|t| t.is_ident("t")));
    }
}
