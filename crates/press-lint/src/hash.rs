//! FNV-1a 64-bit hashing.
//!
//! Used for two independent keys that both want a stable, dependency-free,
//! cheap content hash:
//! - the incremental cache keys each file's analysis by its content hash, and
//! - the baseline keys each finding by the hash of its (trimmed) source line,
//!   so baselined findings survive the file shifting around them.
//!
//! FNV-1a is not cryptographic and does not need to be: a collision merely
//! serves one stale cached analysis or matches one extra baseline entry, and
//! at 64 bits over a few hundred files that is a non-event.

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Hash a byte string.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Hash the trimmed content of a source line — the baseline key. Trimming
/// means re-indenting a block does not invalidate its baseline entries.
pub fn line_key(line: &str) -> u64 {
    fnv1a64(line.trim().as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a64(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn line_key_ignores_indentation() {
        assert_eq!(line_key("  x.unwrap();"), line_key("\t\tx.unwrap();  "));
        assert_ne!(line_key("x.unwrap();"), line_key("y.unwrap();"));
    }
}
