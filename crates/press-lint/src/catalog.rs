//! The PRESS lint catalog.
//!
//! Six lints, each guarding an invariant the control loop's reproducibility
//! story depends on. See DESIGN.md, "Determinism invariants and the lint
//! catalog", for the full rationale and the seed-stream convention table.

use crate::diag::Severity;

/// Static description of one lint.
#[derive(Debug, Clone, Copy)]
pub struct Lint {
    /// Stable slug used in diagnostics and `allow(...)` comments.
    pub slug: &'static str,
    /// Default severity.
    pub severity: Severity,
    /// One-line summary for `--list`.
    pub summary: &'static str,
}

/// L1: `HashMap`/`HashSet` in simulation crates.
pub const NONDET_ITERATION: Lint = Lint {
    slug: "nondeterministic-iteration",
    severity: Severity::Warning,
    summary:
        "HashMap/HashSet iteration order is randomized per process; use BTreeMap/BTreeSet or sort",
};

/// L2: ambient entropy (`thread_rng`, clocks) outside press-bench.
pub const AMBIENT_ENTROPY: Lint = Lint {
    slug: "ambient-entropy",
    severity: Severity::Error,
    summary: "thread_rng/from_entropy/rand::random/Instant::now/SystemTime::now break per-seed reproducibility",
};

/// L3: RNG constructions must derive from a named seed parameter, and
/// per-link streams must be split in through `link_stream_seed`.
pub const SEED_STREAM: Lint = Lint {
    slug: "seed-stream-discipline",
    severity: Severity::Warning,
    summary: "RNG seeds in library code must derive from a named seed/stream (per-link streams \
              via link_stream_seed), not an ad-hoc literal or hand-mixed link id",
};

/// L4: float ordering via `partial_cmp().unwrap()` or `==` on floats.
pub const FLOAT_ORDERING: Lint = Lint {
    slug: "float-ordering",
    severity: Severity::Warning,
    summary: "partial_cmp().unwrap() panics on NaN and float == is exact; use total_cmp / epsilon",
};

/// L5: arithmetic mixing dB-suffixed and linear-suffixed identifiers.
pub const DB_LINEAR_MIXING: Lint = Lint {
    slug: "db-linear-unit-mixing",
    severity: Severity::Warning,
    summary:
        "mixing *_db with linear-unit identifiers in one expression; convert via press_math::db",
};

/// L6: hidden reduction order in lane-kernel files.
pub const KERNEL_REDUCTION: Lint = Lint {
    slug: "kernel-reduction",
    severity: Severity::Warning,
    summary: "iterator `.sum()` hides its accumulation order; lane-kernel files must spell \
              reductions as explicit in-order folds so bit-identity survives refactors",
};

/// Every lint, in catalog (L1..L6) order.
pub const ALL: &[Lint] = &[
    NONDET_ITERATION,
    AMBIENT_ENTROPY,
    SEED_STREAM,
    FLOAT_ORDERING,
    DB_LINEAR_MIXING,
    KERNEL_REDUCTION,
];

/// Look a lint up by slug (used to validate `allow(...)` lists).
pub fn by_slug(slug: &str) -> Option<&'static Lint> {
    ALL.iter().find(|l| l.slug == slug)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slugs_are_unique_and_resolvable() {
        for (i, a) in ALL.iter().enumerate() {
            assert!(by_slug(a.slug).is_some());
            for b in &ALL[i + 1..] {
                assert_ne!(a.slug, b.slug);
            }
        }
    }
}
