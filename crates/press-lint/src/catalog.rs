//! The PRESS lint catalog.
//!
//! Nine lints, each guarding an invariant the control loop's reproducibility
//! or robustness story depends on. L1–L6 are per-file token lints; L7 and L8
//! are model lints that need the pass-1 workspace symbol model ([`crate::model`]);
//! L9 is a per-file lint with documented carve-outs. See DESIGN.md,
//! "Determinism invariants and the lint catalog", for the full rationale and
//! the generated seed-stream table.

use crate::diag::Severity;

/// Static description of one lint.
#[derive(Debug, Clone, Copy)]
pub struct Lint {
    /// Stable slug used in diagnostics and `allow(...)` comments.
    pub slug: &'static str,
    /// Default severity.
    pub severity: Severity,
    /// One-line summary for `--list`.
    pub summary: &'static str,
}

/// L1: `HashMap`/`HashSet` in simulation crates.
pub const NONDET_ITERATION: Lint = Lint {
    slug: "nondeterministic-iteration",
    severity: Severity::Warning,
    summary:
        "HashMap/HashSet iteration order is randomized per process; use BTreeMap/BTreeSet or sort",
};

/// L2: ambient entropy (`thread_rng`, clocks) outside press-bench.
pub const AMBIENT_ENTROPY: Lint = Lint {
    slug: "ambient-entropy",
    severity: Severity::Error,
    summary: "thread_rng/from_entropy/rand::random/Instant::now/SystemTime::now break per-seed reproducibility",
};

/// L3: RNG constructions must derive from a named seed parameter, and
/// per-link streams must be split in through `link_stream_seed`.
pub const SEED_STREAM: Lint = Lint {
    slug: "seed-stream-discipline",
    severity: Severity::Warning,
    summary: "RNG seeds in library code must derive from a named seed/stream (per-link streams \
              via link_stream_seed), not an ad-hoc literal or hand-mixed link id",
};

/// L4: float ordering via `partial_cmp().unwrap()` or `==` on floats.
pub const FLOAT_ORDERING: Lint = Lint {
    slug: "float-ordering",
    severity: Severity::Warning,
    summary: "partial_cmp().unwrap() panics on NaN and float == is exact; use total_cmp / epsilon",
};

/// L5: arithmetic mixing dB-suffixed and linear-suffixed identifiers.
pub const DB_LINEAR_MIXING: Lint = Lint {
    slug: "db-linear-unit-mixing",
    severity: Severity::Warning,
    summary:
        "mixing *_db with linear-unit identifiers in one expression; convert via press_math::db",
};

/// L6: hidden reduction order in lane-kernel files.
pub const KERNEL_REDUCTION: Lint = Lint {
    slug: "kernel-reduction",
    severity: Severity::Warning,
    summary: "iterator `.sum()` hides its accumulation order; lane-kernel files must spell \
              reductions as explicit in-order folds so bit-identity survives refactors",
};

/// L7: seed streams must provenance-trace through the call graph to a
/// named seed-table entry (model lint; needs the workspace symbol model).
pub const SEED_PROVENANCE: Lint = Lint {
    slug: "seed-stream-provenance",
    severity: Severity::Warning,
    summary: "every RNG stream must trace through the call graph to a named seed-table entry \
              (DESIGN.md); helpers that claim to derive a stream must actually consume a seed",
};

/// L8: hot kernels (`*_into`/`*_scratch`/`*_batched` or `// press-lint:
/// kernel`) and their transitive callees must not allocate (model lint).
pub const KERNEL_ALLOCATION: Lint = Lint {
    slug: "kernel-allocation",
    severity: Severity::Warning,
    summary: "hot kernels (*_into/*_scratch/*_batched or `// press-lint: kernel`) and their \
              callees must not allocate; vec!/collect/clone/Box::new break the zero-alloc \
              steady-state contract",
};

/// L9: library code must not panic.
pub const PANIC_FREEDOM: Lint = Lint {
    slug: "panic-freedom",
    severity: Severity::Warning,
    summary: "unwrap/expect/panic! in non-test library code aborts the whole control loop; \
              return a Result or document the invariant with an allow",
};

/// Every lint, in catalog (L1..L9) order.
pub const ALL: &[Lint] = &[
    NONDET_ITERATION,
    AMBIENT_ENTROPY,
    SEED_STREAM,
    FLOAT_ORDERING,
    DB_LINEAR_MIXING,
    KERNEL_REDUCTION,
    SEED_PROVENANCE,
    KERNEL_ALLOCATION,
    PANIC_FREEDOM,
];

/// Look a lint up by slug (used to validate `allow(...)` lists).
pub fn by_slug(slug: &str) -> Option<&'static Lint> {
    ALL.iter().find(|l| l.slug == slug)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slugs_are_unique_and_resolvable() {
        for (i, a) in ALL.iter().enumerate() {
            assert!(by_slug(a.slug).is_some());
            for b in &ALL[i + 1..] {
                assert_ne!(a.slug, b.slug);
            }
        }
    }
}
