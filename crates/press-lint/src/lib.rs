//! `press-lint` — the PRESS workspace determinism & unit-safety analyzer.
//!
//! PRESS's closed control loop only beats the coherence-time budget if every
//! layer is bit-for-bit reproducible per seed: the basis cache (PR 1) and the
//! transport actuation path (PR 2) were both validated by "the wired episode
//! reproduces the oracle episode exactly", and that style of validation dies
//! the moment a `HashSet` iteration order or a `thread_rng()` sneaks into a
//! simulation crate. This crate is the enforcement arm: a dependency-free
//! static analyzer that lexes every `.rs` file in the workspace and applies
//! the six-lint catalog described in DESIGN.md ("Determinism invariants and
//! the lint catalog"):
//!
//! | lint | guards |
//! |------|--------|
//! | `nondeterministic-iteration` | no `HashMap`/`HashSet` in simulation crates |
//! | `ambient-entropy` | no OS entropy / wall clocks outside press-bench |
//! | `seed-stream-discipline` | RNG seeds derive from named seed streams |
//! | `float-ordering` | no `partial_cmp().unwrap()`, no float `==` outside tests |
//! | `db-linear-unit-mixing` | no arithmetic across dB / linear suffixes |
//! | `kernel-reduction` | no hidden-order `.sum()` reductions in lane-kernel files |
//!
//! Run it as a workspace binary:
//!
//! ```sh
//! cargo run -p press-lint -- check                 # human-readable report
//! cargo run -p press-lint -- check --format json   # machine-readable
//! cargo run -p press-lint -- check --deny-warnings # CI gate: warnings fail
//! ```
//!
//! Findings are suppressed (and counted) with an inline comment on the same
//! or preceding line: `// press-lint: allow(<lint-slug>)`.

#![forbid(unsafe_code)]

pub mod catalog;
pub mod checks;
pub mod context;
pub mod diag;
pub mod lexer;
pub mod workspace;

pub use catalog::{Lint, ALL};
pub use diag::{Diagnostic, Severity};
pub use workspace::{analyze_source, analyze_workspace, find_workspace_root, Report};
