//! `press-lint` — the PRESS workspace determinism & unit-safety analyzer.
//!
//! PRESS's closed control loop only beats the coherence-time budget if every
//! layer is bit-for-bit reproducible per seed: the basis cache (PR 1) and the
//! transport actuation path (PR 2) were both validated by "the wired episode
//! reproduces the oracle episode exactly", and that style of validation dies
//! the moment a `HashSet` iteration order or a `thread_rng()` sneaks into a
//! simulation crate. This crate is the enforcement arm: a dependency-free
//! static analyzer (hand-rolled lexer, no `syn`) that runs in two passes.
//! Pass 1 lexes every `.rs` file in parallel, runs the local lints, and
//! summarizes each file into a workspace symbol model ([`model`]); pass 2
//! runs the dataflow lints over that model. The catalog (DESIGN.md,
//! "Determinism invariants and the lint catalog"):
//!
//! | lint | guards |
//! |------|--------|
//! | `nondeterministic-iteration` | no `HashMap`/`HashSet` in simulation crates |
//! | `ambient-entropy` | no OS entropy / wall clocks outside press-bench |
//! | `seed-stream-discipline` | RNG seeds derive from named seed streams |
//! | `float-ordering` | no `partial_cmp().unwrap()`, no float `==` outside tests |
//! | `db-linear-unit-mixing` | no arithmetic across dB / linear suffixes |
//! | `kernel-reduction` | no hidden-order `.sum()` reductions in lane-kernel files |
//! | `seed-stream-provenance` | streams trace through the call graph to a seed-table entry |
//! | `kernel-allocation` | hot kernels and their callees never touch the allocator |
//! | `panic-freedom` | no `unwrap`/`expect`/`panic!` in non-test library code |
//!
//! Run it as a workspace binary:
//!
//! ```sh
//! cargo run -p press-lint -- check                    # human-readable report
//! cargo run -p press-lint -- check --format json      # machine-readable
//! cargo run -p press-lint -- check --format sarif     # GitHub code scanning
//! cargo run -p press-lint -- check --deny-warnings    # CI gate: warnings fail
//! cargo run -p press-lint -- check --baseline FILE    # subtract accepted findings
//! cargo run -p press-lint -- emit seed-table          # the generated DESIGN.md table
//! ```
//!
//! Re-lints are incremental: pass-1 results are cached per content hash in
//! `target/press-lint.cache` (`--no-cache` to disable), so a warm run only
//! re-lexes files whose bytes changed while pass 2 still sees the whole
//! model. Findings are suppressed (and counted) with an inline comment on
//! the same or preceding line: `// press-lint: allow(<lint-slug>)`.

#![forbid(unsafe_code)]

pub mod baseline;
pub mod cache;
pub mod catalog;
pub mod checks;
pub mod context;
pub mod diag;
pub mod hash;
pub mod lexer;
pub mod model;
pub mod modelcheck;
pub mod sarif;
pub mod seedtable;
pub mod workspace;

pub use catalog::{Lint, ALL};
pub use diag::{Diagnostic, Severity};
pub use workspace::{
    analyze_set, analyze_source, analyze_workspace, analyze_workspace_with, find_workspace_root,
    Options, Report,
};
