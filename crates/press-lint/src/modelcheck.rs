//! Pass 2: the model lints (L7 seed-stream provenance, L8 hot-kernel
//! allocation-freedom).
//!
//! These two rules are the reason the analyzer grew a workspace model: both
//! need facts that live in a *different* function — often a different file —
//! than the line they fire on. L7 asks "does the expression feeding this
//! `seed_from_u64` ultimately consume the episode seed?", which requires
//! knowing what the called helper does with its parameters. L8 asks "does
//! this kernel, or anything it calls, allocate?", which requires the call
//! graph.

use crate::catalog;
use crate::diag::Diagnostic;
use crate::model::{FnRef, Model};

/// Functions that are roots of the seed-stream convention: DESIGN.md names
/// them as the sanctioned splitters, so a stream produced by one is derived
/// by construction.
pub const SEED_ROOTS: &[&str] = &["derive_stream_seed", "link_stream_seed"];

/// Run both model lints, appending raw findings (the caller applies
/// suppressions and sorts).
pub fn run_model(model: &Model, out: &mut Vec<Diagnostic>) {
    check_seed_provenance(model, out);
    check_kernel_allocation(model, out);
}

// ---------------------------------------------------------------------------
// L7: seed-stream-provenance
// ---------------------------------------------------------------------------

/// A seed expression is *provenance-clean* when it traces to the seed table:
/// it calls a sanctioned splitter, calls a helper that demonstrably consumes
/// a seed/stream parameter, or references a seed/stream-named value directly
/// (the local fact L3 already enforces). The new failure mode this lint
/// catches — which no per-file scan can — is the *bogus derivation helper*:
/// a function that looks like a splitter at the call site but ignores its
/// seed, silently collapsing every "derived" stream onto one constant.
fn check_seed_provenance(model: &Model, out: &mut Vec<Diagnostic>) {
    for file in &model.files {
        if file.ctx.bench_crate || file.ctx.test_file {
            continue;
        }
        for call in &file.summary.seed_calls {
            if call.in_test {
                continue;
            }
            let mut trusted = false;
            let mut bogus: Option<(&str, &str)> = None; // (helper, why)
            for arg in &call.arg_calls {
                if SEED_ROOTS.contains(&arg.name.as_str()) {
                    trusted = true;
                    break;
                }
                if let Some(r) = model.resolve_unique(&arg.name) {
                    let f = model.func(r);
                    if f.seed_param && f.uses_seed_param {
                        trusted = true;
                        break;
                    }
                    bogus = Some((
                        &f.name,
                        if f.seed_param {
                            "takes a seed parameter but never uses it"
                        } else {
                            "has no seed/stream parameter at all"
                        },
                    ));
                }
            }
            if trusted {
                continue;
            }
            if let Some((helper, why)) = bogus {
                out.push(Diagnostic {
                    lint: catalog::SEED_PROVENANCE.slug,
                    severity: catalog::SEED_PROVENANCE.severity,
                    file: file.ctx.rel_path.clone(),
                    line: call.line,
                    col: call.col,
                    message: format!(
                        "stream `{}` is built by `{}`, which {} — every stream it returns \
                         is the same stream, untied to the episode seed",
                        call.stream_expr, helper, why
                    ),
                    help: HELP_L7,
                });
                continue;
            }
            // No resolvable helper: fall back to the local fact. L3 already
            // flags literal seeds; L7 only adds a finding when the
            // expression neither derives locally nor names a known const.
            let is_known_const = call
                .stream_expr
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_')
                && model.has_const(&call.stream_expr);
            if !call.derives_locally && !is_known_const && call.arg_calls.is_empty() {
                out.push(Diagnostic {
                    lint: catalog::SEED_PROVENANCE.slug,
                    severity: catalog::SEED_PROVENANCE.severity,
                    file: file.ctx.rel_path.clone(),
                    line: call.line,
                    col: call.col,
                    message: format!(
                        "stream `{}` does not trace to any seed-table entry: no splitter \
                         call, no seed/stream-named value, no workspace const",
                        call.stream_expr
                    ),
                    help: HELP_L7,
                });
            }
        }
    }
}

const HELP_L7: &str = "derive the stream with derive_stream_seed/link_stream_seed or another \
                       helper that consumes the episode seed; the generated seed table in \
                       DESIGN.md lists every sanctioned stream";

// ---------------------------------------------------------------------------
// L8: kernel-allocation
// ---------------------------------------------------------------------------

/// First allocation reachable from a function: either a direct site or the
/// call edge that leads to one.
#[derive(Debug, Clone)]
enum Reach {
    Clean,
    /// (what, file rel_path, line) of the allocation this fn reaches.
    Alloc(String, String, u32),
}

/// Hot kernels must be allocation-free, transitively. Direct allocations are
/// flagged at the allocation site; an allocation inside a callee is flagged
/// at the *call site in the kernel*, naming where the allocation actually
/// lives — the kernel author sees the edge they own, with a pointer to the
/// line they don't.
fn check_kernel_allocation(model: &Model, out: &mut Vec<Diagnostic>) {
    let mut memo: std::collections::BTreeMap<FnRef, Reach> = std::collections::BTreeMap::new();
    for (pi, file) in model.files.iter().enumerate() {
        if file.ctx.bench_crate || file.ctx.test_file {
            continue;
        }
        for (fi, f) in file.summary.fns.iter().enumerate() {
            if !f.kernel || f.in_test {
                continue;
            }
            // Direct allocations: flagged where they happen.
            for a in &f.allocs {
                out.push(Diagnostic {
                    lint: catalog::KERNEL_ALLOCATION.slug,
                    severity: catalog::KERNEL_ALLOCATION.severity,
                    file: file.ctx.rel_path.clone(),
                    line: a.line,
                    col: a.col,
                    message: format!(
                        "allocation (`{}`) inside hot kernel `{}`; the zero-alloc contract \
                         says steady-state calls must not touch the allocator",
                        a.what, f.name
                    ),
                    help: HELP_L8,
                });
            }
            // Transitive allocations: flagged at the call edge.
            for call in &f.calls {
                let Some(r) = model.resolve_unique(&call.name) else {
                    continue;
                };
                if r == (pi, fi) {
                    continue; // self-recursion
                }
                let mut visiting = std::collections::BTreeSet::new();
                visiting.insert((pi, fi));
                if let Reach::Alloc(what, where_file, where_line) =
                    reaches_alloc(model, r, &mut memo, &mut visiting)
                {
                    out.push(Diagnostic {
                        lint: catalog::KERNEL_ALLOCATION.slug,
                        severity: catalog::KERNEL_ALLOCATION.severity,
                        file: file.ctx.rel_path.clone(),
                        line: call.line,
                        col: call.col,
                        message: format!(
                            "hot kernel `{}` calls `{}`, which reaches an allocation \
                             (`{}` at {}:{})",
                            f.name, call.name, what, where_file, where_line
                        ),
                        help: HELP_L8,
                    });
                }
            }
        }
    }
}

const HELP_L8: &str = "hoist the allocation into a setup/plan path, reuse caller-provided \
                       scratch, or — for one-time setup inside the kernel — document it \
                       with `// press-lint: allow(kernel-allocation)`";

/// Memoized DFS: does `r` (or anything it calls) allocate?
fn reaches_alloc(
    model: &Model,
    r: FnRef,
    memo: &mut std::collections::BTreeMap<FnRef, Reach>,
    visiting: &mut std::collections::BTreeSet<FnRef>,
) -> Reach {
    if let Some(cached) = memo.get(&r) {
        return cached.clone();
    }
    if !visiting.insert(r) {
        return Reach::Clean; // cycle: charged to the first entry
    }
    let f = model.func(r);
    let result = if let Some(a) = f.allocs.first() {
        Reach::Alloc(
            a.what.clone(),
            model.files[r.0].ctx.rel_path.clone(),
            a.line,
        )
    } else {
        let mut found = Reach::Clean;
        for call in &f.calls {
            if let Some(callee) = model.resolve_unique(&call.name) {
                if let Reach::Alloc(w, p, l) = reaches_alloc(model, callee, memo, visiting) {
                    found = Reach::Alloc(w, p, l);
                    break;
                }
            }
        }
        found
    };
    visiting.remove(&r);
    memo.insert(r, result.clone());
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{test_regions, FileContext};
    use crate::lexer::lex;
    use crate::model::{summarize, ModelFile};

    fn build(files: &[(&str, &str)]) -> Model {
        Model::new(
            files
                .iter()
                .map(|(path, src)| {
                    let lexed = lex(src);
                    let regions = test_regions(&lexed.toks);
                    ModelFile {
                        ctx: FileContext::from_rel_path(path),
                        summary: summarize(&lexed, &regions),
                    }
                })
                .collect(),
        )
    }

    fn lint(files: &[(&str, &str)]) -> Vec<Diagnostic> {
        let model = build(files);
        let mut out = Vec::new();
        run_model(&model, &mut out);
        out
    }

    const A: &str = "crates/press-core/src/a.rs";
    const B: &str = "crates/press-core/src/b.rs";

    #[test]
    fn l7_bogus_helper_without_seed_param_flagged() {
        let d = lint(&[(
            A,
            "fn fresh_stream(n: u64) -> u64 { n.wrapping_mul(3) }\n\
             fn run() { let r = StdRng::seed_from_u64(fresh_stream(7)); }\n",
        )]);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].lint, "seed-stream-provenance");
        assert!(d[0].message.contains("no seed/stream parameter"));
    }

    #[test]
    fn l7_helper_that_ignores_its_seed_flagged() {
        let d = lint(&[(
            A,
            "fn derive(seed: u64, k: u64) -> u64 { k.wrapping_mul(31) }\n\
             fn run(base: u64, k: u64) { let r = StdRng::seed_from_u64(derive(base, k)); }\n",
        )]);
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("never uses it"));
    }

    #[test]
    fn l7_cross_file_trusted_helper_is_clean() {
        let d = lint(&[
            (A, "pub fn split(seed: u64, k: u64) -> u64 { seed ^ k }\n"),
            (
                B,
                "fn run(base: u64) { let r = StdRng::seed_from_u64(split(base, 2)); }\n",
            ),
        ]);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn l7_cross_file_bogus_helper_is_flagged() {
        let d = lint(&[
            (A, "pub fn split(seed: u64, k: u64) -> u64 { k }\n"),
            (
                B,
                "fn run(base: u64) { let r = StdRng::seed_from_u64(split(base, 2)); }\n",
            ),
        ]);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].file, B);
    }

    #[test]
    fn l7_roots_and_local_derivation_are_clean() {
        let d = lint(&[(
            A,
            "fn run(seed: u64) {\n\
                 let a = StdRng::seed_from_u64(derive_stream_seed(seed, 1, 0));\n\
                 let b = StdRng::seed_from_u64(seed.wrapping_add(2));\n\
             }\n",
        )]);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn l7_test_code_and_bench_are_exempt() {
        let d = lint(&[
            (
                A,
                "#[cfg(test)]\nmod t { fn f() { let r = StdRng::seed_from_u64(mix(7)); } }\n\
                 fn mix(n: u64) -> u64 { n }\n",
            ),
            (
                "crates/press-bench/src/lib.rs",
                "fn f() { let r = StdRng::seed_from_u64(mix(9)); }\n",
            ),
        ]);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn l8_direct_allocation_in_kernel_flagged_at_site() {
        let d = lint(&[(
            A,
            "fn synth_into(out: &mut [f64]) {\n\
                 let tmp = vec![0.0; 4];\n\
                 out[0] = tmp[0];\n\
             }\n",
        )]);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].lint, "kernel-allocation");
        assert_eq!(d[0].line, 2);
        assert!(d[0].message.contains("vec!"));
    }

    #[test]
    fn l8_transitive_allocation_flagged_at_call_edge() {
        let d = lint(&[
            (A, "pub fn helper(n: usize) -> f64 { let v = Vec::with_capacity(n); v.len() as f64 }\n"),
            (
                B,
                "fn score_batched(out: &mut [f64]) {\n\
                     out[0] = helper(4);\n\
                 }\n",
            ),
        ]);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].file, B, "flagged at the call edge, not in the helper");
        assert_eq!(d[0].line, 2);
        assert!(d[0].message.contains("helper"));
        assert!(d[0].message.contains("Vec::with_capacity"));
        assert!(d[0].message.contains("a.rs:1"));
    }

    #[test]
    fn l8_marker_comment_promotes_a_fn_into_the_kernel_set() {
        let d = lint(&[(
            A,
            "// press-lint: kernel\n\
             fn score4(h: &[f64]) -> f64 { let v = h.to_vec(); v[0] }\n",
        )]);
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("score4"));
    }

    #[test]
    fn l8_clean_kernel_and_non_kernel_allocs_pass() {
        let d = lint(&[(
            A,
            "fn synth_into(out: &mut [f64], scratch: &mut [f64]) {\n\
                 for i in 0..out.len() { out[i] = scratch[i] * 2.0; }\n\
             }\n\
             fn plan(n: usize) -> Vec<f64> { vec![0.0; n] }\n",
        )]);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn l8_recursion_terminates() {
        let d = lint(&[(
            A,
            "fn ping(n: u64) -> u64 { if n == 0 { 0 } else { pong(n - 1) } }\n\
             fn pong(n: u64) -> u64 { ping(n) }\n\
             fn drive_into(out: &mut [u64]) { out[0] = ping(3); }\n",
        )]);
        assert!(d.is_empty(), "{d:?}");
    }
}
