//! CLI for the PRESS workspace analyzer.
//!
//! ```text
//! press-lint check [--format human|json] [--deny-warnings] [--root PATH]
//! press-lint list
//! ```
//!
//! Exit codes: 0 clean, 1 findings (any error, or any warning under
//! `--deny-warnings`), 2 usage/IO error.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use press_lint::diag::{json_str, Severity};
use press_lint::{analyze_workspace, catalog, find_workspace_root};

struct Opts {
    json: bool,
    deny_warnings: bool,
    root: Option<PathBuf>,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: press-lint check [--format human|json] [--deny-warnings] [--root PATH]\n\
         \u{20}      press-lint list"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    match cmd.as_str() {
        "list" => {
            for lint in catalog::ALL {
                println!(
                    "{:<28} {:<8} {}",
                    lint.slug,
                    lint.severity.to_string(),
                    lint.summary
                );
            }
            ExitCode::SUCCESS
        }
        "check" => {
            let mut opts = Opts {
                json: false,
                deny_warnings: false,
                root: None,
            };
            let mut it = args[1..].iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--format" => match it.next().map(String::as_str) {
                        Some("human") => opts.json = false,
                        Some("json") => opts.json = true,
                        _ => return usage(),
                    },
                    "--deny-warnings" => opts.deny_warnings = true,
                    "--root" => match it.next() {
                        Some(p) => opts.root = Some(PathBuf::from(p)),
                        None => return usage(),
                    },
                    _ => return usage(),
                }
            }
            run_check(opts)
        }
        _ => usage(),
    }
}

fn run_check(opts: Opts) -> ExitCode {
    let root = match opts.root.or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|d| find_workspace_root(&d))
    }) {
        Some(r) => r,
        None => {
            eprintln!(
                "press-lint: could not locate a workspace root (missing [workspace] Cargo.toml)"
            );
            return ExitCode::from(2);
        }
    };
    let report = match analyze_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("press-lint: {e}");
            return ExitCode::from(2);
        }
    };

    let errors = report
        .diagnostics
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count();
    let warnings = report.diagnostics.len() - errors;

    if opts.json {
        let mut out = String::from("{\"diagnostics\":[");
        for (i, d) in report.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&d.render_json());
        }
        out.push_str(&format!(
            "],\"files_scanned\":{},\"suppressed\":{},\"errors\":{},\"warnings\":{},\"root\":{}}}",
            report.files,
            report.suppressed,
            errors,
            warnings,
            json_str(&root.to_string_lossy()),
        ));
        println!("{out}");
    } else {
        for d in &report.diagnostics {
            println!("{}", d.render_human());
        }
        println!(
            "press-lint: {} file(s) scanned, {} error(s), {} warning(s), {} suppressed",
            report.files, errors, warnings, report.suppressed
        );
    }

    if errors > 0 || (opts.deny_warnings && warnings > 0) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
