//! CLI for the PRESS workspace analyzer.
//!
//! ```text
//! press-lint check [--format human|json|sarif] [--deny-warnings] [--root PATH]
//!                  [--baseline FILE] [--write-baseline FILE]
//!                  [--cache FILE | --no-cache] [--jobs N]
//! press-lint emit seed-table [--root PATH]
//! press-lint list
//! ```
//!
//! Exit codes: 0 clean, 1 findings (any error, or any warning under
//! `--deny-warnings`), 2 usage/IO error. Stale baseline entries count as
//! findings under `--deny-warnings`: the baseline only ever shrinks.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use press_lint::diag::{json_str, Severity};
use press_lint::workspace::{analyze_workspace_with, build_model, Options};
use press_lint::{baseline, catalog, find_workspace_root, hash, sarif, seedtable};

#[derive(PartialEq)]
enum Format {
    Human,
    Json,
    Sarif,
}

struct Opts {
    format: Format,
    deny_warnings: bool,
    root: Option<PathBuf>,
    baseline: Option<PathBuf>,
    write_baseline: Option<PathBuf>,
    cache: Option<PathBuf>,
    no_cache: bool,
    jobs: usize,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: press-lint check [--format human|json|sarif] [--deny-warnings] [--root PATH]\n\
         \u{20}                       [--baseline FILE] [--write-baseline FILE]\n\
         \u{20}                       [--cache FILE | --no-cache] [--jobs N]\n\
         \u{20}      press-lint emit seed-table [--root PATH]\n\
         \u{20}      press-lint list"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    match cmd.as_str() {
        "list" => {
            for lint in catalog::ALL {
                println!(
                    "{:<28} {:<8} {}",
                    lint.slug,
                    lint.severity.to_string(),
                    lint.summary
                );
            }
            ExitCode::SUCCESS
        }
        "emit" => {
            if args.get(1).map(String::as_str) != Some("seed-table") {
                return usage();
            }
            let mut root = None;
            let mut it = args[2..].iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--root" => match it.next() {
                        Some(p) => root = Some(PathBuf::from(p)),
                        None => return usage(),
                    },
                    _ => return usage(),
                }
            }
            let Some(root) = locate_root(root) else {
                return ExitCode::from(2);
            };
            match build_model(&root) {
                Ok(model) => {
                    print!("{}", seedtable::emit(&model));
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("press-lint: {e}");
                    ExitCode::from(2)
                }
            }
        }
        "check" => {
            let mut opts = Opts {
                format: Format::Human,
                deny_warnings: false,
                root: None,
                baseline: None,
                write_baseline: None,
                cache: None,
                no_cache: false,
                jobs: 0,
            };
            let mut it = args[1..].iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--format" => match it.next().map(String::as_str) {
                        Some("human") => opts.format = Format::Human,
                        Some("json") => opts.format = Format::Json,
                        Some("sarif") => opts.format = Format::Sarif,
                        _ => return usage(),
                    },
                    "--deny-warnings" => opts.deny_warnings = true,
                    "--no-cache" => opts.no_cache = true,
                    "--root" | "--baseline" | "--write-baseline" | "--cache" | "--jobs" => {
                        let Some(v) = it.next() else { return usage() };
                        match a.as_str() {
                            "--root" => opts.root = Some(PathBuf::from(v)),
                            "--baseline" => opts.baseline = Some(PathBuf::from(v)),
                            "--write-baseline" => opts.write_baseline = Some(PathBuf::from(v)),
                            "--cache" => opts.cache = Some(PathBuf::from(v)),
                            _ => match v.parse() {
                                Ok(n) => opts.jobs = n,
                                Err(_) => return usage(),
                            },
                        }
                    }
                    _ => return usage(),
                }
            }
            run_check(opts)
        }
        _ => usage(),
    }
}

fn locate_root(explicit: Option<PathBuf>) -> Option<PathBuf> {
    let root = explicit.or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|d| find_workspace_root(&d))
    });
    if root.is_none() {
        eprintln!("press-lint: could not locate a workspace root (missing [workspace] Cargo.toml)");
    }
    root
}

fn run_check(opts: Opts) -> ExitCode {
    let Some(root) = locate_root(opts.root) else {
        return ExitCode::from(2);
    };
    let cache_path = if opts.no_cache {
        None
    } else {
        Some(
            opts.cache
                .unwrap_or_else(|| root.join("target").join("press-lint.cache")),
        )
    };
    let options = Options {
        cache_path,
        jobs: opts.jobs,
        baseline: opts.baseline,
    };
    let report = match analyze_workspace_with(&root, &options) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("press-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if let Some(path) = &opts.write_baseline {
        // A baseline absorbing exactly the current (post-suppression)
        // findings. Keyed by trimmed-line hash, so we re-read the sources.
        let text = baseline::render(&report.diagnostics, |file, line| {
            std::fs::read_to_string(root.join(file))
                .ok()
                .and_then(|src| {
                    src.lines()
                        .nth(line.saturating_sub(1) as usize)
                        .map(hash::line_key)
                })
                .unwrap_or(0)
        });
        if let Err(e) = std::fs::write(path, text) {
            eprintln!("press-lint: writing baseline: {e}");
            return ExitCode::from(2);
        }
        eprintln!(
            "press-lint: wrote baseline ({} finding(s)) to {}",
            report.diagnostics.len(),
            path.display()
        );
    }

    let errors = report
        .diagnostics
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count();
    let warnings = report.diagnostics.len() - errors;
    let stale = report.stale_baseline.len();

    match opts.format {
        Format::Json => {
            let mut out = String::from("{\"diagnostics\":[");
            for (i, d) in report.diagnostics.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&d.render_json());
            }
            out.push_str(&format!(
                "],\"files_scanned\":{},\"suppressed\":{},\"baselined\":{},\
                 \"stale_baseline\":{},\"cache_hits\":{},\"cache_misses\":{},\
                 \"errors\":{},\"warnings\":{},\"root\":{}}}",
                report.files,
                report.suppressed,
                report.baselined,
                stale,
                report.cache_hits,
                report.cache_misses,
                errors,
                warnings,
                json_str(&root.to_string_lossy()),
            ));
            println!("{out}");
        }
        Format::Sarif => {
            println!("{}", sarif::render(&report.diagnostics));
        }
        Format::Human => {
            for d in &report.diagnostics {
                println!("{}", d.render_human());
            }
            for e in &report.stale_baseline {
                println!(
                    "stale baseline entry: {} in {} (x{}) no longer matches anything — delete it\n",
                    e.lint, e.file, e.count
                );
            }
            println!(
                "press-lint: {} file(s) scanned ({} cached, {} linted), {} error(s), \
                 {} warning(s), {} suppressed, {} baselined",
                report.files,
                report.cache_hits,
                report.cache_misses,
                errors,
                warnings,
                report.suppressed,
                report.baselined
            );
        }
    }

    if errors > 0 || (opts.deny_warnings && (warnings > 0 || stale > 0)) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
