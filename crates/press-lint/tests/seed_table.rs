//! The generated seed-table section of `DESIGN.md` must match the code.
//!
//! `DESIGN.md` carries, between `<!-- press-lint:seed-table:begin/end -->`
//! markers, the output of `press-lint emit seed-table`: every library
//! `seed_from_u64` site grouped by stream expression. This test regenerates
//! the table from the live workspace model and fails on any drift — add a
//! seed stream without re-running the emitter and CI reminds you.

use std::path::Path;

#[test]
fn design_md_seed_table_matches_the_workspace() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let doc = std::fs::read_to_string(root.join("DESIGN.md")).expect("DESIGN.md");
    let documented = press_lint::seedtable::extract_section(&doc)
        .expect("DESIGN.md is missing the press-lint:seed-table markers");

    let model = press_lint::workspace::build_model(&root).expect("workspace model");
    let generated = press_lint::seedtable::emit(&model);

    assert_eq!(
        documented.trim(),
        generated.trim(),
        "DESIGN.md seed table drifted from the code — regenerate it with\n\
         `cargo run -p press-lint -- emit seed-table` and paste the output\n\
         between the markers"
    );
}
