//! L3 clean fixture: streams derive from the named seed parameter, following
//! the controller's `seed` / `seed+1` / `seed+2` convention.

fn measure(seed: u64, n: usize) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed.wrapping_add(1));
    let mut verify_rng = StdRng::seed_from_u64(derive_stream_seed(seed, 2, 0));
    (0..n).map(|_| rng.gen::<f64>() + verify_rng.gen::<f64>()).collect()
}
