//! Clean: events carry the emulated episode clock only; no wall clock is
//! ever attached outside press-bench.

pub fn emit(tracer: &mut press_trace::Tracer<press_trace::MemorySink>, t_s: f64) {
    tracer.emit(
        t_s,
        press_trace::EventKind::PhaseStart {
            phase: press_trace::Phase::Measure,
        },
    );
}
