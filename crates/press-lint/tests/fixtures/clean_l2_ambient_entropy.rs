//! L2 clean fixture: explicit seeding, simulated time.

fn jitter(seed: u64, sim_time_s: f64) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    sim_time_s + rng.gen::<f64>()
}
