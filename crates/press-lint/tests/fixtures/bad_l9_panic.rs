//! L9 fixture: aborts reachable from library code. A daemonized control
//! loop cannot absorb any of these.

fn pick_best(xs: &[(usize, f64)]) -> usize {
    let first = xs.first().unwrap();
    let named = xs.last().expect("non-empty");
    if first.1 < 0.0 {
        panic!("negative score");
    }
    first.0 + named.0
}

fn dispatch(kind: u8) -> f64 {
    match kind {
        0 => 1.0,
        _ => unreachable!(),
    }
}
