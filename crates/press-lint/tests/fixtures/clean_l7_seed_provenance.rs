//! L7 clean fixture: every `seed_from_u64` argument chains back to the
//! sanctioned splitters or to a helper that genuinely mixes its seed.

/// A helper that really derives from its seed parameter: trusted.
fn trial_stream_seed(seed: u64, trial: u64) -> u64 {
    seed.wrapping_add(trial.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

fn run(seed: u64, n: usize) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(derive_stream_seed(seed, 0, 1));
    let mut rng2 = StdRng::seed_from_u64(trial_stream_seed(seed, 3));
    (0..n).map(|_| rng.gen::<f64>() + rng2.gen::<f64>()).collect()
}
