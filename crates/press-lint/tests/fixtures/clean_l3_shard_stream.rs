//! L3 clean fixture (per-shard sub-rule): shard streams keyed to the
//! shard's lead link through the dedicated helpers, the discipline the
//! sharded scheduler follows — a shard's stream depends only on its own
//! membership, never on its position in the shard list.

fn per_shard_rng(seed: u64, shard_lead_link: u64) -> StdRng {
    StdRng::seed_from_u64(link_stream_seed(seed, shard_lead_link, 0))
}

fn raw_split(seed: u64, shard_idx: u64) -> StdRng {
    StdRng::seed_from_u64(derive_stream_seed(seed, shard_idx, 4))
}
