//! L9 clean fixture: fallible paths return `Result` or carry a documented
//! allow; assertions and the non-panicking combinators are fine.

fn pick_best(xs: &[(usize, f64)]) -> Option<usize> {
    let first = xs.first()?;
    Some(first.0)
}

fn mean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "caller contract");
    xs.iter().sum::<f64>() / xs.len() as f64
}

fn clamped(x: Option<f64>) -> f64 {
    x.unwrap_or(0.0).max(0.0)
}

fn documented(xs: &[f64]) -> f64 {
    // The loop above guarantees one element.
    *xs.first().expect("non-empty by construction") // press-lint: allow(panic-freedom) — caller contract
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        let v: Option<u32> = Some(3);
        assert_eq!(v.unwrap(), 3);
    }
}
