//! Fixture: wall-clock use that is legal in the pressd I/O shell and
//! illegal everywhere else. Analyzed under several rel-paths by the L2
//! carve-out tests.
use std::time::Instant;

pub fn run_with_heartbeat() {
    let started = Instant::now();
    serve();
    eprintln!("served in {:?}", started.elapsed());
}

fn serve() {}
