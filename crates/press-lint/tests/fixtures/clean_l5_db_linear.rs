//! L5 clean fixture: scales converted through press_math::db before mixing.

fn link_budget(tx_power_dbm: f64, path_gain_linear: f64, noise_mw: f64) -> f64 {
    let rx_dbm = tx_power_dbm + pow_to_db(path_gain_linear);
    let floor_dbm = mw_to_dbm(noise_mw);
    rx_dbm - floor_dbm
}
