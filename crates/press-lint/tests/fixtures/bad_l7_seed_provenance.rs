//! L7 fixture: seed "derivations" that look disciplined but do not actually
//! flow the episode seed anywhere. Each helper has a seedish name, so the
//! local L3 rule is satisfied — only the workspace call-graph pass can see
//! that the provenance chain is broken.

/// Takes a seed and throws it away: every "stream" is the same stream.
fn stream_for(seed: u64, k: u64) -> u64 {
    k.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// No seed parameter at all: the stream is invented from thin air.
fn fresh_stream(k: u64) -> u64 {
    k.wrapping_add(41)
}

fn run_trials(seed: u64, n: usize) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(stream_for(seed, 2));
    let mut rng2 = StdRng::seed_from_u64(fresh_stream(7));
    (0..n).map(|_| rng.gen::<f64>() + rng2.gen::<f64>()).collect()
}
