//! L4 clean fixture: total order and epsilon comparison.

fn best(xs: &mut [f64], snr: f64) -> f64 {
    xs.sort_by(f64::total_cmp);
    if (snr - 20.0).abs() < 1e-9 {
        return xs[0];
    }
    xs[xs.len() - 1]
}
