//! L8 fixture: hot kernels that allocate. `synthesize_row_into` matches the
//! kernel naming idiom; `fast_score` is promoted by an explicit marker.

fn synthesize_row_into(n: usize, out: &mut Vec<f64>) {
    // The temporary defeats the whole point of the `_into` contract.
    let tmp: Vec<f64> = (0..n).map(|k| k as f64).collect();
    out.clear();
    out.extend_from_slice(&tmp);
}

// press-lint: kernel
fn fast_score(xs: &[f64]) -> f64 {
    let doubled = vec![0.0; xs.len()];
    xs.iter().sum::<f64>() + doubled.len() as f64
}
