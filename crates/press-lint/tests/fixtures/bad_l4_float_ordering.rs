//! L4 fixture: NaN-unsafe ordering and exact float equality.

fn best(xs: &mut [f64], snr: f64) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    if snr == 20.0 {
        return xs[0];
    }
    xs[xs.len() - 1]
}
