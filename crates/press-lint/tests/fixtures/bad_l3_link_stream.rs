//! L3 fixture (per-link sub-rule): a link identity XOR-mixed into the seed
//! by hand. `seed ^ link_id` collides with the scalar `seed+n` streams for
//! small ids and correlates streams across links; the convention is
//! `link_stream_seed(seed, link_id, stream)`.

fn per_link_rng(seed: u64, link_id: u64) -> StdRng {
    StdRng::seed_from_u64(seed ^ link_id)
}
