//! L1 fixture: hash collections in a simulation crate.

use std::collections::HashMap;

fn tally(xs: &[u32]) -> Vec<(u32, usize)> {
    let mut counts: HashMap<u32, usize> = HashMap::new();
    for &x in xs {
        *counts.entry(x).or_insert(0) += 1;
    }
    // Iteration order here varies per process: the bug L1 exists to catch.
    counts.into_iter().collect()
}
