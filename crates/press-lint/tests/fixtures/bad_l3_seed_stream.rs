//! L3 fixture: an ad-hoc literal seed in library code. Nothing connects this
//! RNG stream to the episode seed, so per-seed replay silently diverges.

fn measure(n: usize) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(0xDEADBEEF);
    (0..n).map(|_| rng.gen::<f64>()).collect()
}
