//! Bad: attaches a wall clock to a tracer inside a simulation crate.

pub fn attach(tracer: &mut press_trace::Tracer<press_trace::NullSink>) {
    tracer.set_wall_clock(|| 0.0);
}
