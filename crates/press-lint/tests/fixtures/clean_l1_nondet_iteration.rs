//! L1 clean fixture: ordered collections keep iteration deterministic.

use std::collections::BTreeMap;

fn tally(xs: &[u32]) -> Vec<(u32, usize)> {
    let mut counts: BTreeMap<u32, usize> = BTreeMap::new();
    for &x in xs {
        *counts.entry(x).or_insert(0) += 1;
    }
    counts.into_iter().collect()
}
