//! L6 fixture: a lane-kernel file whose reduction hides its order.

fn lanes_add(acc: &mut [f64], col: &[f64]) {
    for (a, c) in acc.chunks_exact_mut(4).zip(col.chunks_exact(4)) {
        for l in 0..4 {
            a[l] += c[l];
        }
    }
}

fn total_power(h: &[f64]) -> f64 {
    h.iter().map(|x| x * x).sum()
}
