//! L5 fixture: dB values summed with linear-scale values. The compiler sees
//! two f64s; the physics sees a factor-of-10^x error.

fn link_budget(tx_power_dbm: f64, path_gain_linear: f64, noise_mw: f64) -> f64 {
    let rx = tx_power_dbm + path_gain_linear;
    let floor_db = noise_mw * 3.01;
    rx - floor_db + noise_mw
}
