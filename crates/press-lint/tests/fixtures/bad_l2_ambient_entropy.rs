//! L2 fixture: OS entropy and wall clocks in simulation code.

use std::time::Instant;

fn jitter() -> f64 {
    let started = Instant::now();
    let mut rng = rand::thread_rng();
    let x: f64 = rand::random();
    started.elapsed().as_secs_f64() + x + rng.gen::<f64>()
}
