//! L3 fixture (per-shard sub-rule): a shard identity folded into the seed
//! by hand. `seed + shard_idx` collides with the scalar `seed+n` streams
//! outright; the convention is `link_stream_seed(seed, lead_link, stream)`
//! keyed on the shard's lead link (or a raw `derive_stream_seed` split).

fn per_shard_rng(seed: u64, shard_idx: u64) -> StdRng {
    StdRng::seed_from_u64(seed + shard_idx)
}
