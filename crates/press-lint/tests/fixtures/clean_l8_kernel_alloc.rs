//! L8 clean fixture: the kernel writes in place; its setup-time sibling may
//! allocate freely because it does not match the hot-kernel idiom.

fn synthesize_row_into(n: usize, out: &mut [f64]) {
    for (k, slot) in out.iter_mut().enumerate().take(n) {
        *slot = k as f64;
    }
}

/// Setup-time: builds the scratch the kernel fills. Allocation is fine here.
fn make_buffer(n: usize) -> Vec<f64> {
    vec![0.0; n]
}
