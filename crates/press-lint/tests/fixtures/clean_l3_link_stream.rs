//! L3 clean fixture (per-link sub-rule): link streams split in through the
//! dedicated helpers, so they neither collide with the scalar `seed+n`
//! streams nor correlate across links.

fn per_link_rng(seed: u64, link_id: u64) -> StdRng {
    StdRng::seed_from_u64(link_stream_seed(seed, link_id, 0))
}

fn raw_split(seed: u64, link_id: u64) -> StdRng {
    StdRng::seed_from_u64(derive_stream_seed(seed, link_id, 1))
}
