//! Suppression fixture: violations silenced by `press-lint: allow(..)` on
//! the same line and on the preceding line, plus one left unsilenced.

use std::collections::HashSet; // press-lint: allow(nondeterministic-iteration)

fn is_origin(x: f64) -> bool {
    // Exact zero is intentional here.
    // press-lint: allow(float-ordering)
    x == 0.0
}

fn leaks() -> HashSet<u32> {
    HashSet::new()
}
