//! The analyzer's most important test: the PRESS workspace itself is
//! lint-clean. If this fails, either a violation landed or a lint regressed
//! into a false positive — both are bugs worth failing the build over.

use std::path::Path;

#[test]
fn workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = press_lint::analyze_workspace(&root).expect("workspace scan");
    assert!(
        report.files > 100,
        "expected to scan the whole workspace, got {} files",
        report.files
    );
    let rendered: String = report
        .diagnostics
        .iter()
        .map(|d| d.render_human())
        .collect::<Vec<_>>()
        .join("\n");
    assert!(
        report.diagnostics.is_empty(),
        "workspace has lint findings:\n{rendered}"
    );
}

#[test]
fn suppressions_in_tree_are_counted() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = press_lint::analyze_workspace(&root).expect("workspace scan");
    // The exact-zero guards in basis/bandit/fault/inverse/geometry carry
    // documented allows; if this drops to zero the comments went stale.
    assert!(
        report.suppressed >= 5,
        "expected the documented allow() sites, found {}",
        report.suppressed
    );
}
