//! The analyzer's most important test: the PRESS workspace itself is
//! lint-clean. If this fails, either a violation landed or a lint regressed
//! into a false positive — both are bugs worth failing the build over.

use std::path::Path;

#[test]
fn workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = press_lint::analyze_workspace(&root).expect("workspace scan");
    assert!(
        report.files > 100,
        "expected to scan the whole workspace, got {} files",
        report.files
    );
    let rendered: String = report
        .diagnostics
        .iter()
        .map(|d| d.render_human())
        .collect::<Vec<_>>()
        .join("\n");
    assert!(
        report.diagnostics.is_empty(),
        "workspace has lint findings:\n{rendered}"
    );
}

#[test]
fn suppressions_in_tree_are_counted() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = press_lint::analyze_workspace(&root).expect("workspace scan");
    // The exact-zero guards in basis/bandit/fault/inverse/geometry, the
    // invariant-backed panic-freedom allows, and the one-time-setup
    // kernel-allocation allows are all documented in-tree; if this drops
    // sharply the comments went stale.
    assert!(
        report.suppressed >= 50,
        "expected the documented allow() sites, found {}",
        report.suppressed
    );
}

#[test]
fn checked_in_baseline_is_empty_and_well_formed() {
    // The baseline exists so legacy debt *could* be parked; keeping it
    // empty is the point. A parse failure or a non-empty baseline both
    // deserve a loud test, not a silent gate change.
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let bl = press_lint::baseline::Baseline::load(&root.join("press-lint.baseline"))
        .expect("press-lint.baseline parses");
    assert!(
        bl.is_empty(),
        "the checked-in baseline should stay empty; fix or allow findings instead"
    );
}
