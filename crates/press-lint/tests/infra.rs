//! Infrastructure tests: the incremental cache, the baseline gate, and the
//! determinism guarantees of the parallel pass. Each test builds a tiny
//! throwaway workspace under `CARGO_TARGET_TMPDIR`.

use std::fs;
use std::path::{Path, PathBuf};

use press_lint::workspace::{analyze_workspace_with, Options};
use press_lint::Report;

/// A fresh scratch workspace directory for one test.
fn scratch_root(name: &str) -> PathBuf {
    let root = Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
    if root.exists() {
        fs::remove_dir_all(&root).unwrap();
    }
    fs::create_dir_all(&root).unwrap();
    root
}

/// A two-file workspace: one clean file, one with a deliberate L9 finding.
fn write_two_files(root: &Path) {
    fs::create_dir_all(root.join("crates/press-core/src")).unwrap();
    fs::write(
        root.join("crates/press-core/src/clean.rs"),
        "pub fn double(x: f64) -> f64 {\n    x * 2.0\n}\n",
    )
    .unwrap();
    fs::write(
        root.join("crates/press-core/src/dirty.rs"),
        "pub fn head(xs: &[f64]) -> f64 {\n    *xs.first().unwrap()\n}\n",
    )
    .unwrap();
}

fn rendered(report: &Report) -> String {
    report
        .diagnostics
        .iter()
        .map(|d| d.render_human())
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn warm_cache_skips_unchanged_files_and_preserves_output() {
    let root = scratch_root("warm_cache");
    write_two_files(&root);
    let opts = Options {
        cache_path: Some(root.join("lint.cache")),
        ..Options::default()
    };

    let cold = analyze_workspace_with(&root, &opts).unwrap();
    assert_eq!(cold.files, 2);
    assert_eq!((cold.cache_hits, cold.cache_misses), (0, 2));
    assert_eq!(cold.diagnostics.len(), 1, "{}", rendered(&cold));

    let warm = analyze_workspace_with(&root, &opts).unwrap();
    assert_eq!((warm.cache_hits, warm.cache_misses), (2, 0));
    assert_eq!(
        rendered(&cold),
        rendered(&warm),
        "warm output must be byte-identical to cold"
    );
}

#[test]
fn editing_one_file_relints_only_that_file() {
    let root = scratch_root("edit_one");
    write_two_files(&root);
    let opts = Options {
        cache_path: Some(root.join("lint.cache")),
        ..Options::default()
    };
    analyze_workspace_with(&root, &opts).unwrap();

    // Touch only the clean file; the dirty one must come from the cache.
    fs::write(
        root.join("crates/press-core/src/clean.rs"),
        "pub fn triple(x: f64) -> f64 {\n    x * 3.0\n}\n",
    )
    .unwrap();
    let after = analyze_workspace_with(&root, &opts).unwrap();
    assert_eq!((after.cache_hits, after.cache_misses), (1, 1));
    assert_eq!(after.diagnostics.len(), 1, "{}", rendered(&after));
}

#[test]
fn cached_model_summaries_still_feed_the_cross_file_lints() {
    // A kernel in one file reaches an allocation in another. On a fully
    // warm cache, pass 2 runs over round-tripped summaries — the finding
    // must survive the serialization.
    let root = scratch_root("warm_model");
    fs::create_dir_all(root.join("crates/press-core/src")).unwrap();
    fs::write(
        root.join("crates/press-core/src/kern.rs"),
        "pub fn scores_into(xs: &[f64], out: &mut [f64]) {\n    for (s, x) in out.iter_mut().zip(xs) {\n        *s = helper(*x);\n    }\n}\n",
    )
    .unwrap();
    fs::write(
        root.join("crates/press-core/src/util.rs"),
        "pub fn helper(x: f64) -> f64 {\n    let v = vec![x; 2];\n    v[0] + v[1]\n}\n",
    )
    .unwrap();
    let opts = Options {
        cache_path: Some(root.join("lint.cache")),
        ..Options::default()
    };
    let cold = analyze_workspace_with(&root, &opts).unwrap();
    let warm = analyze_workspace_with(&root, &opts).unwrap();
    assert_eq!(warm.cache_misses, 0);
    assert_eq!(rendered(&cold), rendered(&warm));
    assert!(
        rendered(&warm).contains("kernel-allocation"),
        "{}",
        rendered(&warm)
    );
}

#[test]
fn jobs_count_does_not_change_the_diagnostic_stream() {
    let root = scratch_root("jobs_det");
    write_two_files(&root);
    // A few more files so the chunking actually splits.
    for i in 0..6 {
        fs::write(
            root.join(format!("crates/press-core/src/extra{i}.rs")),
            format!("pub fn f{i}(xs: &[f64]) -> f64 {{\n    *xs.last().unwrap()\n}}\n"),
        )
        .unwrap();
    }
    let serial = analyze_workspace_with(
        &root,
        &Options {
            jobs: 1,
            ..Options::default()
        },
    )
    .unwrap();
    let parallel = analyze_workspace_with(
        &root,
        &Options {
            jobs: 4,
            ..Options::default()
        },
    )
    .unwrap();
    assert_eq!(serial.diagnostics.len(), 7);
    assert_eq!(rendered(&serial), rendered(&parallel));
}

#[test]
fn baseline_absorbs_known_findings_and_reports_stale_entries() {
    let root = scratch_root("baseline");
    write_two_files(&root);

    // Build a baseline that absorbs the one known finding.
    let report = analyze_workspace_with(&root, &Options::default()).unwrap();
    assert_eq!(report.diagnostics.len(), 1);
    let text = press_lint::baseline::render(&report.diagnostics, |file, line| {
        let src = fs::read_to_string(root.join(file)).unwrap();
        press_lint::hash::line_key(src.lines().nth(line as usize - 1).unwrap())
    });
    let bl_path = root.join("lint.baseline");
    fs::write(&bl_path, text).unwrap();

    let opts = Options {
        baseline: Some(bl_path.clone()),
        ..Options::default()
    };
    let gated = analyze_workspace_with(&root, &opts).unwrap();
    assert!(gated.diagnostics.is_empty(), "{}", rendered(&gated));
    assert_eq!(gated.baselined, 1);
    assert!(gated.stale_baseline.is_empty());

    // Reindenting the flagged line keeps the baseline entry matched (keys
    // are trimmed-line hashes).
    fs::write(
        root.join("crates/press-core/src/dirty.rs"),
        "pub fn head(xs: &[f64]) -> f64 {\n        *xs.first().unwrap()\n}\n",
    )
    .unwrap();
    let shifted = analyze_workspace_with(&root, &opts).unwrap();
    assert!(shifted.diagnostics.is_empty(), "{}", rendered(&shifted));
    assert_eq!(shifted.baselined, 1);

    // Fix the finding: the baseline entry goes stale and is reported.
    fs::write(
        root.join("crates/press-core/src/dirty.rs"),
        "pub fn head(xs: &[f64]) -> Option<f64> {\n    xs.first().copied()\n}\n",
    )
    .unwrap();
    let fixed = analyze_workspace_with(&root, &opts).unwrap();
    assert!(fixed.diagnostics.is_empty(), "{}", rendered(&fixed));
    assert_eq!(fixed.baselined, 0);
    assert_eq!(fixed.stale_baseline.len(), 1);
    assert_eq!(fixed.stale_baseline[0].lint, "panic-freedom");
}

#[test]
fn malformed_baseline_is_an_error_not_a_silent_pass() {
    let root = scratch_root("bad_baseline");
    write_two_files(&root);
    let bl_path = root.join("lint.baseline");
    fs::write(&bl_path, "not a baseline header\ngarbage\n").unwrap();
    let report = analyze_workspace_with(
        &root,
        &Options {
            baseline: Some(bl_path),
            ..Options::default()
        },
    )
    .unwrap();
    assert!(
        report
            .diagnostics
            .iter()
            .any(|d| d.lint == "baseline" && d.severity == press_lint::Severity::Error),
        "{}",
        rendered(&report)
    );
}

#[test]
fn catalog_change_invalidates_the_whole_cache() {
    // The cache header folds in the lint catalog; a cache written under a
    // doctored header must be discarded wholesale.
    let root = scratch_root("cache_header");
    write_two_files(&root);
    let cache_path = root.join("lint.cache");
    let opts = Options {
        cache_path: Some(cache_path.clone()),
        ..Options::default()
    };
    analyze_workspace_with(&root, &opts).unwrap();

    let cached = fs::read_to_string(&cache_path).unwrap();
    let mut lines: Vec<&str> = cached.lines().collect();
    let doctored = format!("{}-older", lines[0]);
    lines[0] = &doctored;
    fs::write(&cache_path, lines.join("\n")).unwrap();

    let rerun = analyze_workspace_with(&root, &opts).unwrap();
    assert_eq!((rerun.cache_hits, rerun.cache_misses), (0, 2));
}
