//! Fixture-based lint tests: one known-bad and one clean snippet per lint,
//! plus the suppression machinery. Fixtures live under `tests/fixtures/` and
//! are analyzed as if they sat in a simulation crate (`press-core`), which is
//! the strictest context.

use press_lint::{analyze_source, Diagnostic, Severity};

/// Analyze a fixture in strict (library, simulation-crate) context.
fn lint_fixture(name: &str) -> (Vec<Diagnostic>, usize) {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    let src = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"));
    analyze_source(&format!("crates/press-core/src/{name}"), &src)
}

fn slugs(diags: &[Diagnostic]) -> Vec<&'static str> {
    diags.iter().map(|d| d.lint).collect()
}

// --- L1: nondeterministic-iteration ---------------------------------------

#[test]
fn l1_bad_fixture_is_flagged_with_spans() {
    let (diags, _) = lint_fixture("bad_l1_nondet_iteration.rs");
    assert!(!diags.is_empty());
    assert!(slugs(&diags)
        .iter()
        .all(|s| *s == "nondeterministic-iteration"));
    // The `use` on line 3 and both sites on line 6 carry exact spans.
    assert_eq!(diags[0].line, 3);
    assert_eq!(diags[0].col, 23);
    assert!(diags.iter().any(|d| d.line == 6));
}

#[test]
fn l1_clean_fixture_passes() {
    let (diags, suppressed) = lint_fixture("clean_l1_nondet_iteration.rs");
    assert!(diags.is_empty(), "{diags:?}");
    assert_eq!(suppressed, 0);
}

// --- L2: ambient-entropy ---------------------------------------------------

#[test]
fn l2_bad_fixture_flags_entropy_and_clock_as_errors() {
    let (diags, _) = lint_fixture("bad_l2_ambient_entropy.rs");
    let l2: Vec<&Diagnostic> = diags
        .iter()
        .filter(|d| d.lint == "ambient-entropy")
        .collect();
    assert_eq!(l2.len(), 3, "{diags:?}"); // Instant::now, thread_rng, rand::random
    assert!(l2.iter().all(|d| d.severity == Severity::Error));
    assert!(l2.iter().any(|d| d.line == 6), "Instant::now span");
    assert!(l2.iter().any(|d| d.line == 7), "thread_rng span");
    assert!(l2.iter().any(|d| d.line == 8), "rand::random span");
}

#[test]
fn l2_wall_clock_attachment_is_flagged() {
    let (diags, _) = lint_fixture("bad_l2_wall_clock.rs");
    let l2: Vec<&Diagnostic> = diags
        .iter()
        .filter(|d| d.lint == "ambient-entropy")
        .collect();
    assert_eq!(l2.len(), 1, "{diags:?}");
    assert_eq!(l2[0].severity, Severity::Error);
    assert_eq!(l2[0].line, 4);
    assert!(
        l2[0].message.contains("set_wall_clock"),
        "{}",
        l2[0].message
    );
}

#[test]
fn l2_wall_clock_clean_fixture_passes() {
    let (diags, suppressed) = lint_fixture("clean_l2_wall_clock.rs");
    assert!(diags.is_empty(), "{diags:?}");
    assert_eq!(suppressed, 0);
}

/// The same wall-clock-using source, analyzed under different paths: legal
/// in the pressd I/O shell (`main.rs`/`shell.rs`), an error in the
/// daemon's pure modules and in every other crate.
#[test]
fn l2_daemon_shell_carve_out_is_path_scoped() {
    let path = format!(
        "{}/tests/fixtures/daemon_shell_wall_clock.rs",
        env!("CARGO_MANIFEST_DIR")
    );
    let src = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"));
    let l2_count = |rel: &str| {
        let (diags, _) = press_lint::analyze_source(rel, &src);
        diags.iter().filter(|d| d.lint == "ambient-entropy").count()
    };
    // The shell files may time their I/O…
    assert_eq!(l2_count("crates/pressd/src/shell.rs"), 0);
    assert_eq!(l2_count("crates/pressd/src/main.rs"), 0);
    // …the pure daemon modules may not (replay depends on it)…
    assert_eq!(l2_count("crates/pressd/src/eventloop.rs"), 1);
    assert_eq!(l2_count("crates/pressd/src/protocol.rs"), 1);
    // …and the carve-out does not leak into simulation crates, even for a
    // file that happens to be called shell.rs.
    assert_eq!(l2_count("crates/press-core/src/shell.rs"), 1);
    assert_eq!(l2_count("crates/press-control/src/main.rs"), 1);
}

#[test]
fn l2_wall_clock_is_allowed_in_bench_context() {
    // The same source analyzed as a press-bench file is exempt: benches own
    // the only legitimate wall-clock attachment point.
    let path = format!(
        "{}/tests/fixtures/bad_l2_wall_clock.rs",
        env!("CARGO_MANIFEST_DIR")
    );
    let src = std::fs::read_to_string(&path).unwrap();
    let (diags, _) = analyze_source("crates/press-bench/src/bin/trace_capture.rs", &src);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn l2_clean_fixture_passes() {
    let (diags, _) = lint_fixture("clean_l2_ambient_entropy.rs");
    assert!(diags.is_empty(), "{diags:?}");
}

// --- L3: seed-stream-discipline --------------------------------------------

#[test]
fn l3_bad_fixture_flags_ad_hoc_literal_seed() {
    let (diags, _) = lint_fixture("bad_l3_seed_stream.rs");
    // A literal seed breaks both the local discipline rule (L3) and the
    // workspace provenance rule (L7): nothing ties it to the episode seed.
    assert_eq!(
        slugs(&diags),
        vec!["seed-stream-discipline", "seed-stream-provenance"]
    );
    assert!(diags.iter().all(|d| d.line == 5), "{diags:?}");
}

#[test]
fn l3_clean_fixture_passes() {
    let (diags, _) = lint_fixture("clean_l3_seed_stream.rs");
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn l3_bad_fixture_flags_hand_mixed_link_stream() {
    let (diags, _) = lint_fixture("bad_l3_link_stream.rs");
    assert_eq!(slugs(&diags), vec!["seed-stream-discipline"]);
    assert_eq!(diags[0].line, 7, "seed ^ link_id");
    assert!(diags[0].message.contains("link_stream_seed"), "{diags:?}");
}

#[test]
fn l3_clean_link_stream_fixture_passes() {
    let (diags, _) = lint_fixture("clean_l3_link_stream.rs");
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn l3_bad_fixture_flags_hand_mixed_shard_stream() {
    let (diags, _) = lint_fixture("bad_l3_shard_stream.rs");
    assert_eq!(slugs(&diags), vec!["seed-stream-discipline"]);
    assert_eq!(diags[0].line, 7, "seed + shard_idx");
    assert!(diags[0].message.contains("link_stream_seed"), "{diags:?}");
}

#[test]
fn l3_clean_shard_stream_fixture_passes() {
    let (diags, _) = lint_fixture("clean_l3_shard_stream.rs");
    assert!(diags.is_empty(), "{diags:?}");
}

// --- L4: float-ordering ----------------------------------------------------

#[test]
fn l4_bad_fixture_flags_partial_cmp_unwrap_and_float_eq() {
    let (diags, _) = lint_fixture("bad_l4_float_ordering.rs");
    assert_eq!(slugs(&diags), vec!["float-ordering", "float-ordering"]);
    assert_eq!(diags[0].line, 4, "partial_cmp(..).unwrap()");
    assert_eq!(diags[1].line, 5, "snr == 20.0");
}

#[test]
fn l4_clean_fixture_passes() {
    let (diags, _) = lint_fixture("clean_l4_float_ordering.rs");
    assert!(diags.is_empty(), "{diags:?}");
}

// --- L5: db-linear-unit-mixing ---------------------------------------------

#[test]
fn l5_bad_fixture_flags_scale_mixing() {
    let (diags, _) = lint_fixture("bad_l5_db_linear.rs");
    let l5: Vec<&Diagnostic> = diags
        .iter()
        .filter(|d| d.lint == "db-linear-unit-mixing")
        .collect();
    assert!(!l5.is_empty());
    assert!(
        l5.iter().any(|d| d.line == 5),
        "tx_power_dbm + path_gain_linear"
    );
}

#[test]
fn l5_clean_fixture_passes() {
    let (diags, _) = lint_fixture("clean_l5_db_linear.rs");
    assert!(diags.is_empty(), "{diags:?}");
}

// --- L6: kernel-reduction ---------------------------------------------------

#[test]
fn l6_bad_fixture_flags_hidden_reduction_in_kernel_file() {
    let (diags, _) = lint_fixture("bad_l6_kernel_reduction.rs");
    assert_eq!(slugs(&diags), vec!["kernel-reduction"]);
    assert_eq!(diags[0].line, 12, "h.iter().map(..).sum()");
}

#[test]
fn l6_clean_fixture_passes() {
    let (diags, suppressed) = lint_fixture("clean_l6_kernel_reduction.rs");
    assert!(diags.is_empty(), "{diags:?}");
    assert_eq!(suppressed, 0);
}

// --- Suppressions ----------------------------------------------------------

#[test]
fn suppression_comments_are_honored_and_counted() {
    let (diags, suppressed) = lint_fixture("suppressed.rs");
    // Trailing allow silences the `use` line; the standalone allow silences
    // the comparison below it. The two HashSet mentions in `leaks` survive.
    assert_eq!(suppressed, 2);
    assert_eq!(diags.len(), 2, "{diags:?}");
    assert!(diags.iter().all(|d| d.lint == "nondeterministic-iteration"));
    assert!(diags.iter().all(|d| d.line >= 12));
}

// --- Test-context leniency -------------------------------------------------

#[test]
fn cfg_test_code_may_use_scratch_seeds_and_float_eq() {
    let src = r#"
#[cfg(test)]
mod tests {
    #[test]
    fn replays() {
        let mut rng = StdRng::seed_from_u64(7);
        assert!(rng.gen::<f64>() == 0.5);
    }
}
"#;
    let (diags, _) = analyze_source("crates/press-core/src/x.rs", src);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn bench_crate_is_exempt_from_entropy_and_seed_rules() {
    let src = "fn main() { let t = Instant::now(); let r = StdRng::seed_from_u64(1); }";
    let (diags, _) = analyze_source("crates/press-bench/src/bin/fig9.rs", src);
    assert!(diags.is_empty(), "{diags:?}");
}

// --- L7: seed-stream-provenance ---------------------------------------------

#[test]
fn l7_bad_fixture_flags_helpers_that_break_the_seed_chain() {
    let (diags, _) = lint_fixture("bad_l7_seed_provenance.rs");
    let l7: Vec<&Diagnostic> = diags
        .iter()
        .filter(|d| d.lint == "seed-stream-provenance")
        .collect();
    assert_eq!(l7.len(), 2, "{diags:?}");
    assert!(
        l7[0].message.contains("never uses it"),
        "stream_for drops its seed: {}",
        l7[0].message
    );
    assert!(
        l7[1].message.contains("no seed/stream parameter"),
        "fresh_stream has no seed: {}",
        l7[1].message
    );
}

#[test]
fn l7_clean_fixture_passes() {
    let (diags, _) = lint_fixture("clean_l7_seed_provenance.rs");
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn l7_provenance_crosses_file_boundaries() {
    // The helper lives in another file; only the joint model can see that
    // it genuinely mixes (clean) or drops (bad) the seed.
    let helper_good = "pub fn trial_stream_seed(seed: u64, t: u64) -> u64 { seed ^ t }\n";
    let helper_bad = "pub fn trial_stream_seed(seed: u64, t: u64) -> u64 { t }\n";
    let caller = "fn run(seed: u64) -> u64 {\n    let mut rng = StdRng::seed_from_u64(trial_stream_seed(seed, 1));\n    rng.gen()\n}\n";

    let clean = press_lint::analyze_set(&[
        ("crates/press-core/src/streams.rs", helper_good),
        ("crates/press-core/src/run.rs", caller),
    ]);
    assert!(clean.diagnostics.is_empty(), "{:?}", clean.diagnostics);

    let dirty = press_lint::analyze_set(&[
        ("crates/press-core/src/streams.rs", helper_bad),
        ("crates/press-core/src/run.rs", caller),
    ]);
    assert_eq!(slugs(&dirty.diagnostics), vec!["seed-stream-provenance"]);
    assert_eq!(dirty.diagnostics[0].file, "crates/press-core/src/run.rs");
}

// --- L8: kernel-allocation ---------------------------------------------------

#[test]
fn l8_bad_fixture_flags_allocating_kernels() {
    let (diags, _) = lint_fixture("bad_l8_kernel_alloc.rs");
    let l8: Vec<&Diagnostic> = diags
        .iter()
        .filter(|d| d.lint == "kernel-allocation")
        .collect();
    assert_eq!(l8.len(), 2, "{diags:?}");
    assert!(l8[0].message.contains("synthesize_row_into"), "{diags:?}");
    assert!(
        l8[1].message.contains("fast_score"),
        "marker-promoted kernel: {diags:?}"
    );
}

#[test]
fn l8_clean_fixture_passes() {
    let (diags, _) = lint_fixture("clean_l8_kernel_alloc.rs");
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn l8_transitive_allocation_crosses_file_boundaries() {
    // The kernel itself is clean; its callee (in another file) allocates.
    let kernel = "fn scores_into(xs: &[f64], out: &mut [f64]) {\n    for (s, x) in out.iter_mut().zip(xs) {\n        *s = helper(*x);\n    }\n}\n";
    let callee_bad =
        "pub fn helper(x: f64) -> f64 {\n    let v = vec![x; 2];\n    v[0] + v[1]\n}\n";
    let callee_good = "pub fn helper(x: f64) -> f64 {\n    x * 2.0\n}\n";

    let dirty = press_lint::analyze_set(&[
        ("crates/press-core/src/kern.rs", kernel),
        ("crates/press-core/src/util.rs", callee_bad),
    ]);
    assert_eq!(slugs(&dirty.diagnostics), vec!["kernel-allocation"]);
    assert!(
        dirty.diagnostics[0]
            .message
            .contains("reaches an allocation"),
        "{:?}",
        dirty.diagnostics
    );

    let clean = press_lint::analyze_set(&[
        ("crates/press-core/src/kern.rs", kernel),
        ("crates/press-core/src/util.rs", callee_good),
    ]);
    assert!(clean.diagnostics.is_empty(), "{:?}", clean.diagnostics);
}

// --- L9: panic-freedom -------------------------------------------------------

#[test]
fn l9_bad_fixture_flags_every_abort_path() {
    let (diags, _) = lint_fixture("bad_l9_panic.rs");
    let l9: Vec<&Diagnostic> = diags.iter().filter(|d| d.lint == "panic-freedom").collect();
    // unwrap, expect, panic!, unreachable! — one finding each.
    assert_eq!(l9.len(), 4, "{diags:?}");
    assert_eq!(l9[0].line, 5, "first.unwrap()");
    assert_eq!(l9[1].line, 6, ".expect(..)");
    assert_eq!(l9[2].line, 8, "panic!");
    assert_eq!(l9[3].line, 16, "unreachable!");
}

#[test]
fn l9_clean_fixture_passes_with_one_documented_allow() {
    let (diags, suppressed) = lint_fixture("clean_l9_panic.rs");
    assert!(diags.is_empty(), "{diags:?}");
    assert_eq!(suppressed, 1, "the documented expect carries an allow");
}
