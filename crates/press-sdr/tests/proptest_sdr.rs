//! Property tests for the simulated SDR pipeline: estimator consistency,
//! saturation, determinism, and MIMO sounding invariants.

use press_math::Complex64;
use press_phy::numerology::Numerology;
use press_propagation::path::{PathKind, SignalPath};
use press_propagation::{RadioNode, Vec3};
use press_sdr::{SdrRadio, Sounder, SNR_SATURATION_DB};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn sounder() -> Sounder {
    let tx = SdrRadio::warp(RadioNode::omni_at(Vec3::new(1.0, 2.0, 1.5)));
    let rx = SdrRadio::warp(RadioNode::omni_at(Vec3::new(4.0, 3.0, 1.5)));
    Sounder::new(Numerology::wifi20(2.462e9), tx, rx)
}

fn paths_strategy() -> impl Strategy<Value = Vec<SignalPath>> {
    proptest::collection::vec(
        (1e-5..1e-3f64, 0.0..6.2f64, 0.0..150.0f64).prop_map(|(mag, phase, delay_ns)| SignalPath {
            gain: Complex64::from_polar(mag, phase),
            delay_s: delay_ns * 1e-9,
            doppler_hz: 0.0,
            aod_rad: 0.0,
            aoa_rad: 0.0,
            kind: PathKind::LineOfSight,
        }),
        1..8,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn estimated_snr_saturates_and_is_finite(paths in paths_strategy(), seed in 0u64..500) {
        let s = sounder();
        let mut rng = StdRng::seed_from_u64(seed);
        let sounding = s.sound(&paths, 0.0, &mut rng).unwrap();
        for &v in &sounding.snr.snr_db {
            prop_assert!(v.is_finite());
            prop_assert!(v <= SNR_SATURATION_DB + 1e-9);
        }
        prop_assert_eq!(sounding.snr.len(), 52);
    }

    #[test]
    fn sounding_deterministic_per_seed(paths in paths_strategy(), seed in 0u64..200) {
        let s = sounder();
        let a = s.sound(&paths, 0.0, &mut StdRng::seed_from_u64(seed)).unwrap();
        let b = s.sound(&paths, 0.0, &mut StdRng::seed_from_u64(seed)).unwrap();
        prop_assert_eq!(a.snr.snr_db, b.snr.snr_db);
    }

    #[test]
    fn oracle_channel_matches_path_model(paths in paths_strategy()) {
        let s = sounder();
        let h = s.oracle_channel(&paths, 0.0);
        // Independent recomputation.
        let freqs = s.num.active_freqs_hz();
        for (k, &f) in freqs.iter().enumerate() {
            let manual: Complex64 = paths
                .iter()
                .map(|p| p.gain * Complex64::cis(-2.0 * std::f64::consts::PI * f * p.delay_s))
                .sum();
            prop_assert!((h[k] - manual).abs() < 1e-15);
        }
    }

    #[test]
    fn averaging_tightens_estimates_above_the_floor(paths in paths_strategy()) {
        // On subcarriers well above the receiver's noise floor, more
        // averaging must not worsen the estimate. (At deep fades the
        // estimator is floor-limited — |H_hat|^2 is biased up by the noise
        // variance — so no amount of averaging recovers the oracle there;
        // those subcarriers are excluded.)
        let s = sounder();
        let oracle = s.oracle_snr(&paths, 0.0);
        let good: Vec<usize> = (0..oracle.len())
            .filter(|&k| oracle.snr_db[k] > 15.0 && oracle.snr_db[k] < 45.0)
            .collect();
        prop_assume!(!good.is_empty());
        // Average the estimation error over several independent seeds —
        // a single noisy frame can get lucky on any one seed.
        let err = |n_frames: usize| -> f64 {
            (0..6)
                .map(|seed| {
                    let mut rng = StdRng::seed_from_u64(seed);
                    let est = s.sound_averaged(&paths, n_frames, 0.0, &mut rng).unwrap();
                    good.iter()
                        .map(|&k| (est.snr_db[k] - oracle.snr_db[k]).abs())
                        .sum::<f64>()
                        / good.len() as f64
                })
                .sum::<f64>()
                / 6.0
        };
        let coarse = err(1);
        let fine = err(16);
        prop_assert!(fine <= coarse + 0.5, "1 frame {coarse}, 16 frames {fine}");
    }

    #[test]
    fn mimo_sounding_preserves_common_phase_invariance(seed in 0u64..100) {
        // A common LO rotation must not change the estimated matrix's
        // condition structure: compare two soundings at different lo_phase.
        let s = sounder();
        let mk = |mag: f64, delay: f64| SignalPath {
            gain: Complex64::from_polar(mag, delay),
            delay_s: delay * 1e-8,
            doppler_hz: 0.0,
            aod_rad: 0.0,
            aoa_rad: 0.0,
            kind: PathKind::LineOfSight,
        };
        let paths = vec![
            vec![vec![mk(3e-4, 1.0)], vec![mk(2e-4, 2.0)]],
            vec![vec![mk(1e-4, 3.0)], vec![mk(4e-4, 0.5)]],
        ];
        let est_a = s
            .sound_mimo(&paths, 0.3, 0.0, &mut StdRng::seed_from_u64(seed))
            .unwrap();
        let est_b = s
            .sound_mimo(&paths, 2.1, 0.0, &mut StdRng::seed_from_u64(seed))
            .unwrap();
        // Ratio of corresponding entries should be (approximately) one
        // common complex rotation: check via normalized cross terms.
        let ra = est_a[0][0].h[10] / est_a[1][1].h[10];
        let rb = est_b[0][0].h[10] / est_b[1][1].h[10];
        prop_assert!((ra - rb).abs() < 0.2 * ra.abs().max(1e-12),
            "relative structure moved: {ra} vs {rb}");
    }
}
