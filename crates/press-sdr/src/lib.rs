//! # press-sdr
//!
//! Simulated software-defined radio endpoints — the workspace's substitute
//! for the paper's WARP v3 and USRP N210/X310 hardware (see DESIGN.md,
//! "Hardware substitution").
//!
//! * [`radio`] — radio presets (TX power, noise figure, CFO/phase-noise
//!   impairments) for the three devices the paper used;
//! * [`sounder`] — the frame-based channel sounder: known training symbols
//!   through a path set, AWGN and impairments added, CSI estimated with the
//!   `press-phy` estimator. Also exposes the noiseless *oracle* channel for
//!   fast search-algorithm ablations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
pub mod radio;
pub mod sounder;

pub use radio::{Impairments, RadioModel, SdrRadio};
pub use sounder::{SnrParams, Sounder, Sounding, SNR_SATURATION_DB};
