//! Simulated software-defined radios.
//!
//! Stand-ins for the paper's WARP v3 and USRP N210/X310 endpoints: transmit
//! power, noise figure, and the front-end impairments (carrier frequency
//! offset, phase noise) that make estimated channels differ from true ones
//! the way real measurements do.

use press_math::db::{db_to_pow, thermal_noise_dbm};
use press_propagation::RadioNode;

/// Front-end impairment model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Impairments {
    /// Residual carrier frequency offset after correction, Hz.
    pub cfo_hz: f64,
    /// Phase-noise random-walk standard deviation per OFDM symbol, radians.
    pub phase_noise_rad: f64,
}

impl Impairments {
    /// A calibrated lab setup: small residual CFO, mild phase noise.
    pub fn lab_grade() -> Impairments {
        Impairments {
            cfo_hz: 50.0,
            phase_noise_rad: 0.01,
        }
    }

    /// Ideal hardware (unit tests, oracle comparisons).
    pub fn none() -> Impairments {
        Impairments {
            cfo_hz: 0.0,
            phase_noise_rad: 0.0,
        }
    }
}

/// Hardware presets matching the devices in §3.1 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RadioModel {
    /// Rice WARP v3 (the Figure 4–6 endpoints).
    WarpV3,
    /// Ettus USRP N210 (the Figure 7 endpoints).
    UsrpN210,
    /// Ettus USRP X310 + UBX-160 (the Figure 8 MIMO endpoints).
    UsrpX310,
}

/// A simulated SDR: placement + RF budget + impairments.
#[derive(Debug, Clone, PartialEq)]
pub struct SdrRadio {
    /// Position, antenna and velocity.
    pub node: RadioNode,
    /// Total transmit power, dBm (split evenly across active subcarriers).
    pub tx_power_dbm: f64,
    /// Receiver noise figure, dB.
    pub noise_figure_db: f64,
    /// Front-end impairments.
    pub impairments: Impairments,
    /// Which hardware this emulates (documentation/reporting only).
    pub model: RadioModel,
}

impl SdrRadio {
    /// A WARP v3-class radio at the given node: 10 dBm out, 7 dB NF.
    pub fn warp(node: RadioNode) -> SdrRadio {
        SdrRadio {
            node,
            tx_power_dbm: 10.0,
            noise_figure_db: 7.0,
            impairments: Impairments::lab_grade(),
            model: RadioModel::WarpV3,
        }
    }

    /// A USRP N210-class radio: 15 dBm out, 8 dB NF.
    pub fn usrp_n210(node: RadioNode) -> SdrRadio {
        SdrRadio {
            node,
            tx_power_dbm: 15.0,
            noise_figure_db: 8.0,
            impairments: Impairments::lab_grade(),
            model: RadioModel::UsrpN210,
        }
    }

    /// A USRP X310-class radio: 15 dBm out, 6 dB NF.
    pub fn usrp_x310(node: RadioNode) -> SdrRadio {
        SdrRadio {
            node,
            tx_power_dbm: 15.0,
            noise_figure_db: 6.0,
            impairments: Impairments::lab_grade(),
            model: RadioModel::UsrpX310,
        }
    }

    /// Per-subcarrier transmit power in linear milliwatts when the total
    /// power is split across `n_active` subcarriers.
    pub fn subcarrier_power_mw(&self, n_active: usize) -> f64 {
        db_to_pow(self.tx_power_dbm) / n_active.max(1) as f64
    }

    /// Receiver noise power per subcarrier in linear milliwatts for the
    /// given subcarrier spacing: thermal floor + noise figure.
    pub fn subcarrier_noise_mw(&self, subcarrier_spacing_hz: f64) -> f64 {
        db_to_pow(thermal_noise_dbm(subcarrier_spacing_hz) + self.noise_figure_db)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use press_propagation::Vec3;

    fn node() -> RadioNode {
        RadioNode::omni_at(Vec3::new(1.0, 1.0, 1.5))
    }

    #[test]
    fn subcarrier_power_splits_total() {
        let r = SdrRadio::warp(node());
        let p_sc = r.subcarrier_power_mw(52);
        assert!((p_sc * 52.0 - db_to_pow(10.0)).abs() < 1e-9);
    }

    #[test]
    fn noise_floor_reasonable() {
        // 312.5 kHz spacing, 7 dB NF: about -112 dBm per subcarrier.
        let r = SdrRadio::warp(node());
        let n = r.subcarrier_noise_mw(312_500.0);
        let dbm = 10.0 * n.log10();
        assert!((-114.0..-110.0).contains(&dbm), "{dbm}");
    }

    #[test]
    fn presets_differ() {
        let w = SdrRadio::warp(node());
        let u = SdrRadio::usrp_n210(node());
        assert_ne!(w.model, u.model);
        assert!(u.tx_power_dbm > w.tx_power_dbm);
    }

    #[test]
    fn zero_subcarriers_does_not_divide_by_zero() {
        let r = SdrRadio::warp(node());
        assert!(r.subcarrier_power_mw(0).is_finite());
    }
}
