//! The channel sounder: frames through the simulated air, CSI out.
//!
//! Reproduces the paper's measurement loop: "the transmitter sends one frame
//! comprised of multiple OFDM symbols and the receiver estimates the channel
//! state information from the training sequences in the frame." The sounder
//! takes a *path set* (environment paths from `press-propagation` plus
//! whatever PRESS paths the caller injects), synthesizes the received
//! training symbols with AWGN and front-end impairments, and runs the
//! `press-phy` estimator — so estimated CSI carries realistic measurement
//! noise, exactly like the hardware pipeline it replaces.

use crate::radio::SdrRadio;
use press_math::Complex64;
use press_phy::channel_est::{estimate_channel, pool_noise, ChannelEstimate, EstimatorError};
use press_phy::frame::training_sequence;
use press_phy::numerology::Numerology;
use press_phy::snr::SnrProfile;
use press_propagation::fading::gaussian;
use press_propagation::path::{frequency_response, SignalPath};
use rand::Rng;

/// SNR saturation applied to estimated profiles, dB. Real receivers cannot
/// resolve SNR much beyond this; the paper's plots top out around 45–50 dB.
pub const SNR_SATURATION_DB: f64 = 50.0;

/// The scalar link-budget constants that turn a frequency response into a
/// per-subcarrier SNR: everything [`Sounder::oracle_snr`] needs except the
/// channel itself. Extracted so channel caches (the `press-core` basis fast
/// path) can score configurations without holding a whole sounder.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SnrParams {
    /// Transmit power per subcarrier, mW.
    pub subcarrier_power_mw: f64,
    /// Receiver noise power per subcarrier, mW.
    pub subcarrier_noise_mw: f64,
    /// Saturation ceiling applied to reported SNR, dB.
    pub saturation_db: f64,
}

impl SnrParams {
    /// SNR of one subcarrier given its channel coefficient, dB (floored at
    /// −120 dB, saturated at the ceiling) — bit-identical to the per-entry
    /// arithmetic of [`Sounder::oracle_snr`].
    #[inline]
    pub fn snr_db(&self, h: Complex64) -> f64 {
        let s = self.subcarrier_power_mw * h.norm_sqr() / self.subcarrier_noise_mw;
        (10.0 * s.max(1e-12).log10()).min(self.saturation_db)
    }

    /// Fills `out` with the per-subcarrier SNR profile of a channel,
    /// reusing the buffer.
    pub fn profile_into(&self, h: &[Complex64], out: &mut Vec<f64>) {
        out.clear();
        out.extend(h.iter().map(|&hk| self.snr_db(hk)));
    }
}

/// A sounding measurement: estimated CSI plus the derived SNR profile.
#[derive(Debug, Clone)]
pub struct Sounding {
    /// Channel estimate (per active subcarrier), scaled in *amplitude*
    /// units where the training symbol power is the per-subcarrier TX power.
    pub estimate: ChannelEstimate,
    /// Per-subcarrier SNR profile, dB, saturated at [`SNR_SATURATION_DB`].
    pub snr: SnrProfile,
}

/// A channel sounder bound to one TX/RX pair and a numerology.
#[derive(Debug, Clone)]
pub struct Sounder {
    /// OFDM numerology in use.
    pub num: Numerology,
    /// Transmitting radio.
    pub tx: SdrRadio,
    /// Receiving radio.
    pub rx: SdrRadio,
    /// Number of training repeats per frame (Wi-Fi sends 2).
    pub n_training: usize,
}

impl Sounder {
    /// Creates a sounder with the Wi-Fi default of two training symbols.
    pub fn new(num: Numerology, tx: SdrRadio, rx: SdrRadio) -> Sounder {
        Sounder {
            num,
            tx,
            rx,
            n_training: 2,
        }
    }

    /// The *true* (oracle) channel over the active subcarriers — no noise,
    /// no estimation. Search-algorithm ablations use this for speed; the
    /// figure harnesses use [`sound`](Self::sound).
    pub fn oracle_channel(&self, paths: &[SignalPath], t_s: f64) -> Vec<Complex64> {
        frequency_response(paths, &self.num.active_freqs_hz(), t_s)
    }

    /// The link-budget constants of this sounder, bundled for channel-side
    /// SNR computation (see [`SnrParams`]).
    pub fn snr_params(&self) -> SnrParams {
        SnrParams {
            subcarrier_power_mw: self.tx.subcarrier_power_mw(self.num.n_active()),
            subcarrier_noise_mw: self
                .rx
                .subcarrier_noise_mw(self.num.subcarrier_spacing_hz()),
            saturation_db: SNR_SATURATION_DB,
        }
    }

    /// The oracle SNR profile of an already-synthesized channel — the
    /// channel-side half of [`oracle_snr`](Self::oracle_snr), for callers
    /// (the basis fast path) that obtain `H` without a path list.
    pub fn snr_from_channel(&self, h: &[Complex64]) -> SnrProfile {
        let params = self.snr_params();
        SnrProfile::new(h.iter().map(|&hk| params.snr_db(hk)).collect())
    }

    /// Allocation-free variant of [`snr_from_channel`](Self::snr_from_channel):
    /// refills `out`'s profile in place. The space-registry scalar scoring
    /// kernel calls this once per candidate, so it must not allocate.
    pub fn snr_from_channel_into(&self, h: &[Complex64], out: &mut SnrProfile) {
        let params = self.snr_params();
        out.snr_db.clear();
        out.snr_db.extend(h.iter().map(|&hk| params.snr_db(hk)));
    }

    /// The oracle per-subcarrier SNR (true channel against the analytic
    /// noise floor), saturated like the estimated profiles.
    pub fn oracle_snr(&self, paths: &[SignalPath], t_s: f64) -> SnrProfile {
        let h = self.oracle_channel(paths, t_s);
        self.snr_from_channel(&h)
    }

    /// Sends one sounding frame through the given path set at elapsed time
    /// `t_s` and estimates the channel from the received training symbols.
    ///
    /// The received training symbol on subcarrier `k`, repeat `m` is
    /// `Y_k^m = √P_sc · H(f_k) · L_k · e^{jθ_m} + N_k^m`, with `θ_m` the
    /// accumulated CFO/phase-noise rotation of symbol `m` and `N` AWGN at
    /// the receiver's noise floor.
    ///
    /// # Errors
    /// Propagates [`EstimatorError`] (cannot occur with `n_training ≥ 2`).
    pub fn sound<R: Rng + ?Sized>(
        &self,
        paths: &[SignalPath],
        t_s: f64,
        rng: &mut R,
    ) -> Result<Sounding, EstimatorError> {
        let h = self.oracle_channel(paths, t_s);
        self.sound_channel(&h, rng)
    }

    /// Like [`sound`](Self::sound) but taking the true channel directly
    /// instead of a path set — the channel-side entry point used by the
    /// basis fast path, which synthesizes `H` by O(N·K) accumulation rather
    /// than path tracing. Draws exactly the same RNG stream as
    /// [`sound`](Self::sound), so results are bit-identical for equal `h`.
    ///
    /// # Errors
    /// Propagates [`EstimatorError`] (cannot occur with `n_training ≥ 2`).
    pub fn sound_channel<R: Rng + ?Sized>(
        &self,
        h: &[Complex64],
        rng: &mut R,
    ) -> Result<Sounding, EstimatorError> {
        let n = self.num.n_active();
        let training = training_sequence(n);
        let amp_tx = self.tx.subcarrier_power_mw(n).sqrt();
        let noise_sigma = (self
            .rx
            .subcarrier_noise_mw(self.num.subcarrier_spacing_hz())
            / 2.0)
            .sqrt();

        let sym_t = self.num.symbol_duration_s();
        let mut phase = rng.gen_range(0.0..std::f64::consts::TAU); // unknown initial LO phase
        let mut received = Vec::with_capacity(self.n_training);
        for _ in 0..self.n_training {
            // CFO advances the common phase linearly; phase noise random-walks it.
            phase += std::f64::consts::TAU * self.tx.impairments.cfo_hz * sym_t;
            phase += gaussian(rng) * self.tx.impairments.phase_noise_rad;
            let rot = Complex64::cis(phase);
            let sym: Vec<Complex64> = (0..n)
                .map(|k| {
                    let clean = training[k] * h[k] * amp_tx * rot;
                    clean + Complex64::new(gaussian(rng) * noise_sigma, gaussian(rng) * noise_sigma)
                })
                .collect();
            received.push(sym);
        }
        let mut estimate = estimate_channel(&training, &received)?;
        pool_noise(&mut estimate);
        let snr = SnrProfile::new(estimate.snr_db(SNR_SATURATION_DB));
        Ok(Sounding { estimate, snr })
    }

    /// Coherent MIMO sounding: measures every TX→RX antenna pair with ONE
    /// shared local-oscillator phase trajectory, as a multi-chain SDR
    /// (the paper's USRP X310 + two UBX-160) does. The relative phases
    /// between matrix entries — which the condition number depends on —
    /// are therefore preserved; only a common rotation `lo_phase` (supplied
    /// by the caller, who models slow drift between successive
    /// measurements) multiplies the whole matrix.
    ///
    /// `paths[a][b]` is the path set from TX antenna `a` to RX antenna `b`.
    /// Returns estimates in the same layout.
    ///
    /// # Errors
    /// Propagates [`EstimatorError`] (cannot occur with `n_training ≥ 2`).
    pub fn sound_mimo<R: Rng + ?Sized>(
        &self,
        paths: &[Vec<Vec<SignalPath>>],
        lo_phase: f64,
        t_s: f64,
        rng: &mut R,
    ) -> Result<Vec<Vec<ChannelEstimate>>, EstimatorError> {
        let n = self.num.n_active();
        let training = training_sequence(n);
        let amp_tx = self.tx.subcarrier_power_mw(n).sqrt();
        let noise_sigma = (self
            .rx
            .subcarrier_noise_mw(self.num.subcarrier_spacing_hz())
            / 2.0)
            .sqrt();
        let sym_t = self.num.symbol_duration_s();
        let mut phase = lo_phase;
        let mut out = Vec::with_capacity(paths.len());
        // TX antennas sound sequentially (staggered training, as in 802.11n),
        // the LO phase walking continuously across the whole sequence.
        for row in paths {
            let mut row_est = Vec::with_capacity(row.len());
            let h_per_rx: Vec<Vec<Complex64>> =
                row.iter().map(|p| self.oracle_channel(p, t_s)).collect();
            let mut received: Vec<Vec<Vec<Complex64>>> =
                vec![Vec::with_capacity(self.n_training); row.len()];
            for _ in 0..self.n_training {
                phase += std::f64::consts::TAU * self.tx.impairments.cfo_hz * sym_t;
                phase += gaussian(rng) * self.tx.impairments.phase_noise_rad;
                let rot = Complex64::cis(phase);
                for (b, h) in h_per_rx.iter().enumerate() {
                    let sym: Vec<Complex64> = (0..n)
                        .map(|k| {
                            training[k] * h[k] * amp_tx * rot
                                + Complex64::new(
                                    gaussian(rng) * noise_sigma,
                                    gaussian(rng) * noise_sigma,
                                )
                        })
                        .collect();
                    received[b].push(sym);
                }
            }
            for rx_frames in received {
                let mut est = estimate_channel(&training, &rx_frames)?;
                pool_noise(&mut est);
                row_est.push(est);
            }
            out.push(row_est);
        }
        Ok(out)
    }

    /// Averages `n_frames` soundings into one SNR profile (dB-domain mean
    /// per subcarrier) — the paper iterates its 64 configurations 10 times
    /// and reports statistics across repetitions.
    ///
    /// # Errors
    /// Propagates [`EstimatorError`].
    pub fn sound_averaged<R: Rng + ?Sized>(
        &self,
        paths: &[SignalPath],
        n_frames: usize,
        t_s: f64,
        rng: &mut R,
    ) -> Result<SnrProfile, EstimatorError> {
        let h = self.oracle_channel(paths, t_s);
        self.sound_averaged_channel(&h, n_frames, rng)
    }

    /// Channel-side variant of [`sound_averaged`](Self::sound_averaged):
    /// averages `n_frames` soundings of an already-synthesized channel.
    /// Draws the same RNG stream as [`sound_averaged`](Self::sound_averaged)
    /// (the per-frame channel is time-invariant there, so hoisting it out of
    /// the frame loop changes nothing).
    ///
    /// # Errors
    /// Propagates [`EstimatorError`].
    pub fn sound_averaged_channel<R: Rng + ?Sized>(
        &self,
        h: &[Complex64],
        n_frames: usize,
        rng: &mut R,
    ) -> Result<SnrProfile, EstimatorError> {
        assert!(n_frames > 0, "need at least one frame");
        let mut acc = vec![0.0; self.num.n_active()];
        for _ in 0..n_frames {
            let s = self.sound_channel(h, rng)?;
            for (a, v) in acc.iter_mut().zip(&s.snr.snr_db) {
                *a += v;
            }
        }
        for a in acc.iter_mut() {
            *a /= n_frames as f64;
        }
        Ok(SnrProfile::new(acc))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::radio::Impairments;
    use press_math::consts::WIFI_CHANNEL_11_HZ;
    use press_propagation::path::PathKind;
    use press_propagation::{RadioNode, Vec3};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sounder() -> Sounder {
        let tx = SdrRadio::warp(RadioNode::omni_at(Vec3::new(1.0, 2.0, 1.5)));
        let rx = SdrRadio::warp(RadioNode::omni_at(Vec3::new(4.0, 3.0, 1.5)));
        Sounder::new(Numerology::wifi20(WIFI_CHANNEL_11_HZ), tx, rx)
    }

    fn two_tap_paths() -> Vec<SignalPath> {
        vec![
            SignalPath {
                gain: Complex64::real(3e-4),
                delay_s: 10e-9,
                doppler_hz: 0.0,
                aod_rad: 0.0,
                aoa_rad: 0.0,
                kind: PathKind::LineOfSight,
            },
            SignalPath {
                gain: Complex64::real(2.5e-4),
                delay_s: 90e-9,
                doppler_hz: 0.0,
                aod_rad: 0.0,
                aoa_rad: 0.0,
                kind: PathKind::Scatter { scatterer: 0 },
            },
        ]
    }

    #[test]
    fn estimated_snr_tracks_oracle() {
        let s = sounder();
        let paths = two_tap_paths();
        let mut rng = StdRng::seed_from_u64(11);
        let oracle = s.oracle_snr(&paths, 0.0);
        let est = s.sound_averaged(&paths, 10, 0.0, &mut rng).unwrap();
        // Shapes must agree: correlation of the two profiles is high.
        let n = oracle.len();
        let om = oracle.mean_db();
        let em = est.mean_db();
        let mut num = 0.0;
        let mut d_o = 0.0;
        let mut d_e = 0.0;
        for k in 0..n {
            let a = oracle.snr_db[k] - om;
            let b = est.snr_db[k] - em;
            num += a * b;
            d_o += a * a;
            d_e += b * b;
        }
        let corr = num / (d_o.sqrt() * d_e.sqrt());
        assert!(corr > 0.9, "correlation {corr}");
        assert!((om - em).abs() < 3.0, "means {om} vs {em}");
    }

    #[test]
    fn sounding_is_deterministic_per_seed() {
        let s = sounder();
        let paths = two_tap_paths();
        let a = s.sound(&paths, 0.0, &mut StdRng::seed_from_u64(5)).unwrap();
        let b = s.sound(&paths, 0.0, &mut StdRng::seed_from_u64(5)).unwrap();
        assert_eq!(a.snr.snr_db, b.snr.snr_db);
    }

    #[test]
    fn stronger_channel_higher_snr() {
        let s = sounder();
        let mut weak = two_tap_paths();
        for p in weak.iter_mut() {
            p.gain = p.gain * 0.1;
        }
        let mut rng = StdRng::seed_from_u64(3);
        let hi = s
            .sound_averaged(&two_tap_paths(), 5, 0.0, &mut rng)
            .unwrap();
        let lo = s.sound_averaged(&weak, 5, 0.0, &mut rng).unwrap();
        assert!(hi.mean_db() > lo.mean_db() + 15.0);
    }

    #[test]
    fn two_tap_channel_shows_frequency_selectivity() {
        let s = sounder();
        let mut rng = StdRng::seed_from_u64(9);
        let prof = s
            .sound_averaged(&two_tap_paths(), 10, 0.0, &mut rng)
            .unwrap();
        assert!(
            prof.selectivity_db() > 10.0,
            "two comparable taps 80 ns apart must produce deep fades, got {}",
            prof.selectivity_db()
        );
    }

    #[test]
    fn impairments_do_not_bias_snr_much() {
        let mut s = sounder();
        let paths = two_tap_paths();
        let mut rng = StdRng::seed_from_u64(21);
        let with = s.sound_averaged(&paths, 20, 0.0, &mut rng).unwrap();
        s.tx.impairments = Impairments::none();
        s.rx.impairments = Impairments::none();
        let mut rng2 = StdRng::seed_from_u64(21);
        let without = s.sound_averaged(&paths, 20, 0.0, &mut rng2).unwrap();
        assert!((with.mean_db() - without.mean_db()).abs() < 3.0);
    }

    #[test]
    fn oracle_snr_saturates() {
        let s = sounder();
        let strong = vec![SignalPath {
            gain: Complex64::real(1.0),
            delay_s: 0.0,
            doppler_hz: 0.0,
            aod_rad: 0.0,
            aoa_rad: 0.0,
            kind: PathKind::LineOfSight,
        }];
        let snr = s.oracle_snr(&strong, 0.0);
        assert!(snr.snr_db.iter().all(|&x| x <= SNR_SATURATION_DB));
    }

    #[test]
    fn empty_paths_yield_floor_snr() {
        let s = sounder();
        let mut rng = StdRng::seed_from_u64(1);
        let prof = s.sound(&[], 0.0, &mut rng).unwrap().snr;
        assert!(
            prof.mean_db() < 10.0,
            "no signal => near-zero SNR, got {}",
            prof.mean_db()
        );
    }
}
