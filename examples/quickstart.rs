//! Quickstart: measure a link, search the PRESS configuration space, and
//! actuate the best configuration — the paper's whole loop in ~60 lines.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use press::prelude::*;
use rand::SeedableRng;

fn main() {
    // The paper's Figure 4 bench: an NLOS link (direct path blocked by a
    // metal rack) in a cluttered office, plus three wall-mounted passive
    // PRESS elements, each a SP4T switch over {0, pi/2, pi, terminated}
    // reflective states. 4^3 = 64 array configurations.
    let rig = press::rig::fig4_rig(2);
    let system = &rig.system;
    let sounder = &rig.sounder;
    println!("PRESS quickstart");
    println!(
        "  room: 14 x 11 m office, link: {:.1} m NLOS",
        rig.lab.tx.position.distance(rig.lab.rx.position)
    );
    println!(
        "  array: {} elements, {} configurations\n",
        system.array.len(),
        system.array.config_space().size()
    );

    // A closed-loop controller: measure -> search -> actuate -> verify.
    // Each candidate is evaluated by actually sounding the channel (noisy
    // training-symbol CSI, like the WARP hardware), not by an oracle.
    let controller = Controller::new(Strategy::Exhaustive, LinkObjective::MaxMinSnr);
    let report = controller.run_episode(system, sounder);

    let lambda = system.lambda();
    println!(
        "baseline configuration {}:",
        system.array.label_of(&report.baseline_config, lambda)
    );
    println!("  worst-subcarrier SNR {:.1} dB", report.baseline_score);
    println!(
        "chosen configuration   {}:",
        system.array.label_of(&report.chosen_config, lambda)
    );
    println!("  worst-subcarrier SNR {:.1} dB", report.chosen_score);
    println!("  improvement          {:+.1} dB", report.improvement());
    println!(
        "  cost: {} measurements, {:.2} s emulated (coherence budget {:.0} ms: {})",
        report.measurements,
        report.elapsed_s,
        report.coherence_budget_s * 1e3,
        if report.within_coherence {
            "met"
        } else {
            "blown — the paper's own latency problem"
        }
    );

    // What the improvement buys at the MAC layer.
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let link =
        press::core::CachedLink::trace(system, sounder.tx.node.clone(), sounder.rx.node.clone());
    let before = sounder
        .sound_averaged(
            &link.paths(system, &report.baseline_config),
            8,
            0.0,
            &mut rng,
        )
        .unwrap();
    let after = sounder
        .sound_averaged(&link.paths(system, &report.chosen_config), 8, 0.0, &mut rng)
        .unwrap();
    println!("\nrate adaptation (802.11a/g ladder):");
    println!(
        "  before: {:5.1} Mb/s   after: {:5.1} Mb/s",
        press::phy::expected_throughput_mbps(&before),
        press::phy::expected_throughput_mbps(&after)
    );
}
