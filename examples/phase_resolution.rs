//! Phase resolution: testing the paper's §4.1 conjecture that "around eight
//! phase values along with the off state may provide sufficient resolution".
//!
//! Rebuilds the Figure 4 rig with 2, 4, 8, 16 and 32 evenly spaced
//! reflection phases per element (plus the off state) and measures the best
//! worst-subcarrier SNR each resolution can reach, by exhaustive search on
//! oracle channels.
//!
//! ```sh
//! cargo run --release --example phase_resolution
//! ```

use press::core::{search, CachedLink, PressSystem};
use press::prelude::*;

fn main() {
    println!("PRESS phase-resolution ablation (paper §4.1 conjecture)\n");
    println!(
        "{:>8} {:>12} {:>16} {:>14}",
        "phases", "configs", "best minSNR dB", "gain vs 2"
    );

    let mut base_gain = None;
    for n_phases in [2usize, 4, 8, 16, 32] {
        let score = best_min_snr(n_phases);
        let baseline = *base_gain.get_or_insert(score);
        println!(
            "{:>8} {:>12} {:>16.2} {:>14.2}",
            n_phases,
            (n_phases + 1).pow(3),
            score,
            score - baseline
        );
    }
    println!("\n(the paper conjectures ~8 phases + off suffice; diminishing returns past that)");
}

/// Best achievable worst-subcarrier SNR with `n_phases`-state elements, by
/// exhaustive search over oracle channels on the Figure 4 bench.
fn best_min_snr(n_phases: usize) -> f64 {
    use rand::SeedableRng;
    let lab = LabSetup::generate(&LabConfig::default(), 1);
    let lambda = lab.scene.wavelength();
    let mut rng = rand::rngs::StdRng::seed_from_u64(1u64.wrapping_mul(0x9E3779B97F4A7C15));
    let positions = lab.random_element_positions(3, &mut rng);
    let aim = (lab.tx.position + lab.rx.position) * 0.5;
    let elements: Vec<press::core::PlacedElement> = positions
        .iter()
        .map(|&p| press::core::PlacedElement {
            element: Element::quantized_passive(n_phases, true, lambda),
            position: p,
            antenna: Antenna::new(press::propagation::antenna::Pattern::press_patch(), aim - p),
        })
        .collect();
    let system = PressSystem::new(lab.scene.clone(), PressArray::new(elements));
    let sounder = Sounder::new(
        Numerology::wifi20(press::math::consts::WIFI_CHANNEL_11_HZ),
        SdrRadio::warp(lab.tx.clone()),
        SdrRadio::warp(lab.rx.clone()),
    );
    let link = CachedLink::trace(&system, sounder.tx.node.clone(), sounder.rx.node.clone());
    let space = system.array.config_space();
    let result = search::exhaustive(&space, |config| {
        sounder
            .oracle_snr(&link.paths(&system, config), 0.0)
            .min_db()
    });
    result.score
}
