//! Channel anatomy: from sounded CSI back to the paths that made it.
//!
//! The §2 inverse problem starts from measured channels, not path lists.
//! This example sounds the Figure 4 bench the way the hardware would,
//! renders the power-delay profile, runs the matched-filter path extractor,
//! and compares what it recovered against the tracer's ground truth —
//! the measurement science under every PRESS decision.
//!
//! ```sh
//! cargo run --release --example channel_anatomy
//! ```

use press::core::inverse::{extract_dominant_paths, reconstruct};
use press::core::CachedLink;
use press::phy::pdp::DelayProfile;
use press::prelude::*;
use rand::SeedableRng;

fn main() {
    println!("PRESS channel anatomy (CSI -> delay profile -> recovered paths)\n");
    let rig = press::rig::fig4_rig(1);
    let link = CachedLink::trace(
        &rig.system,
        rig.sounder.tx.node.clone(),
        rig.sounder.rx.node.clone(),
    );
    let config = Configuration::zeros(rig.system.array.len());
    let paths = link.paths(&rig.system, &config);
    let freqs = rig.sounder.num.active_freqs_hz();

    // Sound it like the hardware (noisy), average 16 frames.
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let mut h_est = vec![press::math::Complex64::ZERO; freqs.len()];
    let n_frames = 16;
    for _ in 0..n_frames {
        let sounding = rig.sounder.sound(&paths, 0.0, &mut rng).unwrap();
        for (acc, v) in h_est.iter_mut().zip(&sounding.estimate.h) {
            *acc += *v;
        }
    }
    for v in h_est.iter_mut() {
        *v = *v / n_frames as f64;
    }

    // Delay profile of the estimate.
    let spacing = rig.sounder.num.subcarrier_spacing_hz();
    let pdp = DelayProfile::from_channel(&h_est, spacing, 512);
    println!(
        "power-delay profile: peak at {:.0} ns, RMS spread {:.0} ns",
        pdp.peak_delay_s() * 1e9,
        pdp.rms_spread_s(0.05) * 1e9
    );

    // Matched-filter extraction (the sounding has an unknown common phase
    // and power scale; delays are what we can compare faithfully).
    let recovered = extract_dominant_paths(&h_est, &freqs, 6, 250e-9, 4001, 1e-3);
    println!("\nrecovered {} paths (strongest first):", recovered.len());
    for (i, p) in recovered.iter().enumerate() {
        println!(
            "  #{i}: delay {:6.1} ns, relative power {:5.1} dB",
            p.delay_s * 1e9,
            20.0 * (p.gain.abs() / recovered[0].gain.abs()).log10()
        );
    }

    // Ground truth from the tracer.
    let mut truth: Vec<_> = paths
        .iter()
        .map(|p| (p.delay_s, p.gain.abs(), p.kind))
        .collect();
    truth.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("\nstrongest true paths:");
    for (tau, gain, kind) in truth.iter().take(6) {
        println!(
            "      delay {:6.1} ns, relative power {:5.1} dB  {:?}",
            tau * 1e9,
            20.0 * (gain / truth[0].1).log10(),
            kind
        );
    }

    // Quantify: every recovered path within the sounding's delay resolution
    // of some true path?
    let resolution = 1.0 / (spacing * freqs.len() as f64); // ~62 ns
    let mut matched = 0;
    for r in &recovered {
        if truth
            .iter()
            .any(|(tau, _, _)| (tau - r.delay_s).abs() < resolution)
        {
            matched += 1;
        }
    }
    println!(
        "\n{matched}/{} recovered paths sit within the {:.0} ns delay resolution of a true path",
        recovered.len(),
        resolution * 1e9
    );
    let rec = reconstruct(&recovered, &freqs);
    let err: f64 = h_est
        .iter()
        .zip(&rec)
        .map(|(a, b)| (*a - *b).norm_sqr())
        .sum::<f64>()
        / h_est.iter().map(|x| x.norm_sqr()).sum::<f64>();
    println!(
        "path model explains {:.0}% of the measured channel energy",
        (1.0 - err) * 100.0
    );
}
