//! Dead-zone rescue: the paper's first motivating application.
//!
//! "How best to eliminate dead zones in the presence of the vagaries of
//! multipath propagation?" (§1). A client sits in a deep multipath fade —
//! its effective SNR is below the most robust MCS and the link is in
//! outage. PRESS reconfigures the walls instead of the endpoints and walks
//! the client out of the dead zone.
//!
//! ```sh
//! cargo run --release --example dead_zone_rescue
//! ```

use press::core::CachedLink;
use press::phy::{expected_throughput_mbps, select_mcs};
use press::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    println!("PRESS dead-zone rescue\n");

    // Scan client placements until we find a genuine dead zone under the
    // all-zeros PRESS configuration: a spot where rate adaptation fails.
    let mut rng = StdRng::seed_from_u64(1);
    let mut victim = None;
    for seed in 0..64u64 {
        let rig = press::rig::fig4_rig(seed);
        let link = CachedLink::trace(
            &rig.system,
            rig.sounder.tx.node.clone(),
            rig.sounder.rx.node.clone(),
        );
        let baseline = Configuration::zeros(rig.system.array.len());
        let profile = rig
            .sounder
            .sound_averaged(&link.paths(&rig.system, &baseline), 8, 0.0, &mut rng)
            .unwrap();
        let mcs = select_mcs(&profile);
        let bad = mcs.is_none_or(|m| m.index <= 4);
        if bad {
            victim = Some((seed, rig, link, profile));
            break;
        }
    }
    let (seed, rig, link, before) = victim.expect("some placement fades hard");
    println!("found a struggling client (placement seed {seed}):");
    describe("before PRESS", &before);

    // The controller searches by measurement, exactly like the quickstart,
    // but maximizing MAC throughput rather than raw SNR.
    let controller = Controller::new(Strategy::Exhaustive, LinkObjective::MaxThroughput);
    let report = controller.run_episode(&rig.system, &rig.sounder);
    let after = rig
        .sounder
        .sound_averaged(
            &link.paths(&rig.system, &report.chosen_config),
            8,
            0.0,
            &mut rng,
        )
        .unwrap();
    println!(
        "\nPRESS actuates {} after {} measurements:",
        rig.system
            .array
            .label_of(&report.chosen_config, rig.system.lambda()),
        report.measurements
    );
    describe("after PRESS", &after);

    let gain = expected_throughput_mbps(&after) - expected_throughput_mbps(&before);
    println!("\nthroughput gain: {gain:+.1} Mb/s");
    println!(
        "min-SNR lift: {:+.1} dB, selectivity change: {:+.1} dB",
        after.min_db() - before.min_db(),
        after.selectivity_db() - before.selectivity_db()
    );
}

fn describe(tag: &str, profile: &SnrProfile) {
    let mcs = select_mcs(profile);
    println!(
        "  {tag}: min SNR {:5.1} dB, median {:5.1} dB, selectivity {:4.1} dB -> {}",
        profile.min_db(),
        profile.median_db(),
        profile.selectivity_db(),
        match mcs {
            None => "OUTAGE (no MCS sustains this channel)".to_string(),
            Some(m) => format!(
                "MCS {} ({:?} r{}/{}) = {:.1} Mb/s",
                m.index,
                m.modulation,
                m.code_rate.0,
                m.code_rate.1,
                expected_throughput_mbps(profile)
            ),
        }
    );
}
