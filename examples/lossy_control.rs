//! Lossy control plane: what an unreliable actuation channel costs the
//! closed loop, in dB.
//!
//! The controller's search picks a configuration — but the array only holds
//! it if every switch command survives the control-plane transport. This
//! example runs the same episode four ways: oracle actuation (commands
//! teleport), a wired bus, a congested ISM radio with fire-and-forget
//! commands, and the same radio with adaptive retry/backoff. Stale elements
//! make the *verified* score diverge from the search's choice.
//!
//! ```sh
//! cargo run --release --example lossy_control
//! cargo run --release --example lossy_control -- --trace results/lossy_control.jsonl
//! ```
//!
//! With `--trace <path>` the example instead records one lossy episode per
//! search strategy (plus a joint-annealing space schedule) into a
//! structured JSONL trace — feed it to the `trace_report` bin for phase
//! latency tables and convergence CSVs. No wall clock is attached, so the
//! file is byte-identical across runs.

use press::control::Transport;
use press::prelude::*;
use press::propagation::Vec3;
use press::rig::{ElementPlacement, NetworkRig, PairLayout};
use press::trace::{EventKind, JsonlSink};

/// The congested ISM control plane every traced episode runs over.
fn lossy_mode() -> ActuationMode {
    ActuationMode::Transport(TransportActuation {
        transport: Transport::IsmRadio {
            bitrate_bps: 250e3,
            loss_prob: 0.5,
            mac_latency_s: 1e-3,
        },
        policy: AckPolicy::Adaptive {
            max_retries: 8,
            batch_cap: 16,
        },
        distance_m: 15.0,
        faults: FaultPlan::bursty(GilbertElliott::interference()),
    })
}

/// Traced mode: one seeded lossy episode per strategy, all into one JSONL
/// file, then a joint-annealing schedule over a 3-link space bracketed by
/// hand-emitted episode markers.
fn run_traced(path: &str) {
    let file = std::fs::File::create(path).unwrap_or_else(|e| panic!("create {path}: {e}"));
    let mut tracer = Tracer::new(JsonlSink::new(std::io::BufWriter::new(file)));

    let rig = press::rig::fig4_rig(2);
    println!("tracing lossy episodes to {path}\n");
    for strategy in [
        Strategy::Exhaustive,
        Strategy::Greedy { max_sweeps: 2 },
        Strategy::Random { budget: 48 },
        Strategy::Annealing { budget: 48 },
    ] {
        let mut c = Controller::new(strategy, LinkObjective::MaxMinSnr);
        c.seed = 3;
        c.actuation = lossy_mode();
        let r = c.run_episode_traced(&rig.system, &rig.sounder, None, &mut tracer);
        println!(
            "{:<12} score {:+8.3} dB, {:>3} measurements, reverted: {}{}",
            strategy.label(),
            r.chosen_score,
            r.measurements,
            r.reverted,
            if r.post_mortem.is_some() {
                " (flight-recorder post-mortem attached)"
            } else {
                ""
            }
        );
    }

    // Joint annealing optimizes a shared 3-link space with the oracle
    // objective — no controller episode wraps it, so bracket the steps with
    // hand-emitted markers for the report's episode accounting.
    let space = NetworkRig::builder()
        .lab_seed(6)
        .pairs(PairLayout::Clients(vec![
            Vec3::new(7.0, 5.0, 1.5),
            Vec3::new(6.8, 4.0, 1.5),
            Vec3::new(5.5, 6.2, 1.3),
        ]))
        .placement(ElementPlacement::RandomInLab {
            count: 3,
            rng_seed: 2,
        })
        .build()
        .smart_space(LinkObjective::MaxMeanSnr);
    tracer.emit(
        0.0,
        EventKind::EpisodeStart {
            seed: 3,
            links: space.n_links() as u32,
            strategy: "joint-annealing",
        },
    );
    let result = press::core::optimize_joint_observed(&space, 48, 3, |s| {
        tracer.emit(
            0.0,
            EventKind::SearchStep {
                strategy: "joint-annealing",
                iteration: s.iteration as u32,
                score: s.score,
                best: s.best,
                accepted: s.accepted,
            },
        );
    });
    tracer.emit(
        0.0,
        EventKind::EpisodeEnd {
            score: result.score,
            measurements: result.evaluations as u32,
            reverted: false,
        },
    );
    println!(
        "joint-annealing (3 links): score {:+8.3}, {} evaluations",
        result.score, result.evaluations
    );
    let events = tracer.seq();
    drop(tracer);
    println!("\n{events} events written to {path}");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--trace") {
        let default = "results/lossy_control.jsonl".to_string();
        run_traced(args.get(i + 1).unwrap_or(&default));
        return;
    }
    let rig = press::rig::fig4_rig(2);
    let base = Controller::new(Strategy::Exhaustive, LinkObjective::MaxMinSnr);

    // A congested 250 kb/s ISM control radio losing half its frames, with
    // Gilbert–Elliott interference bursts on top.
    let congested = Transport::IsmRadio {
        bitrate_bps: 250e3,
        loss_prob: 0.5,
        mac_latency_s: 1e-3,
    };
    let bursts = FaultPlan::bursty(GilbertElliott::interference());

    let modes: Vec<(&str, ActuationMode)> = vec![
        ("oracle", ActuationMode::Oracle),
        (
            "wired bus",
            ActuationMode::Transport(TransportActuation::wired()),
        ),
        (
            "lossy, fire-and-forget",
            ActuationMode::Transport(TransportActuation {
                transport: congested.clone(),
                policy: AckPolicy::None,
                distance_m: 15.0,
                faults: bursts.clone(),
            }),
        ),
        (
            "lossy, adaptive retry",
            ActuationMode::Transport(TransportActuation {
                transport: congested,
                policy: AckPolicy::Adaptive {
                    max_retries: 8,
                    batch_cap: 16,
                },
                distance_m: 15.0,
                faults: bursts,
            }),
        ),
    ];

    println!("closed loop under control-plane loss (Figure-4 rig, exhaustive search)\n");
    println!(
        "{:<24} {:>9} {:>7} {:>8} {:>8}  realized",
        "actuation", "score dB", "stale", "frames", "retries"
    );
    let mut oracle_score = 0.0;
    for (name, mode) in modes {
        // Average over a few episode seeds; report one representative run.
        let mut mean = 0.0;
        let mut stale = 0usize;
        let mut frames = 0usize;
        let mut retries = 0usize;
        let mut last = None;
        let seeds = 0..6u64;
        for seed in seeds.clone() {
            let mut c = base.clone();
            c.seed = seed;
            c.actuation = mode.clone();
            let r = c.run_episode(&rig.system, &rig.sounder);
            mean += r.chosen_score;
            stale += r.stale_elements;
            frames += r.actuation_frames;
            retries += r.actuation_retries;
            // Keep the episode with the most stale elements as the shown run.
            if last
                .as_ref()
                .is_none_or(|p: &press::core::ControlReport| r.stale_elements >= p.stale_elements)
            {
                last = Some(r);
            }
        }
        mean /= seeds.count() as f64;
        if name == "oracle" {
            oracle_score = mean;
        }
        let last = last.unwrap();
        println!(
            "{name:<24} {mean:>9.3} {stale:>7} {frames:>8} {retries:>8}  {:?} (chose {:?})",
            last.realized_config.states, last.chosen_config.states
        );
        if name != "oracle" {
            println!("{:<24} {:>+9.3} dB vs oracle", "", mean - oracle_score);
        }
    }

    // A stuck element lies: it acknowledges every command but never moves.
    // The protocol reports success; only the realized-configuration
    // accounting (and the verification measurement) see the truth.
    let mut broken = base.clone();
    broken.seed = 3; // a seed whose best configuration moves element 1
    broken.actuation = ActuationMode::Transport(TransportActuation {
        faults: FaultPlan::broken(ElementFaults::none().stuck(1, 0)),
        ..TransportActuation::wired()
    });
    let r = broken.run_episode(&rig.system, &rig.sounder);
    println!(
        "\nstuck element 1 (acks, never moves): chose {:?}, wall holds {:?}, {} stale",
        r.chosen_config.states, r.realized_config.states, r.stale_elements
    );
}
