//! Lossy control plane: what an unreliable actuation channel costs the
//! closed loop, in dB.
//!
//! The controller's search picks a configuration — but the array only holds
//! it if every switch command survives the control-plane transport. This
//! example runs the same episode four ways: oracle actuation (commands
//! teleport), a wired bus, a congested ISM radio with fire-and-forget
//! commands, and the same radio with adaptive retry/backoff. Stale elements
//! make the *verified* score diverge from the search's choice.
//!
//! ```sh
//! cargo run --release --example lossy_control
//! ```

use press::control::Transport;
use press::prelude::*;

fn main() {
    let rig = press::rig::fig4_rig(2);
    let base = Controller::new(Strategy::Exhaustive, LinkObjective::MaxMinSnr);

    // A congested 250 kb/s ISM control radio losing half its frames, with
    // Gilbert–Elliott interference bursts on top.
    let congested = Transport::IsmRadio {
        bitrate_bps: 250e3,
        loss_prob: 0.5,
        mac_latency_s: 1e-3,
    };
    let bursts = FaultPlan::bursty(GilbertElliott::interference());

    let modes: Vec<(&str, ActuationMode)> = vec![
        ("oracle", ActuationMode::Oracle),
        (
            "wired bus",
            ActuationMode::Transport(TransportActuation::wired()),
        ),
        (
            "lossy, fire-and-forget",
            ActuationMode::Transport(TransportActuation {
                transport: congested.clone(),
                policy: AckPolicy::None,
                distance_m: 15.0,
                faults: bursts.clone(),
            }),
        ),
        (
            "lossy, adaptive retry",
            ActuationMode::Transport(TransportActuation {
                transport: congested,
                policy: AckPolicy::Adaptive {
                    max_retries: 8,
                    batch_cap: 16,
                },
                distance_m: 15.0,
                faults: bursts,
            }),
        ),
    ];

    println!("closed loop under control-plane loss (Figure-4 rig, exhaustive search)\n");
    println!(
        "{:<24} {:>9} {:>7} {:>8} {:>8}  realized",
        "actuation", "score dB", "stale", "frames", "retries"
    );
    let mut oracle_score = 0.0;
    for (name, mode) in modes {
        // Average over a few episode seeds; report one representative run.
        let mut mean = 0.0;
        let mut stale = 0usize;
        let mut frames = 0usize;
        let mut retries = 0usize;
        let mut last = None;
        let seeds = 0..6u64;
        for seed in seeds.clone() {
            let mut c = base.clone();
            c.seed = seed;
            c.actuation = mode.clone();
            let r = c.run_episode(&rig.system, &rig.sounder);
            mean += r.chosen_score;
            stale += r.stale_elements;
            frames += r.actuation_frames;
            retries += r.actuation_retries;
            // Keep the episode with the most stale elements as the shown run.
            if last
                .as_ref()
                .is_none_or(|p: &press::core::ControlReport| r.stale_elements >= p.stale_elements)
            {
                last = Some(r);
            }
        }
        mean /= seeds.count() as f64;
        if name == "oracle" {
            oracle_score = mean;
        }
        let last = last.unwrap();
        println!(
            "{name:<24} {mean:>9.3} {stale:>7} {frames:>8} {retries:>8}  {:?} (chose {:?})",
            last.realized_config.states, last.chosen_config.states
        );
        if name != "oracle" {
            println!("{:<24} {:>+9.3} dB vs oracle", "", mean - oracle_score);
        }
    }

    // A stuck element lies: it acknowledges every command but never moves.
    // The protocol reports success; only the realized-configuration
    // accounting (and the verification measurement) see the truth.
    let mut broken = base.clone();
    broken.seed = 3; // a seed whose best configuration moves element 1
    broken.actuation = ActuationMode::Transport(TransportActuation {
        faults: FaultPlan::broken(ElementFaults::none().stuck(1, 0)),
        ..TransportActuation::wired()
    });
    let r = broken.run_episode(&rig.system, &rig.sounder);
    println!(
        "\nstuck element 1 (acks, never moves): chose {:?}, wall holds {:?}, {} stale",
        r.chosen_config.states, r.realized_config.states, r.stale_elements
    );
}
