//! Channel tracking for a walking user: how often must PRESS reconfigure?
//!
//! §2 of the paper bounds PRESS's reaction time by the channel coherence
//! time — ~80 ms for a user moving at 0.5 mph, ~6 ms at running speed. This
//! example walks a client across the office while the controller
//! re-optimizes the array at different periods (charging the fast control
//! plane's measurement + actuation latency as lost airtime), and reports
//! the throughput each reconfiguration cadence sustains.
//!
//! ```sh
//! cargo run --release --example walking_user
//! ```

use press::core::{track_mobile_client, LinearPatrol, PressSystem, TrackingConfig};
use press::prelude::*;

fn main() {
    println!("PRESS channel tracking vs user motion\n");
    let lab = LabSetup::generate(&LabConfig::default(), 2);
    let lambda = lab.scene.wavelength();
    let mut rng = rand_seed(0x51);
    let positions = lab.random_element_positions(3, &mut rng);
    let aim = (lab.tx.position + lab.rx.position) * 0.5;
    let array = PressArray::paper_passive_aimed(&positions, lambda, aim);
    let system = PressSystem::new(lab.scene.clone(), array);
    let mut tx = SdrRadio::warp(lab.tx.clone());
    tx.tx_power_dbm = -8.0; // mid rate-ladder: tracking gains are visible
    let num = Numerology::wifi20(press::math::consts::WIFI_CHANNEL_11_HZ);

    let mph = 0.44704;
    for &(label, speed) in &[
        ("standing-ish 0.5 mph", 0.5 * mph),
        ("walking 3 mph", 3.0 * mph),
    ] {
        let coherence = system.scene.coherence_time_s(speed);
        println!("== {label}: coherence time {:.0} ms", coherence * 1e3);
        println!(
            "{:>22} {:>18} {:>12}",
            "reconfig period", "mean throughput", "reconfigs"
        );
        let patrol = LinearPatrol {
            base: lab.rx.position,
            direction: Vec3::Y,
            span_m: 1.6,
            speed_mps: speed,
        };
        for &(name, period) in &[
            ("never", f64::INFINITY),
            ("every 2 s", 2.0),
            ("every 500 ms", 0.5),
            ("every 100 ms", 0.1),
            ("every 20 ms", 0.02),
        ] {
            let report = track_mobile_client(
                &system,
                &tx,
                &num,
                &patrol,
                &TrackingConfig {
                    period_s: period,
                    ..TrackingConfig::default()
                },
            );
            println!(
                "{name:>22} {:>13.1} Mb/s {:>12}",
                report.mean_throughput_mbps, report.reconfigurations
            );
        }
        println!();
    }
    println!("(faster motion decorrelates the channel sooner, so stale configurations");
    println!(" cost more and tighter reconfiguration cadences win — §2's budget, lived.)");
}

fn rand_seed(seed: u64) -> rand::rngs::StdRng {
    use rand::SeedableRng;
    rand::rngs::StdRng::seed_from_u64(seed)
}
