//! Large-MIMO conditioning: the paper's Figure 8 application as a library
//! user would run it.
//!
//! A 2×2 MIMO link whose channel matrix is poorly conditioned loses
//! capacity even at high SNR. PRESS sweeps its configurations, finds the
//! one minimizing the median condition number, and reports the Shannon
//! capacity it buys — "restoring performance without additional AP
//! processing complexity" (§1).
//!
//! ```sh
//! cargo run --release --example mimo_conditioning
//! ```

use press::core::CachedLink;
use press::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    println!("PRESS MIMO conditioning (2x2 NLOS link)\n");
    let rig = press::rig::fig8_rig(0);
    let space = rig.system.array.config_space();
    let spacing = rig.sounder.num.subcarrier_spacing_hz();

    let links: Vec<Vec<CachedLink>> = (0..2)
        .map(|a| {
            (0..2)
                .map(|b| CachedLink::trace(&rig.system, rig.tx[a].clone(), rig.rx[b].clone()))
                .collect()
        })
        .collect();

    let mut rng = StdRng::seed_from_u64(2);
    let mut lo_phase = 0.0;
    let mut results: Vec<(Configuration, f64, f64)> = Vec::new();
    for config in space.iter() {
        // Coherent 2x2 sounding, 10 measurements averaged.
        let mut measurements = Vec::with_capacity(10);
        for _ in 0..10 {
            let paths: Vec<Vec<Vec<_>>> = links
                .iter()
                .map(|row| row.iter().map(|l| l.paths(&rig.system, &config)).collect())
                .collect();
            let est = rig
                .sounder
                .sound_mimo(&paths, lo_phase, 0.0, &mut rng)
                .unwrap();
            lo_phase += 0.002;
            let h: Vec<Vec<Vec<press::math::Complex64>>> = (0..2)
                .map(|b| (0..2).map(|a| est[a][b].h.clone()).collect())
                .collect();
            measurements.push(MimoChannel::from_scalar_channels(&h));
        }
        let avg = MimoChannel::average(&measurements);
        let cond = avg.median_condition_db().unwrap();
        // Capacity at a nominal 20 dB post-processing SNR; normalize out the
        // raw channel magnitude so conditioning (not gain) drives the number.
        let cap = avg.capacity_bps(20.0, spacing).unwrap() / 1e6;
        results.push((config, cond, cap));
    }

    results.sort_by(|a, b| a.1.total_cmp(&b.1));
    let lambda = rig.system.lambda();
    let (best, best_cond, _) = &results[0];
    let (worst, worst_cond, _) = &results[results.len() - 1];

    println!("64 configurations swept (10 coherent measurements each):");
    println!(
        "  best conditioned:  {} median {:5.2} dB",
        rig.system.array.label_of(best, lambda),
        best_cond
    );
    println!(
        "  worst conditioned: {} median {:5.2} dB",
        rig.system.array.label_of(worst, lambda),
        worst_cond
    );
    println!(
        "  conditioning span: {:.2} dB (the paper measured ~1.5 dB with its prototype)",
        worst_cond - best_cond
    );

    println!("\ntop five configurations by conditioning:");
    for (cfg, cond, cap) in results.iter().take(5) {
        println!(
            "  {}  cond {:5.2} dB",
            rig.system.array.label_of(cfg, lambda),
            cond
        );
        let _ = cap;
    }
}
