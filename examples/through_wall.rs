//! Through-wall rescue on an office floor: the Figure 1 vision at building
//! scale — and the paper's passive/active trade-off, lived.
//!
//! An AP in one room serves a client behind a concrete partition; the
//! energy's main route is the doorway. Passive wall elements flanking the
//! door are placed and tuned first — and gain almost nothing, because a
//! backscatter path with two 4 m legs is ~30 dB below the surviving
//! channel. Then one *active* (PhyCloak-class) relay element at the
//! doorway does what §4.1 promises: "a small number of active PRESS
//! elements might replace several more passive elements."
//!
//! ```sh
//! cargo run --release --example through_wall
//! ```

use press::core::placement::greedy_placement;
use press::core::{search, CachedLink, Configuration, PlacedElement, PressSystem};
use press::phy::expected_throughput_mbps;
use press::prelude::*;
use press::propagation::building::{OfficeConfig, OfficeFloor};
use press::propagation::Pattern;

fn main() {
    println!("PRESS through-wall rescue (two-room office, door-flanking elements)\n");
    // A concrete-block partition: at 2.4 GHz it eats ~18 dB, so the doorway
    // is the energy's main way between the rooms — the regime where
    // door-flanking elements matter. (Plain drywall is nearly transparent.)
    let cfg = OfficeConfig {
        partition: press::propagation::Material::CONCRETE,
        ..OfficeConfig::default()
    };
    let floor = OfficeFloor::generate(&cfg, 1);
    let num = Numerology::wifi20(press::math::consts::WIFI_CHANNEL_11_HZ);
    // A low-power (IoT-class) AP: the cross-room link sits mid rate-ladder
    // where every dB PRESS recovers is visible.
    let mut ap_radio = SdrRadio::warp(floor.ap.clone());
    ap_radio.tx_power_dbm = 0.0;
    let sounder = Sounder::new(num, ap_radio, SdrRadio::warp(floor.client.clone()));
    println!(
        "  AP room A {:?} -> client room B {:?}, partition at x={:.1} m, door {:.1} m wide",
        (floor.ap.position.x, floor.ap.position.y),
        (floor.client.position.x, floor.client.position.y),
        floor.partition_x,
        cfg.door_w
    );

    // Baseline: no PRESS at all.
    let bare = PressSystem::new(floor.scene.clone(), PressArray::new(vec![]));
    let bare_link = CachedLink::trace(&bare, floor.ap.clone(), floor.client.clone());
    let before = sounder.oracle_snr(&bare_link.paths(&bare, &Configuration::zeros(0)), 0.0);
    println!(
        "\nwithout PRESS: mean SNR {:5.1} dB, min {:5.1} dB -> {:.1} Mb/s",
        before.mean_db(),
        before.min_db(),
        expected_throughput_mbps(&before)
    );

    // Place 4 elements on the wall around the doorway (greedy placement),
    // each aimed at the doorway center.
    let lambda = floor.scene.wavelength();
    let aim = floor.door_center;
    let factory = |p: press::propagation::Vec3| PlacedElement {
        element: Element::paper_passive(lambda),
        position: p,
        antenna: Antenna::new(Pattern::press_patch(), aim - p),
    };
    let objective = |p: &SnrProfile| p.mean_db();
    let placement = greedy_placement(
        &floor.scene,
        &sounder,
        &floor.doorway_candidates,
        4,
        &factory,
        &objective,
    );
    println!(
        "\nplaced {} wall elements (greedy, {} oracle evaluations):",
        placement.array.len(),
        placement.evaluations
    );
    for pe in &placement.array.elements {
        println!(
            "  element at ({:.2}, {:.2}, {:.2}) m",
            pe.position.x, pe.position.y, pe.position.z
        );
    }

    // Tune the passive deployment's configuration.
    let system = PressSystem::new(floor.scene.clone(), placement.array);
    let link = CachedLink::trace(&system, floor.ap.clone(), floor.client.clone());
    let space = system.array.config_space();
    let result = search::exhaustive(&space, |c| {
        objective(&sounder.oracle_snr(&link.paths(&system, c), 0.0))
    });
    let after = sounder.oracle_snr(&link.paths(&system, &result.best), 0.0);
    println!(
        "\npassive PRESS {}: mean SNR {:5.1} dB -> {:.1} Mb/s   (gain {:+.1} dB)",
        system.array.label_of(&result.best, lambda),
        after.mean_db(),
        expected_throughput_mbps(&after),
        after.mean_db() - before.mean_db(),
    );
    println!("  (a backscatter path with two ~4 m legs is ~30 dB under the channel —");
    println!("   passive elements cannot fix a room-scale dead zone, as §3 of the paper warns)");

    // The hybrid answer: one active full-duplex relay IN the doorway.
    // Commercial repeaters run 50+ dB of gain; cap ours at 50 dB.
    let mut relay = Element::active(50.0);
    relay.program_active(50.0, 0.0, true);
    let hybrid = PressSystem::new(
        floor.scene.clone(),
        PressArray::new(vec![PlacedElement {
            element: relay,
            position: floor.door_center,
            antenna: Antenna::new(Pattern::endpoint_omni(), press::propagation::Vec3::Z),
        }]),
    );
    let hybrid_link = CachedLink::trace(&hybrid, floor.ap.clone(), floor.client.clone());
    // Pick the relay phase that best helps the client (4 candidate phases).
    let mut best = (0.0, f64::NEG_INFINITY);
    for k in 0..4 {
        let phase = k as f64 * std::f64::consts::FRAC_PI_2;
        let mut sys = hybrid.clone();
        sys.array.elements[0]
            .element
            .program_active(50.0, phase, true);
        let profile = sounder.oracle_snr(&hybrid_link.paths(&sys, &Configuration::zeros(1)), 0.0);
        if profile.mean_db() > best.1 {
            best = (phase, profile.mean_db());
        }
    }
    let mut sys = hybrid.clone();
    sys.array.elements[0]
        .element
        .program_active(50.0, best.0, true);
    let relayed = sounder.oracle_snr(&hybrid_link.paths(&sys, &Configuration::zeros(1)), 0.0);
    println!(
        "\none ACTIVE doorway relay (50 dB): mean SNR {:5.1} dB -> {:.1} Mb/s   (gain {:+.1} dB)",
        relayed.mean_db(),
        expected_throughput_mbps(&relayed),
        relayed.mean_db() - before.mean_db(),
    );
    println!("\nthe paper's §4.1 hybrid argument, at building scale: passive density for");
    println!("in-room nulls, a few active elements for architecture-level dead zones.");
}
