//! Network harmonization: the paper's Figure 2 scenario.
//!
//! Two co-channel AP→client pairs share a room. A dynamic frequency split
//! gives AP1/Client1 the lower half-band and AP2/Client2 the upper — but
//! that only pays off when each communication channel is strong in its own
//! half and the cross (interference) channels are weak. PRESS "harmonizes"
//! the four channels by reshaping the multipath they share.
//!
//! ```sh
//! cargo run --release --example network_harmonization
//! ```

use press::core::{harmonization_score, partition_score, search, CachedLink, PressSystem};
use press::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    println!("PRESS network harmonization (two co-channel networks)\n");

    // One room, two networks, both crossing the central equipment rack so
    // all four channels are NLOS — the regime where passive PRESS has
    // leverage (the paper: LOS links need active elements).
    let lab = LabSetup::generate(&LabConfig::default(), 11);
    let lambda = lab.scene.wavelength();
    let ap1 = SdrRadio::warp(RadioNode::omni_at(Vec3::new(4.2, 4.2, 1.4)));
    let c1 = SdrRadio::warp(RadioNode::omni_at(Vec3::new(7.0, 5.0, 1.5)));
    let ap2 = SdrRadio::warp(RadioNode::omni_at(Vec3::new(4.4, 5.2, 1.4)));
    let c2 = SdrRadio::warp(RadioNode::omni_at(Vec3::new(6.8, 4.0, 1.5)));

    // Six four-phase elements flanking the rack's open edges, where they
    // see all four radios.
    let mut rng = StdRng::seed_from_u64(5);
    let positions: Vec<Vec3> = [
        (5.3, 3.4),
        (5.9, 3.3),
        (5.6, 3.0),
        (5.3, 5.9),
        (5.9, 6.0),
        (5.6, 6.3),
    ]
    .iter()
    .map(|&(x, y)| Vec3::new(x + rng.gen_range(-0.05..0.05), y, 1.5))
    .collect();
    let aim = Vec3::new(5.6, 4.7, 1.5);
    let elements: Vec<press::core::PlacedElement> = positions
        .iter()
        .map(|&p| press::core::PlacedElement {
            element: Element::four_phase_passive(lambda),
            position: p,
            antenna: Antenna::new(press::propagation::antenna::Pattern::press_patch(), aim - p),
        })
        .collect();
    let system = PressSystem::new(lab.scene.clone(), PressArray::new(elements));
    let space = system.array.config_space();
    println!(
        "  4 channels x {} elements x 4 phases = {} configurations",
        system.array.len(),
        space.size()
    );

    let num = Numerology::wifi20(press::math::consts::WIFI_CHANNEL_11_HZ);
    let mk_sounder =
        |tx: &SdrRadio, rx: &SdrRadio| Sounder::new(num.clone(), tx.clone(), rx.clone());
    // The four channels of Figure 2: two communication, two interference.
    let pairs = [
        ("H11 AP1->C1 (comm)", mk_sounder(&ap1, &c1)),
        ("H22 AP2->C2 (comm)", mk_sounder(&ap2, &c2)),
        ("H12 AP1->C2 (intf)", mk_sounder(&ap1, &c2)),
        ("H21 AP2->C1 (intf)", mk_sounder(&ap2, &c1)),
    ];
    let links: Vec<CachedLink> = pairs
        .iter()
        .map(|(_, s)| CachedLink::trace(&system, s.tx.node.clone(), s.rx.node.clone()))
        .collect();

    let mut eval_rng = StdRng::seed_from_u64(17);
    let measure_all = |config: &Configuration, rng: &mut StdRng| -> Vec<SnrProfile> {
        links
            .iter()
            .zip(&pairs)
            .map(|(link, (_, sounder))| {
                sounder
                    .sound_averaged(&link.paths(&system, config), 4, 0.0, rng)
                    .unwrap()
            })
            .collect()
    };

    let weights = Default::default();
    let score_of = |p: &[SnrProfile]| harmonization_score(&p[0], &p[1], &p[2], &p[3], &weights);

    let baseline_cfg = Configuration::zeros(space.n_elements());
    let baseline = measure_all(&baseline_cfg, &mut eval_rng);
    println!("\nbefore PRESS (score {:+.1}):", score_of(&baseline));
    report(&pairs, &baseline);

    // 4096 configurations: search with annealing under a measurement budget.
    let mut search_rng = StdRng::seed_from_u64(23);
    let result = search::simulated_annealing(&space, 400, 4.0, 0.05, &mut search_rng, |c| {
        let profiles = measure_all(c, &mut eval_rng);
        score_of(&profiles)
    });
    let tuned = measure_all(&result.best, &mut eval_rng);
    println!(
        "\nafter PRESS {} ({} measurements, score {:+.1}):",
        system.array.label_of(&result.best, lambda),
        result.evaluations,
        score_of(&tuned)
    );
    report(&pairs, &tuned);

    let part_before = baseline[0].half_band_contrast_db() - baseline[1].half_band_contrast_db();
    let part_after = tuned[0].half_band_contrast_db() - tuned[1].half_band_contrast_db();
    println!("\nband partition (H11 low-band preference minus H22's): {part_before:+.1} dB -> {part_after:+.1} dB");
    let sir_before = partition_score(&baseline[0], &baseline[1], &baseline[2], &baseline[3]);
    let sir_after = partition_score(&tuned[0], &tuned[1], &tuned[2], &tuned[3]);
    println!(
        "spatial partition (sum of comm-minus-interference gaps): {sir_before:+.1} dB -> {sir_after:+.1} dB"
    );
}

fn report(pairs: &[(&str, Sounder); 4], profiles: &[SnrProfile]) {
    for ((name, _), p) in pairs.iter().zip(profiles) {
        println!(
            "  {name}: mean {:5.1} dB, low-half {:5.1} dB, high-half {:5.1} dB",
            p.mean_db(),
            p.mean_db() + p.half_band_contrast_db() / 2.0,
            p.mean_db() - p.half_band_contrast_db() / 2.0,
        );
    }
}
