//! Network harmonization: the paper's Figure 2 scenario, end to end.
//!
//! Two co-channel AP→client pairs share a room. A dynamic frequency split
//! gives AP1/Client1 the lower half-band and AP2/Client2 the upper — but
//! that only pays off when each communication channel is strong in its own
//! half and the cross (interference) channels are weak. PRESS "harmonizes"
//! the four channels by reshaping the multipath they share.
//!
//! All four channels are registered in one [`SmartSpace`] — communication
//! links with positive weight and band-preference objectives, interference
//! links with negative weight — and a single closed-loop controller
//! episode measures, searches, actuates the winning configuration over a
//! real (lossy) control-plane transport, and verifies every link against
//! the array the control plane actually produced. Per-[`LinkId`] verified
//! scores and control-plane metrics land in
//! `results/network_harmonization.csv`.
//!
//! ```sh
//! cargo run --release --example network_harmonization
//! ```

use press::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    println!("PRESS network harmonization (two co-channel networks)\n");

    // One room, two networks, both crossing the central equipment rack so
    // all four channels are NLOS — the regime where passive PRESS has
    // leverage (the paper: LOS links need active elements).
    let lab = LabSetup::generate(&LabConfig::default(), 11);
    let lambda = lab.scene.wavelength();
    let ap1 = SdrRadio::warp(RadioNode::omni_at(Vec3::new(4.2, 4.2, 1.4)));
    let c1 = SdrRadio::warp(RadioNode::omni_at(Vec3::new(7.0, 5.0, 1.5)));
    let ap2 = SdrRadio::warp(RadioNode::omni_at(Vec3::new(4.4, 5.2, 1.4)));
    let c2 = SdrRadio::warp(RadioNode::omni_at(Vec3::new(6.8, 4.0, 1.5)));

    // Six four-phase elements flanking the rack's open edges, where they
    // see all four radios.
    let mut rng = StdRng::seed_from_u64(5);
    let positions: Vec<Vec3> = [
        (5.3, 3.4),
        (5.9, 3.3),
        (5.6, 3.0),
        (5.3, 5.9),
        (5.9, 6.0),
        (5.6, 6.3),
    ]
    .iter()
    .map(|&(x, y)| Vec3::new(x + rng.gen_range(-0.05..0.05), y, 1.5))
    .collect();
    let aim = Vec3::new(5.6, 4.7, 1.5);
    let elements: Vec<press::core::PlacedElement> = positions
        .iter()
        .map(|&p| press::core::PlacedElement {
            element: Element::four_phase_passive(lambda),
            position: p,
            antenna: Antenna::new(press::propagation::antenna::Pattern::press_patch(), aim - p),
        })
        .collect();
    let system = PressSystem::new(lab.scene.clone(), PressArray::new(elements));

    let num = Numerology::wifi20(press::math::consts::WIFI_CHANNEL_11_HZ);
    let mk_sounder =
        |tx: &SdrRadio, rx: &SdrRadio| Sounder::new(num.clone(), tx.clone(), rx.clone());

    // The four channels of Figure 2 in one registry: communication links
    // pushed toward their half-band (positive weight), interference links
    // suppressed (negative weight). The environment is traced once per
    // endpoint pair and shared by every measurement below.
    let mut space = SmartSpace::new(system);
    space.add_link(
        "H11 AP1->C1 (comm)",
        mk_sounder(&ap1, &c1),
        LinkObjective::FavorLowBand,
        1.0,
    );
    space.add_link(
        "H22 AP2->C2 (comm)",
        mk_sounder(&ap2, &c2),
        LinkObjective::FavorHighBand,
        1.0,
    );
    space.add_link(
        "H12 AP1->C2 (intf)",
        mk_sounder(&ap1, &c2),
        LinkObjective::MaxMeanSnr,
        -0.5,
    );
    space.add_link(
        "H21 AP2->C1 (intf)",
        mk_sounder(&ap2, &c1),
        LinkObjective::MaxMeanSnr,
        -0.5,
    );
    println!(
        "  {} channels x {} elements x 4 phases = {} configurations",
        space.n_links(),
        space.system().array.len(),
        space.config_space().size()
    );

    // One closed-loop episode: 400 measured annealing candidates, the
    // winner actuated over a lossy ISM control radio and re-verified on
    // every link.
    let mut controller = Controller::new(
        Strategy::Annealing { budget: 400 },
        LinkObjective::MaxMeanSnr, // single-link field; the registry drives
    );
    controller.seed = 23;
    controller.timing = press::core::TimingModel::fast_control_plane();
    controller.coherence_budget_s = 0.5;
    controller.actuation = ActuationMode::Transport(TransportActuation::ism());

    let link_ids: Vec<(u32, String)> = space
        .links()
        .iter()
        .map(|sl| (sl.id.0, sl.label.clone()))
        .collect();
    let mut metrics = SpaceMetrics::new(&link_ids);
    let report = controller.run_space_episode_instrumented(&space, Some(&mut metrics));

    println!(
        "\nbefore PRESS (weighted score {:+.1}):",
        report.baseline_score
    );
    for lr in &report.links {
        println!(
            "  {}: mean {:5.1} dB, objective {:+.1}",
            lr.label, lr.baseline_mean_snr_db, lr.baseline_score
        );
    }
    println!(
        "\nafter PRESS {} ({} measurements, {} control frames, weighted score {:+.1}{}):",
        space.system().array.label_of(&report.chosen_config, lambda),
        report.measurements,
        report.actuation_frames,
        report.chosen_score,
        if report.reverted { ", reverted" } else { "" }
    );
    for lr in &report.links {
        println!(
            "  {}: mean {:5.1} dB, objective {:+.1} ({:+.1})",
            lr.label,
            lr.chosen_mean_snr_db,
            lr.chosen_score,
            lr.improvement()
        );
    }

    // Band partition: the comm links' half-band preferences are their own
    // objectives (FavorLowBand = +contrast, FavorHighBand = -contrast).
    let part_before = report.links[0].baseline_score + report.links[1].baseline_score;
    let part_after = report.links[0].chosen_score + report.links[1].chosen_score;
    println!(
        "\nband partition (H11 low-band preference plus H22 high-band preference): \
         {part_before:+.1} dB -> {part_after:+.1} dB"
    );
    println!(
        "control plane: {} ({} stale elements after verification)",
        metrics.space, report.stale_elements
    );

    // Per-LinkId rows: verified scores + attributed control-plane metrics.
    let header = format!(
        "link_id,label,weight,baseline_score,chosen_score,baseline_mean_snr_db,chosen_mean_snr_db,{}",
        ControlMetrics::csv_header()
    );
    let mut rows: Vec<String> = report
        .links
        .iter()
        .zip(&metrics.links)
        .map(|(lr, (id, label, m))| {
            assert_eq!(lr.id.0, *id);
            format!(
                "{},\"{}\",{},{:.4},{:.4},{:.4},{:.4},{}",
                id,
                label,
                lr.weight,
                lr.baseline_score,
                lr.chosen_score,
                lr.baseline_mean_snr_db,
                lr.chosen_mean_snr_db,
                m.csv_row()
            )
        })
        .collect();
    rows.push(format!(
        "space,\"all links\",,{:.4},{:.4},,,{}",
        report.baseline_score,
        report.chosen_score,
        metrics.space.csv_row()
    ));
    let csv = format!("{header}\n{}\n", rows.join("\n"));
    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write("results/network_harmonization.csv", csv).expect("write csv");
    println!("wrote results/network_harmonization.csv");
}
