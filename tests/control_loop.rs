//! Integration: the control plane actuating real search results, and the
//! timing story connecting §2's budgets to §4.2's transport choices.

use press::control::{actuate, AckPolicy, Message, Transport};
use press::core::{
    ActuationMode, Controller, LinkObjective, Strategy, TimingModel, TransportActuation,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Search chooses a configuration; the control plane delivers it; the array
/// ends up in exactly that configuration.
#[test]
fn chosen_configuration_survives_the_wire() {
    let rig = press::rig::fig4_rig(1);
    let controller = Controller::new(Strategy::Random { budget: 8 }, LinkObjective::MaxMeanSnr);
    let report = controller.run_episode(&rig.system, &rig.sounder);

    // Encode as a batch, push through the lossy ISM transport with acks,
    // then decode and apply to a fresh array.
    let assignments: Vec<(u16, u8)> = report
        .chosen_config
        .states
        .iter()
        .enumerate()
        .map(|(i, &s)| (i as u16, s as u8))
        .collect();
    let mut rng = StdRng::seed_from_u64(3);
    let act = actuate(
        &Transport::ism(),
        &assignments,
        10.0,
        AckPolicy::PerElement { max_retries: 8 },
        &mut rng,
    );
    assert!(act.complete(), "actuation failed: {:?}", act.failed);
    assert!(act.confirmed(), "unconfirmed: {:?}", act.unconfirmed);

    // The wire protocol round-trips the same assignment.
    let msg = Message::BatchSet {
        seq: 1,
        assignments: assignments.clone(),
    };
    let decoded = Message::decode(&msg.encode()).unwrap();
    let mut array = rig.system.array.clone();
    if let Message::BatchSet {
        assignments: got, ..
    } = decoded
    {
        for (element, state) in got {
            array.elements[element as usize]
                .element
                .set_state(state as usize)
                .unwrap();
        }
    } else {
        panic!("wrong decode");
    }
    assert_eq!(array.current_config(), report.chosen_config);
}

/// The paper's central timing tension, end to end: the prototype cannot
/// reconfigure within coherence, a wired fast control plane can.
#[test]
fn timing_budgets_differentiate_control_planes() {
    let rig = press::rig::fig4_rig(0);

    let slow = Controller::new(Strategy::Greedy { max_sweeps: 1 }, LinkObjective::MaxMinSnr);
    let slow_report = slow.run_episode(&rig.system, &rig.sounder);
    assert!(
        !slow_report.within_coherence,
        "paper-prototype timing must blow 80 ms"
    );

    let mut fast = Controller::new(Strategy::Greedy { max_sweeps: 1 }, LinkObjective::MaxMinSnr);
    fast.timing = TimingModel::fast_control_plane();
    let fast_report = fast.run_episode(&rig.system, &rig.sounder);
    assert!(
        fast_report.within_coherence,
        "fast control plane must fit: {} s",
        fast_report.elapsed_s
    );
    assert_eq!(slow_report.measurements, fast_report.measurements);
}

/// Closing the loop through a clean wired transport must reproduce the
/// oracle-actuation episode's decision and scores exactly (the actuation
/// RNG is a separate seed stream, so the measurement draws are untouched).
#[test]
fn wired_closed_loop_matches_oracle_episode() {
    let rig = press::rig::fig4_rig(2);
    let oracle = Controller::new(Strategy::Random { budget: 8 }, LinkObjective::MaxMeanSnr);
    let mut wired = oracle.clone();
    wired.actuation = ActuationMode::Transport(TransportActuation::wired());
    let a = oracle.run_episode(&rig.system, &rig.sounder);
    let b = wired.run_episode(&rig.system, &rig.sounder);
    assert_eq!(a.chosen_config, b.chosen_config);
    assert_eq!(a.chosen_score, b.chosen_score);
    assert_eq!(a.baseline_score, b.baseline_score);
    assert_eq!(a.measurements, b.measurements);
    assert_eq!(b.stale_elements, 0);
    // Determinism per seed with the transport in the loop.
    let b2 = wired.run_episode(&rig.system, &rig.sounder);
    assert_eq!(b.chosen_config, b2.chosen_config);
    assert_eq!(b.chosen_score, b2.chosen_score);
    assert_eq!(b.actuation_frames, b2.actuation_frames);
}

/// A lossy fire-and-forget control plane leaves stale elements; the
/// verification measurement must see the array the control plane actually
/// produced — measurably changing the episode outcome vs the oracle path.
#[test]
fn lossy_fire_and_forget_episodes_diverge_from_oracle() {
    let rig = press::rig::fig4_rig(2);
    let oracle = Controller::new(Strategy::Exhaustive, LinkObjective::MaxMinSnr);
    let mut lossy = oracle.clone();
    lossy.actuation = ActuationMode::Transport(TransportActuation {
        transport: Transport::IsmRadio {
            bitrate_bps: 250e3,
            loss_prob: 0.9,
            mac_latency_s: 1e-3,
        },
        policy: AckPolicy::None,
        distance_m: 15.0,
        faults: press::control::FaultPlan::none(),
    });
    let mut saw_divergence = false;
    for seed in 0..6 {
        let mut a = oracle.clone();
        a.seed = seed;
        let mut b = lossy.clone();
        b.seed = seed;
        let ra = a.run_episode(&rig.system, &rig.sounder);
        let rb = b.run_episode(&rig.system, &rig.sounder);
        if rb.stale_elements > 0 && !ra.reverted {
            saw_divergence = true;
            assert_ne!(ra.chosen_score, rb.chosen_score, "seed {seed}");
            assert_ne!(rb.realized_config, rb.chosen_config, "seed {seed}");
        }
    }
    assert!(
        saw_divergence,
        "90% loss never stranded elements across 6 seeds"
    );
}

/// Actuation latency measured by the event simulation must be consistent
/// with what the coherence budgets require of each §4.2 candidate.
#[test]
fn transport_latencies_order_correctly() {
    let assignments: Vec<(u16, u8)> = (0..64).map(|e| (e, 2)).collect();
    let mut times = Vec::new();
    for t in [
        Transport::wired(),
        Transport::ism(),
        Transport::ultrasound(),
    ] {
        let mut rng = StdRng::seed_from_u64(5);
        let r = actuate(
            &t,
            &assignments,
            10.0,
            AckPolicy::PerElement { max_retries: 8 },
            &mut rng,
        );
        assert!(r.complete());
        times.push(r.completion_s);
    }
    assert!(times[0] < times[1] && times[1] < times[2], "{times:?}");
    assert!(
        times[0] < 2e-3,
        "wire fits the packet timescale: {}",
        times[0]
    );
    assert!(
        times[2] > 80e-3,
        "ultrasound blows even standing coherence: {}",
        times[2]
    );
}
