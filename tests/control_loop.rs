//! Integration: the control plane actuating real search results, and the
//! timing story connecting §2's budgets to §4.2's transport choices.

use press::control::{actuate, AckPolicy, Message, Transport};
use press::core::{Controller, LinkObjective, Strategy, TimingModel};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Search chooses a configuration; the control plane delivers it; the array
/// ends up in exactly that configuration.
#[test]
fn chosen_configuration_survives_the_wire() {
    let rig = press::rig::fig4_rig(1);
    let controller = Controller::new(Strategy::Random { budget: 8 }, LinkObjective::MaxMeanSnr);
    let report = controller.run_episode(&rig.system, &rig.sounder);

    // Encode as a batch, push through the lossy ISM transport with acks,
    // then decode and apply to a fresh array.
    let assignments: Vec<(u16, u8)> = report
        .chosen_config
        .states
        .iter()
        .enumerate()
        .map(|(i, &s)| (i as u16, s as u8))
        .collect();
    let mut rng = StdRng::seed_from_u64(3);
    let act = actuate(
        &Transport::ism(),
        &assignments,
        10.0,
        AckPolicy::PerElement { max_retries: 8 },
        &mut rng,
    );
    assert!(act.complete(), "actuation failed: {:?}", act.failed_elements);

    // The wire protocol round-trips the same assignment.
    let msg = Message::BatchSet { seq: 1, assignments: assignments.clone() };
    let decoded = Message::decode(&msg.encode()).unwrap();
    let mut array = rig.system.array.clone();
    if let Message::BatchSet { assignments: got, .. } = decoded {
        for (element, state) in got {
            array.elements[element as usize]
                .element
                .set_state(state as usize)
                .unwrap();
        }
    } else {
        panic!("wrong decode");
    }
    assert_eq!(array.current_config(), report.chosen_config);
}

/// The paper's central timing tension, end to end: the prototype cannot
/// reconfigure within coherence, a wired fast control plane can.
#[test]
fn timing_budgets_differentiate_control_planes() {
    let rig = press::rig::fig4_rig(0);

    let slow = Controller::new(Strategy::Greedy { max_sweeps: 1 }, LinkObjective::MaxMinSnr);
    let slow_report = slow.run_episode(&rig.system, &rig.sounder);
    assert!(!slow_report.within_coherence, "paper-prototype timing must blow 80 ms");

    let mut fast = Controller::new(Strategy::Greedy { max_sweeps: 1 }, LinkObjective::MaxMinSnr);
    fast.timing = TimingModel::fast_control_plane();
    let fast_report = fast.run_episode(&rig.system, &rig.sounder);
    assert!(
        fast_report.within_coherence,
        "fast control plane must fit: {} s",
        fast_report.elapsed_s
    );
    assert_eq!(slow_report.measurements, fast_report.measurements);
}

/// Actuation latency measured by the event simulation must be consistent
/// with what the coherence budgets require of each §4.2 candidate.
#[test]
fn transport_latencies_order_correctly() {
    let assignments: Vec<(u16, u8)> = (0..64).map(|e| (e, 2)).collect();
    let mut times = Vec::new();
    for t in [Transport::wired(), Transport::ism(), Transport::ultrasound()] {
        let mut rng = StdRng::seed_from_u64(5);
        let r = actuate(&t, &assignments, 10.0, AckPolicy::PerElement { max_retries: 8 }, &mut rng);
        assert!(r.complete());
        times.push(r.completion_s);
    }
    assert!(times[0] < times[1] && times[1] < times[2], "{times:?}");
    assert!(times[0] < 2e-3, "wire fits the packet timescale: {}", times[0]);
    assert!(times[2] > 80e-3, "ultrasound blows even standing coherence: {}", times[2]);
}
