//! Cross-crate property tests: physical invariants the whole stack must
//! satisfy for arbitrary configurations and placements.

use press::core::{CachedLink, ConfigSpace, Configuration};
use press::propagation::{frequency_response, PathKind};
use proptest::prelude::*;

fn rig_seed() -> impl Strategy<Value = u64> {
    0u64..6
}

fn config_index() -> impl Strategy<Value = usize> {
    0usize..64
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Energy conservation-ish: no passive configuration may produce a
    /// channel stronger than the sum of all path magnitudes, and element
    /// paths never exceed unity reflection.
    #[test]
    fn passive_elements_never_amplify(seed in rig_seed(), idx in config_index()) {
        let rig = press::rig::fig4_rig(seed);
        let space = rig.system.array.config_space();
        let config = space.config_at(idx);
        let tx = &rig.sounder.tx.node;
        let rx = &rig.sounder.rx.node;
        let paths = rig.system.paths(tx, rx, &config);
        let freqs = rig.sounder.num.active_freqs_hz();
        let h = frequency_response(&paths, &freqs, 0.0);
        let bound: f64 = paths.iter().map(|p| p.gain.abs()).sum();
        for hk in &h {
            prop_assert!(hk.abs() <= bound * (1.0 + 1e-9));
        }
    }

    /// Terminated elements contribute (almost) nothing: switching an
    /// element to its absorber changes the channel by at most that
    /// element's residual reflection.
    #[test]
    fn terminating_an_element_removes_its_influence(seed in rig_seed()) {
        let rig = press::rig::fig4_rig(seed);
        let tx = &rig.sounder.tx.node;
        let rx = &rig.sounder.rx.node;
        let all_term = Configuration::new(vec![3, 3, 3]);
        let paths = rig.system.array.paths(&rig.system.scene, tx, rx, &all_term);
        for p in &paths {
            let is_element = matches!(p.kind, PathKind::PressElement { .. });
            prop_assert!(is_element);
            // Residual absorber reflection, two legs of Friis, patch gains:
            // must be far below any reflective state's contribution.
            let reflective = rig.system.array
                .element_path(&rig.system.scene, tx, rx, match p.kind {
                    PathKind::PressElement { element } => element,
                    _ => unreachable!(),
                }, 0)
                .expect("reflective state exists");
            prop_assert!(p.gain.abs() < reflective.gain.abs() / 10.0);
        }
    }

    /// The dense index <-> configuration bijection holds for arbitrary
    /// mixed-radix spaces.
    #[test]
    fn config_space_bijection(radices in proptest::collection::vec(1usize..6, 1..6)) {
        let space = ConfigSpace::new(radices);
        let n = space.size().min(200);
        for i in 0..n {
            let c = space.config_at(i);
            prop_assert_eq!(space.index_of(&c), i);
            prop_assert!(space.contains(&c));
        }
    }

    /// Swapping a configuration changes only PRESS element paths, never the
    /// environment (the cached link's environment is configuration-blind).
    #[test]
    fn environment_is_configuration_invariant(seed in rig_seed(), i in config_index(), j in config_index()) {
        let rig = press::rig::fig4_rig(seed);
        let link = CachedLink::trace(
            &rig.system,
            rig.sounder.tx.node.clone(),
            rig.sounder.rx.node.clone(),
        );
        let space = rig.system.array.config_space();
        let a = link.paths(&rig.system, &space.config_at(i));
        let b = link.paths(&rig.system, &space.config_at(j));
        let n_env = link.environment.len();
        for k in 0..n_env {
            prop_assert_eq!(a[k].gain, b[k].gain);
            prop_assert_eq!(a[k].delay_s, b[k].delay_s);
        }
    }

    /// Oracle SNR profiles respect the saturation cap and are finite.
    #[test]
    fn oracle_snr_bounded(seed in rig_seed(), idx in config_index()) {
        let rig = press::rig::fig4_rig(seed);
        let link = CachedLink::trace(
            &rig.system,
            rig.sounder.tx.node.clone(),
            rig.sounder.rx.node.clone(),
        );
        let space = rig.system.array.config_space();
        let snr = rig.sounder.oracle_snr(&link.paths(&rig.system, &space.config_at(idx)), 0.0);
        for &s in &snr.snr_db {
            prop_assert!(s.is_finite());
            prop_assert!(s <= press::sdr::SNR_SATURATION_DB + 1e-9);
        }
    }
}
