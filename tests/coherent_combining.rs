//! §4.1's phase-coherent combining claim, verified at the path level:
//! "through phase-coherent signal combining [ref. 9] a large number of less
//! directional antennas could emulate a single highly directional antenna."
//! Optimally phased, N equal elements should deliver ~N² the power of one.

use press::core::{search, Configuration, PlacedElement, PressArray, PressSystem};
use press::prelude::*;
use press::propagation::frequency_response;

fn combining_gain(n_elements: usize) -> f64 {
    let lab = LabSetup::generate(&LabConfig::default(), 4);
    let lambda = lab.scene.wavelength();
    // Elements on a short line parallel to the link, all ~1.5 m from both
    // endpoints and clear of the obstruction, with fine phase resolution
    // (16 phases) so quantization barely costs. Near-equal path amplitudes
    // make the N-squared law clean.
    let mid = (lab.tx.position + lab.rx.position) * 0.5;
    let elements: Vec<PlacedElement> = (0..n_elements)
        .map(|k| {
            let dx = (k as f64 - (n_elements as f64 - 1.0) / 2.0) * 0.12;
            let pos = mid + Vec3::new(dx, 1.4, 0.0);
            PlacedElement {
                element: Element::quantized_passive(16, false, lambda),
                position: pos,
                antenna: Antenna::isotropic(),
            }
        })
        .collect();
    let system = PressSystem::new(lab.scene.clone(), PressArray::new(elements));
    let space = system.array.config_space();
    let tx = &lab.tx;
    let rx = &lab.rx;
    let f_center = [press::math::consts::WIFI_CHANNEL_11_HZ];

    // Power of the ELEMENT paths alone at band center, as a function of the
    // configuration; environment excluded so the combining law is clean.
    let power_of = |config: &Configuration| -> f64 {
        let paths = system.array.paths(&system.scene, tx, rx, config);
        frequency_response(&paths, &f_center, 0.0)[0].norm_sqr()
    };

    // Tune phases greedily (16 phases per element; greedy is near-exact for
    // this separable objective).
    let result = search::greedy_coordinate(&space, Configuration::zeros(n_elements), 4, power_of);
    let combined = result.score;

    // Reference: the mean single-element power.
    let single: f64 = (0..n_elements)
        .map(|i| {
            let p = system
                .array
                .element_path(&system.scene, tx, rx, i, 0)
                .expect("element path exists");
            p.gain.norm_sqr()
        })
        .sum::<f64>()
        / n_elements as f64;
    combined / single
}

#[test]
fn coherent_combining_approaches_n_squared() {
    for &n in &[2usize, 4, 6] {
        let gain = combining_gain(n);
        let ideal = (n * n) as f64;
        assert!(
            gain > 0.75 * ideal,
            "{n} elements: combining gain {gain:.2} vs ideal {ideal}"
        );
        assert!(
            gain <= 1.35 * ideal,
            "{n} elements: gain {gain:.2} beyond physical bound {ideal} (amplitudes differ)"
        );
    }
}

#[test]
fn combining_gain_grows_with_element_count() {
    let g2 = combining_gain(2);
    let g6 = combining_gain(6);
    assert!(
        g6 > 2.0 * g2,
        "more elements must combine to more power: {g2:.1} -> {g6:.1}"
    );
}
