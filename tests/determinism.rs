//! Determinism regression: the whole closed loop — search, transport
//! actuation, fault injection, verification sounding — must be a pure
//! function of the episode seed. These tests are the executable form of the
//! invariant press-lint's catalog guards (see DESIGN.md, "Determinism
//! invariants and the lint catalog"), and they pin the behavior across the
//! HashSet→BTreeSet migration that made the workspace lint-clean.

use press::control::{AckPolicy, FaultPlan, GilbertElliott, Transport};
use press::core::{
    ActuationMode, ChurnEvent, Controller, LinkObjective, SmartSpace, Strategy, TransportActuation,
};
use press::propagation::RadioNode;
use press::propagation::Vec3;
use press::rig::{ElementPlacement, NetworkRig, PairLayout};

fn lossy_controller(seed: u64) -> Controller {
    let mut c = Controller::new(Strategy::Exhaustive, LinkObjective::MaxMinSnr);
    c.seed = seed;
    c.actuation = ActuationMode::Transport(TransportActuation {
        transport: Transport::IsmRadio {
            bitrate_bps: 250e3,
            loss_prob: 0.5,
            mac_latency_s: 1e-3,
        },
        policy: AckPolicy::Adaptive {
            max_retries: 6,
            batch_cap: 16,
        },
        distance_m: 15.0,
        faults: FaultPlan::bursty(GilbertElliott::interference()),
    });
    c
}

/// One closed-loop episode run twice with the same seed — Transport
/// actuation, burst faults enabled — must produce bit-identical
/// `ControlReport`s, scores and realized configurations included.
#[test]
fn same_seed_episode_is_bit_identical() {
    let rig = press::rig::fig4_rig(2);
    for seed in [0u64, 3, 17] {
        let a = lossy_controller(seed).run_episode(&rig.system, &rig.sounder);
        let b = lossy_controller(seed).run_episode(&rig.system, &rig.sounder);
        assert_eq!(a, b, "seed {seed}: lossy closed-loop episode diverged");
        // Belt and braces: the Debug rendering (every f64 formatted with
        // full precision) matches too.
        assert_eq!(format!("{a:?}"), format!("{b:?}"), "seed {seed}");
    }
}

/// Different seeds must *not* collapse onto one trajectory (guards against a
/// constant being baked in where a seed belongs).
#[test]
fn different_seeds_diverge_somewhere() {
    let rig = press::rig::fig4_rig(2);
    let reports: Vec<String> = [1u64, 2, 5]
        .iter()
        .map(|&s| {
            format!(
                "{:?}",
                lossy_controller(s).run_episode(&rig.system, &rig.sounder)
            )
        })
        .collect();
    assert!(
        reports.windows(2).any(|w| w[0] != w[1]),
        "three distinct seeds produced identical lossy episodes"
    );
}

fn three_link_space() -> SmartSpace {
    NetworkRig::builder()
        .lab_seed(6)
        .pairs(PairLayout::Clients(vec![
            Vec3::new(7.0, 5.0, 1.5),
            Vec3::new(6.8, 4.0, 1.5),
            Vec3::new(5.5, 6.2, 1.3),
        ]))
        .placement(ElementPlacement::RandomInLab {
            count: 3,
            rng_seed: 2,
        })
        .build()
        .smart_space(LinkObjective::MaxMeanSnr)
}

/// The multi-link loop inherits the invariant: a 3-link
/// [`SmartSpace`] episode over the same lossy, fault-injected transport,
/// run twice per seed, must produce bit-identical `SpaceReport`s — every
/// per-link verified score and mean SNR included.
#[test]
fn same_seed_space_episode_is_bit_identical() {
    let space = three_link_space();
    for seed in [0u64, 3, 17] {
        let a = lossy_controller(seed).run_space_episode(&space);
        let b = lossy_controller(seed).run_space_episode(&space);
        assert_eq!(a, b, "seed {seed}: lossy 3-link episode diverged");
        assert_eq!(format!("{a:?}"), format!("{b:?}"), "seed {seed}");
        assert_eq!(a.links.len(), 3, "every link reports");
    }
}

/// Churn inherits the invariant: a full associate/roam/leave schedule —
/// including removing a link mid-episode and re-associating the same
/// endpoint pair (which is served from the registry's pair cache) — run
/// twice per seed over the same lossy transport must produce bit-identical
/// report vectors. Ids, cache reuse, and the per-round seed streams are
/// all pure functions of the schedule.
#[test]
fn same_seed_churn_episode_is_bit_identical() {
    let run = |seed: u64| {
        let mut space = three_link_space();
        let ids = space.link_ids();
        let victim = ids[1];
        let rejoin = space.link(victim).sounder.clone();
        let events = vec![
            // Mid-schedule departure…
            ChurnEvent::Leave { id: victim },
            // …same endpoint pair re-associates (pair-cache hit, fresh id),
            ChurnEvent::Associate {
                label: "rejoin".to_string(),
                sounder: rejoin,
                objective: LinkObjective::MaxMeanSnr,
                weight: 1.0,
            },
            // …and a surviving client roams to a new spot with Doppler.
            ChurnEvent::Roam {
                id: ids[2],
                to: RadioNode {
                    position: Vec3::new(6.1, 5.4, 1.4),
                    antenna: RadioNode::omni_at(Vec3::ZERO).antenna,
                    velocity: Vec3::new(0.8, 0.0, 0.0),
                },
            },
        ];
        lossy_controller(seed).run_churn_episode(&mut space, &events)
    };
    for seed in [0u64, 3, 17] {
        let a = run(seed);
        let b = run(seed);
        assert_eq!(a.len(), 3, "one report per churn round");
        assert_eq!(a, b, "seed {seed}: churn replay diverged");
        assert_eq!(format!("{a:?}"), format!("{b:?}"), "seed {seed}");
        // Rounds run under distinct derived seed streams — they must not
        // collapse onto one trajectory.
        assert!(
            a.windows(2).any(|w| w[0] != w[1]),
            "seed {seed}: all churn rounds produced identical reports"
        );
    }
}

/// The trace stream inherits the invariant: the same lossy episode traced
/// twice serializes to byte-identical JSONL (the full suite lives in
/// `tests/trace_determinism.rs`; this assertion keeps the core invariant
/// next to its siblings).
#[test]
fn same_seed_episode_traces_byte_identical_jsonl() {
    use press::trace::{MemorySink, Tracer};
    let rig = press::rig::fig4_rig(2);
    for seed in [0u64, 3, 17] {
        let mut ta = Tracer::new(MemorySink::new());
        let mut tb = Tracer::new(MemorySink::new());
        let a = lossy_controller(seed).run_episode_traced(&rig.system, &rig.sounder, None, &mut ta);
        let b = lossy_controller(seed).run_episode_traced(&rig.system, &rig.sounder, None, &mut tb);
        assert_eq!(a, b, "seed {seed}");
        assert_eq!(
            ta.sink().to_jsonl_without_wall().as_bytes(),
            tb.sink().to_jsonl_without_wall().as_bytes(),
            "seed {seed}: trace bytes diverged"
        );
    }
}

// ---------------------------------------------------------------------------
// Golden pins: the legacy entry points, frozen byte-for-byte.
// ---------------------------------------------------------------------------

/// FNV-1a 64 over a byte string — tiny, dependency-free, and stable.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Hashes pinned immediately before the controller monolith was split into
/// the `controller/{engine,episode,space,churn}` modules. The refactor's
/// contract is that every legacy entry point stays *bitwise identical* —
/// same reports, same trace bytes — so these constants must never change
/// without a deliberate, documented behavior change.
///
/// Rows are `(seed, episode, traced_jsonl, space, space_jsonl, churn)`;
/// report hashes are FNV-1a over the full-precision `Debug` rendering,
/// jsonl hashes over `MemorySink::to_jsonl_without_wall` bytes. The traced
/// variants must also render identically to their untraced siblings.
const GOLDEN_PINS: [(u64, u64, u64, u64, u64, u64); 3] = [
    (
        0,
        0xb388047435f3d842,
        0x54d8782f0c656b03,
        0x2bd0e5f3938f96d9,
        0xe1b1ce512ed2adce,
        0xe8adb60ed062f381,
    ),
    (
        3,
        0xed6d72d5db3ff989,
        0x056df6d4113e0de0,
        0xb94c36b305c82c7f,
        0x2542ae7941b5c948,
        0xda3208c9c54c9597,
    ),
    (
        17,
        0x80c6d154af083dc8,
        0xc72aca9b6826d945,
        0xc03721ef63599aec,
        0x97a685d118491b17,
        0xc275f7b6195c3a44,
    ),
];

fn churn_schedule(space: &mut SmartSpace) -> Vec<ChurnEvent> {
    let ids = space.link_ids();
    let victim = ids[1];
    let rejoin = space.link(victim).sounder.clone();
    vec![
        ChurnEvent::Leave { id: victim },
        ChurnEvent::Associate {
            label: "rejoin".to_string(),
            sounder: rejoin,
            objective: LinkObjective::MaxMeanSnr,
            weight: 1.0,
        },
        ChurnEvent::Roam {
            id: ids[2],
            to: RadioNode {
                position: Vec3::new(6.1, 5.4, 1.4),
                antenna: RadioNode::omni_at(Vec3::ZERO).antenna,
                velocity: Vec3::new(0.8, 0.0, 0.0),
            },
        },
    ]
}

/// `run_episode` and `run_episode_traced` reproduce their pre-refactor
/// outputs exactly, report bytes and trace bytes both.
#[test]
fn legacy_single_link_entry_points_match_pre_refactor_pins() {
    use press::trace::{MemorySink, Tracer};
    let rig = press::rig::fig4_rig(2);
    for (seed, episode_pin, jsonl_pin, _, _, _) in GOLDEN_PINS {
        let c = lossy_controller(seed);
        let ep = c.run_episode(&rig.system, &rig.sounder);
        assert_eq!(
            fnv1a(format!("{ep:?}").as_bytes()),
            episode_pin,
            "seed {seed}: run_episode drifted from its pre-refactor pin"
        );
        let mut tracer = Tracer::new(MemorySink::new());
        let tr = c.run_episode_traced(&rig.system, &rig.sounder, None, &mut tracer);
        assert_eq!(
            fnv1a(format!("{tr:?}").as_bytes()),
            episode_pin,
            "seed {seed}: traced report disagrees with the untraced pin"
        );
        assert_eq!(
            fnv1a(tracer.sink().to_jsonl_without_wall().as_bytes()),
            jsonl_pin,
            "seed {seed}: run_episode_traced JSONL drifted from its pin"
        );
    }
}

/// `run_space_episode{,_traced}` and `run_churn_episode` reproduce their
/// pre-refactor outputs exactly.
#[test]
fn legacy_space_and_churn_entry_points_match_pre_refactor_pins() {
    use press::trace::{MemorySink, Tracer};
    let space = three_link_space();
    for (seed, _, _, space_pin, space_jsonl_pin, churn_pin) in GOLDEN_PINS {
        let c = lossy_controller(seed);
        let sp = c.run_space_episode(&space);
        assert_eq!(
            fnv1a(format!("{sp:?}").as_bytes()),
            space_pin,
            "seed {seed}: run_space_episode drifted from its pre-refactor pin"
        );
        let mut tracer = Tracer::new(MemorySink::new());
        let sptr = c.run_space_episode_traced(&space, None, &mut tracer);
        assert_eq!(
            fnv1a(format!("{sptr:?}").as_bytes()),
            space_pin,
            "seed {seed}: traced space report disagrees with the untraced pin"
        );
        assert_eq!(
            fnv1a(tracer.sink().to_jsonl_without_wall().as_bytes()),
            space_jsonl_pin,
            "seed {seed}: run_space_episode_traced JSONL drifted from its pin"
        );
        let mut churn_space = three_link_space();
        let events = churn_schedule(&mut churn_space);
        let churn = c.run_churn_episode(&mut churn_space, &events);
        assert_eq!(
            fnv1a(format!("{churn:?}").as_bytes()),
            churn_pin,
            "seed {seed}: run_churn_episode drifted from its pre-refactor pin"
        );
    }
}

// ---------------------------------------------------------------------------
// Metrics exposition: a pure function of the recorded stream.
// ---------------------------------------------------------------------------

/// The trace→metrics aggregator inherits the invariant: the same lossy
/// episode traced twice must rebuild into hubs whose Prometheus text
/// exposition is byte-identical — the metrics layer adds no
/// nondeterminism of its own on top of the trace bytes it consumes.
#[test]
fn same_seed_trace_rebuilds_byte_identical_exposition() {
    use press::trace::{MemorySink, Tracer};
    use press_metrics::hub_from_jsonl;
    let rig = press::rig::fig4_rig(2);
    for seed in [0u64, 3, 17] {
        let mut ta = Tracer::new(MemorySink::new());
        let mut tb = Tracer::new(MemorySink::new());
        lossy_controller(seed).run_episode_traced(&rig.system, &rig.sounder, None, &mut ta);
        lossy_controller(seed).run_episode_traced(&rig.system, &rig.sounder, None, &mut tb);
        let expo_a = hub_from_jsonl(&ta.sink().to_jsonl_without_wall()).render();
        let expo_b = hub_from_jsonl(&tb.sink().to_jsonl_without_wall()).render();
        assert_eq!(
            expo_a.as_bytes(),
            expo_b.as_bytes(),
            "seed {seed}: exposition bytes diverged"
        );
        assert!(
            expo_a.contains("press_episodes_total 1"),
            "seed {seed}: the episode must register in the rebuilt hub"
        );
    }
}

/// The daemon's live hub and a hub rebuilt from the session's recorded
/// output render byte-identical exposition across seeds — closing the
/// loop between live observation and post-mortem aggregation through the
/// full pressd session surface (directives, queries, error lines and
/// trace-tail replays included).
#[test]
fn live_session_exposition_matches_trace_rebuilt_exposition() {
    use pressd::{EventLoop, SessionMetrics};
    for seed in [0u64, 3, 17] {
        let controller = format!(
            "controller strategy=exhaustive objective=max-min-snr seed={seed} \
             budget-s=0.08 frames=2 actuation=ism"
        );
        let lines = [
            "space lab-seed=17 elements=3 element-seed=4",
            controller.as_str(),
            "churn assoc label=lab obj=max-min-snr w=1 tx=7,5,1.5 rx=6.8,4,1.5 carrier=2462000000",
            "measure",
            "episode",
            "trace-tail 6",
            "episode",
            "status",
        ];
        let mut el = EventLoop::new();
        let mut out = Vec::new();
        for line in lines {
            el.handle_line(line, &mut out);
        }
        let rebuilt = SessionMetrics::from_session_output(out.iter().map(String::as_str));
        assert_eq!(
            el.metrics_exposition().as_bytes(),
            rebuilt.render().as_bytes(),
            "seed {seed}: live and trace-rebuilt exposition diverged"
        );
    }
}

/// `echo metrics | pressd` renders deterministic Prometheus text with
/// series in BTreeMap name order — the exposition is a pure function of
/// the recorded values, run to run.
#[test]
fn metrics_verb_renders_deterministic_ordered_series() {
    use pressd::replay_log;
    let session = "space lab-seed=17 elements=3 element-seed=4\n\
                   controller strategy=exhaustive objective=max-min-snr seed=3 budget-s=0.08 frames=2 actuation=ism\n\
                   churn assoc label=lab obj=max-min-snr w=1 tx=7,5,1.5 rx=6.8,4,1.5 carrier=2462000000\n\
                   episode\nmetrics\n";
    let a = replay_log(session);
    let b = replay_log(session);
    assert_eq!(
        a, b,
        "metrics verb output must be byte-identical run to run"
    );
    let families: Vec<&str> = a
        .iter()
        .filter(|l| l.starts_with("# TYPE "))
        .map(String::as_str)
        .collect();
    assert!(!families.is_empty(), "exposition must carry TYPE lines");
    let mut sorted = families.clone();
    sorted.sort_unstable();
    assert_eq!(families, sorted, "families must render in name order");
}

/// A clean wired transport still reproduces the oracle episode's decision
/// exactly (the PR 2 invariant, re-pinned here after the BTreeSet
/// migration).
#[test]
fn wired_transport_matches_oracle_decision() {
    let rig = press::rig::fig4_rig(2);
    let seed = 11u64;

    let mut oracle = Controller::new(Strategy::Exhaustive, LinkObjective::MaxMinSnr);
    oracle.seed = seed;
    let a = oracle.run_episode(&rig.system, &rig.sounder);

    let mut wired = Controller::new(Strategy::Exhaustive, LinkObjective::MaxMinSnr);
    wired.seed = seed;
    wired.actuation = ActuationMode::Transport(TransportActuation::wired());
    let b = wired.run_episode(&rig.system, &rig.sounder);

    assert_eq!(a.chosen_config, b.chosen_config);
    assert_eq!(a.chosen_score, b.chosen_score);
    assert_eq!(
        b.stale_elements, 0,
        "clean wired bus leaves no stale elements"
    );
}
