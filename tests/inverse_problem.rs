//! Integration tests for the §2 inverse problem against the full physics
//! stack (not the synthetic dictionaries of the unit tests).

use press::core::inverse::{extract_dominant_paths, reconstruct};
use press::core::{CachedLink, Configuration, InverseSolver, PressDictionary};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn dictionary_forward_model_matches_tracer() {
    // The dictionary's superposition must equal the tracer's full channel
    // for every configuration.
    let rig = press::rig::fig4_rig(3);
    let freqs = rig.sounder.num.active_freqs_hz();
    let tx = &rig.sounder.tx.node;
    let rx = &rig.sounder.rx.node;
    let dict = PressDictionary::from_system(&rig.system, tx, rx, &freqs);
    let space = rig.system.array.config_space();
    for idx in [0usize, 17, 42, 63] {
        let config = space.config_at(idx);
        let from_dict = dict.channel(&config);
        let paths = rig.system.paths(tx, rx, &config);
        let from_tracer = press::propagation::frequency_response(&paths, &freqs, 0.0);
        for (a, b) in from_dict.iter().zip(&from_tracer) {
            assert!((*a - *b).abs() < 1e-12, "config {idx}");
        }
    }
}

#[test]
fn inverse_solver_recovers_planted_config_through_physics() {
    let rig = press::rig::fig4_rig(5);
    let freqs = rig.sounder.num.active_freqs_hz();
    let dict = PressDictionary::from_system(
        &rig.system,
        &rig.sounder.tx.node,
        &rig.sounder.rx.node,
        &freqs,
    );
    let planted = Configuration::new(vec![2, 1, 0]);
    let target = dict.channel(&planted);
    let solver = InverseSolver::new(target.len());
    let sol = solver.solve(&dict, &target);
    assert_eq!(sol.config, planted);
    assert!(sol.residual < 1e-12);
}

#[test]
fn inverse_solver_tolerates_measurement_noise() {
    // Target taken from a *sounded* (noisy) channel instead of the oracle:
    // the solver must still land on a configuration whose channel is close.
    let rig = press::rig::fig4_rig(5);
    let freqs = rig.sounder.num.active_freqs_hz();
    let tx = rig.sounder.tx.node.clone();
    let rx = rig.sounder.rx.node.clone();
    let dict = PressDictionary::from_system(&rig.system, &tx, &rx, &freqs);
    let link = CachedLink::trace(&rig.system, tx, rx);
    let planted = Configuration::new(vec![1, 3, 2]);
    let mut rng = StdRng::seed_from_u64(8);
    let sounding = rig
        .sounder
        .sound(&link.paths(&rig.system, &planted), 0.0, &mut rng)
        .unwrap();
    // The sounded estimate is scaled by sqrt(per-subcarrier TX power) and an
    // unknown common phase; normalize energy before solving.
    let est = &sounding.estimate.h;
    let e_est: f64 = est.iter().map(|x| x.norm_sqr()).sum();
    let oracle = dict.channel(&planted);
    let e_oracle: f64 = oracle.iter().map(|x| x.norm_sqr()).sum();
    let scale = (e_oracle / e_est).sqrt();
    // Align the common phase against the oracle (a receiver would use any
    // phase reference; the test uses the cleanest one available).
    let corr: press::math::Complex64 = est.iter().zip(&oracle).map(|(e, o)| o.conj() * *e).sum();
    let rot = press::math::Complex64::from_polar(1.0, -corr.arg());
    let target: Vec<press::math::Complex64> = est.iter().map(|x| *x * scale * rot).collect();

    let solver = InverseSolver::new(target.len());
    let sol = solver.solve(&dict, &target);
    // With noise the exact states may differ, but the resulting channel
    // must be close to the planted one (within a few dB everywhere).
    let achieved = dict.channel(&sol.config);
    let planted_ch = dict.channel(&planted);
    let mut worst_db = 0.0f64;
    for (a, p) in achieved.iter().zip(&planted_ch) {
        let d = (20.0 * a.abs().log10() - 20.0 * p.abs().log10()).abs();
        worst_db = worst_db.max(d);
    }
    assert!(worst_db < 6.0, "worst magnitude error {worst_db} dB");
}

#[test]
fn path_extraction_recovers_tracer_delays() {
    // Extract paths from the oracle channel and check the strongest
    // recovered delay matches a real path's delay.
    let rig = press::rig::fig4_rig(1);
    let tx = &rig.sounder.tx.node;
    let rx = &rig.sounder.rx.node;
    let paths = rig.system.environment_paths(tx, rx);
    let freqs = rig.sounder.num.active_freqs_hz();
    let h = press::propagation::frequency_response(&paths, &freqs, 0.0);
    let recovered = extract_dominant_paths(&h, &freqs, 4, 200e-9, 4001, 1e-3);
    assert!(!recovered.is_empty());
    // The strongest recovered path must sit within the resolution limit
    // (1/16.25 MHz ~ 60 ns) of some true path.
    let best = recovered[0];
    let closest = paths
        .iter()
        .map(|p| (p.delay_s - best.delay_s).abs())
        .fold(f64::INFINITY, f64::min);
    assert!(closest < 40e-9, "closest true delay {closest} s away");
    // And the reconstruction must capture most of the channel energy.
    let rec = reconstruct(&recovered, &freqs);
    let err: f64 = h.iter().zip(&rec).map(|(a, b)| (*a - *b).norm_sqr()).sum();
    let energy: f64 = h.iter().map(|x| x.norm_sqr()).sum();
    assert!(err / energy < 0.5, "residual fraction {}", err / energy);
}
