//! Trace determinism: a traced episode must be a pure function of the seed
//! — the JSONL byte stream included — and tracing must never perturb the
//! episode it observes. These are the executable acceptance criteria for
//! the press-trace layer (see DESIGN.md, "Observability: traces,
//! convergence, and the flight recorder").

use press::control::{AckPolicy, FaultPlan, GilbertElliott, Transport};
use press::core::{
    ActuationMode, Controller, LinkObjective, SmartSpace, Strategy, TransportActuation,
};
use press::propagation::Vec3;
use press::rig::{ElementPlacement, NetworkRig, PairLayout};
use press::trace::{EventKind, MemorySink, NullSink, TraceSink, Tracer};

fn lossy_controller(seed: u64) -> Controller {
    let mut c = Controller::new(Strategy::Annealing { budget: 24 }, LinkObjective::MaxMinSnr);
    c.seed = seed;
    c.actuation = ActuationMode::Transport(TransportActuation {
        transport: Transport::IsmRadio {
            bitrate_bps: 250e3,
            loss_prob: 0.5,
            mac_latency_s: 1e-3,
        },
        policy: AckPolicy::Adaptive {
            max_retries: 6,
            batch_cap: 16,
        },
        distance_m: 15.0,
        faults: FaultPlan::bursty(GilbertElliott::interference()),
    });
    c
}

fn three_link_space() -> SmartSpace {
    NetworkRig::builder()
        .lab_seed(6)
        .pairs(PairLayout::Clients(vec![
            Vec3::new(7.0, 5.0, 1.5),
            Vec3::new(6.8, 4.0, 1.5),
            Vec3::new(5.5, 6.2, 1.3),
        ]))
        .placement(ElementPlacement::RandomInLab {
            count: 3,
            rng_seed: 2,
        })
        .build()
        .smart_space(LinkObjective::MaxMeanSnr)
}

/// Two same-seed lossy, fault-injected space episodes traced to memory
/// must serialize to byte-identical JSONL once wall-clock stamps are
/// stripped (none are attached here — examples and tests run on the
/// emulated clock only).
#[test]
fn same_seed_space_episode_traces_byte_identical_jsonl() {
    let space = three_link_space();
    for seed in [0u64, 3, 17] {
        let mut ta = Tracer::new(MemorySink::new());
        let mut tb = Tracer::new(MemorySink::new());
        let a = lossy_controller(seed).run_space_episode_traced(&space, None, &mut ta);
        let b = lossy_controller(seed).run_space_episode_traced(&space, None, &mut tb);
        assert_eq!(a, b, "seed {seed}: traced space episode diverged");
        let ja = ta.sink().to_jsonl_without_wall();
        let jb = tb.sink().to_jsonl_without_wall();
        assert!(!ja.is_empty());
        assert_eq!(ja.as_bytes(), jb.as_bytes(), "seed {seed}: JSONL diverged");
        // The trace is lossless: every line round-trips through the parser.
        for line in ja.lines() {
            let ev = press::trace::Event::from_jsonl(line)
                .unwrap_or_else(|| panic!("unparseable line: {line}"));
            assert_eq!(ev.to_jsonl(), line);
        }
    }
}

/// Tracing is purely passive: the same episode run silent, through a
/// null tracer, and through a memory tracer agrees bit-for-bit on every
/// report field (the flight-recorder post-mortem aside, which only a live
/// recorder can populate).
#[test]
fn tracing_never_perturbs_the_episode() {
    let space = three_link_space();
    for seed in [0u64, 3, 17] {
        let silent = lossy_controller(seed).run_space_episode(&space);
        let mut null = Tracer::null();
        let nulled = lossy_controller(seed).run_space_episode_traced(&space, None, &mut null);
        let mut mem = Tracer::new(MemorySink::new());
        let mut traced = lossy_controller(seed).run_space_episode_traced(&space, None, &mut mem);
        assert_eq!(silent, nulled, "seed {seed}: null tracer perturbed");
        assert!(traced.reverted || traced.post_mortem.is_none());
        traced.post_mortem = None;
        assert_eq!(silent, traced, "seed {seed}: memory tracer perturbed");
        assert!(mem.sink().events.len() as u64 == mem.seq());
    }
}

/// The null tracer really is null: zero-sized sink, no events retained,
/// and a capacity-0 flight ring that never allocates.
#[test]
fn null_tracer_retains_nothing() {
    let rig = press::rig::fig4_rig(2);
    let mut tracer: Tracer<NullSink> = Tracer::null();
    assert_eq!(std::mem::size_of::<NullSink>(), 0);
    let c = lossy_controller(5);
    let _ = c.run_episode_traced(&rig.system, &rig.sounder, None, &mut tracer);
    assert!(tracer.seq() > 0, "events were still emitted (and counted)");
    assert_eq!(tracer.flight().capacity(), 0);
    assert_eq!(tracer.flight().len(), 0);
    assert!(tracer.flight().snapshot().is_empty());
}

/// A forced revert on a traced single-link episode attaches a flight
/// recorder post-mortem whose events are wall-free and end with the
/// verification that rejected the configuration.
#[test]
fn forced_revert_post_mortem_is_deterministic() {
    use press::control::ElementFaults;
    let rig = press::rig::fig4_rig(2);
    let mut found = None;
    for seed in 0..16u64 {
        let mut c = Controller::new(Strategy::Exhaustive, LinkObjective::MaxMinSnr);
        c.seed = seed;
        let mut t = TransportActuation::wired();
        t.faults = FaultPlan::broken(ElementFaults::none().dead(0).dead(1).dead(2));
        c.actuation = ActuationMode::Transport(t);
        let mut tracer = Tracer::new(MemorySink::new());
        let r = c.run_episode_traced(&rig.system, &rig.sounder, None, &mut tracer);
        if r.reverted {
            found = Some((c, r));
            break;
        }
    }
    let (c, first) = found.expect("no seed in 0..16 reverted with a dead array");
    let pm = first
        .post_mortem
        .as_ref()
        .expect("revert keeps a post-mortem");
    assert!(!pm.events.is_empty());
    assert!(pm.events.iter().all(|e| e.wall_s.is_none()));
    assert!(pm
        .events
        .iter()
        .any(|e| matches!(e.kind, EventKind::Reverted { .. })));
    // The post-mortem itself is deterministic: a rerun reproduces it.
    let mut tracer = Tracer::new(MemorySink::new());
    let again = c.run_episode_traced(&rig.system, &rig.sounder, None, &mut tracer);
    assert_eq!(first, again);
}

/// The flight recorder honors its bound under episode-scale load.
#[test]
fn flight_recorder_stays_bounded() {
    let rig = press::rig::fig4_rig(2);
    let mut tracer = Tracer::with_flight_capacity(MemorySink::new(), 8);
    let mut sum = 0usize;
    for seed in [2u64, 9] {
        let mut c = lossy_controller(seed);
        c.strategy = Strategy::Exhaustive;
        let _ = c.run_episode_traced(&rig.system, &rig.sounder, None, &mut tracer);
        sum += tracer.sink().events.len();
        assert_eq!(
            tracer.flight().len(),
            8,
            "ring must be full after an episode"
        );
        // The ring holds the *latest* events, ending at the final seq.
        let snap = tracer.flight().snapshot();
        assert_eq!(snap.last().unwrap().seq, tracer.seq() - 1);
    }
    assert!(
        sum > 16,
        "sink saw every event while the ring stayed bounded"
    );
    // TraceSink is object-safe enough to fan out by hand if needed.
    fn assert_sink<S: TraceSink>(_: &S) {}
    assert_sink(tracer.sink());
}
