//! End-to-end integration tests: the full measure → search → actuate
//! pipeline across every crate in the workspace.

use press::core::{
    headline_stats, run_campaign_over, CachedLink, CampaignConfig, Configuration, Controller,
    LinkObjective, Strategy,
};

/// A reduced Figure 4 campaign exercises propagation, elements, PHY and SDR
/// together and must show PRESS actually changing the measured channel.
#[test]
fn campaign_shows_configuration_dependence() {
    let rig = press::rig::fig4_rig(1);
    let space = rig.system.array.config_space();
    let subset: Vec<Configuration> = (0..16).map(|i| space.config_at(i * 4)).collect();
    let campaign = CampaignConfig {
        n_trials: 3,
        frames_per_config: 2,
        seed: 1,
        ..CampaignConfig::default()
    };
    let result = run_campaign_over(&rig.system, &rig.sounder, &campaign, &subset);
    let means = result.mean_profiles();
    let mut max_delta = 0.0f64;
    for i in 0..means.len() {
        for j in 0..i {
            max_delta = max_delta.max(means[i].max_abs_delta_db(&means[j]));
        }
    }
    assert!(
        max_delta > 5.0,
        "PRESS must move the channel by >5 dB somewhere, got {max_delta}"
    );
}

#[test]
fn campaigns_are_bit_reproducible() {
    let rig = press::rig::fig4_rig(2);
    let space = rig.system.array.config_space();
    let subset: Vec<Configuration> = (0..8).map(|i| space.config_at(i * 8)).collect();
    let campaign = CampaignConfig {
        n_trials: 2,
        frames_per_config: 2,
        seed: 9,
        ..CampaignConfig::default()
    };
    let a = run_campaign_over(&rig.system, &rig.sounder, &campaign, &subset);
    let b = run_campaign_over(&rig.system, &rig.sounder, &campaign, &subset);
    for (ta, tb) in a.profiles.iter().zip(&b.profiles) {
        for (pa, pb) in ta.iter().zip(tb) {
            assert_eq!(pa.snr_db, pb.snr_db);
        }
    }
}

#[test]
fn controller_beats_or_matches_baseline_modulo_noise() {
    let rig = press::rig::fig4_rig(0);
    let controller = Controller::new(Strategy::Greedy { max_sweeps: 2 }, LinkObjective::MaxMinSnr);
    let report = controller.run_episode(&rig.system, &rig.sounder);
    assert!(
        report.improvement() >= 0.0,
        "the verify-and-revert controller never regresses: {}",
        report.improvement()
    );
    assert!(report.measurements > 1);
    assert!(report.elapsed_s > 0.0);
}

#[test]
fn headline_statistics_are_in_paper_regime() {
    // Full 64-configuration campaign on the calibrated placement; the
    // headline statistics must land in the paper's qualitative regime.
    let rig = press::rig::fig4_rig(1);
    let campaign = CampaignConfig {
        n_trials: 4,
        frames_per_config: 2,
        seed: 1,
        ..CampaignConfig::default()
    };
    let result = press::core::run_campaign(&rig.system, &rig.sounder, &campaign);
    let h = headline_stats(&result);
    assert!(
        h.max_within_trial_change_db > 15.0,
        "expected paper-scale swings, got {}",
        h.max_within_trial_change_db
    );
    assert!(
        h.frac_pairs_10db > 0.05,
        "a nontrivial fraction of pairs must differ by 10 dB: {}",
        h.frac_pairs_10db
    );
    assert!(h.frac_min_below_20db < 0.5, "{}", h.frac_min_below_20db);
}

#[test]
fn los_effect_much_smaller_than_nlos() {
    // The paper's LOS control: passive elements barely move a line-of-sight
    // channel. Compare max pairwise oracle-magnitude deltas.
    let nlos = press::rig::fig4_rig(1);
    let los = press::rig::fig4_los_rig(1);
    let effect = |rig: &press::rig::Rig| -> f64 {
        let link = CachedLink::trace(
            &rig.system,
            rig.sounder.tx.node.clone(),
            rig.sounder.rx.node.clone(),
        );
        let freqs = rig.sounder.num.active_freqs_hz();
        let space = rig.system.array.config_space();
        let mags: Vec<Vec<f64>> = (0..space.size())
            .step_by(7)
            .map(|i| {
                let paths = link.paths(&rig.system, &space.config_at(i));
                press::propagation::frequency_response(&paths, &freqs, 0.0)
                    .iter()
                    .map(|h| 20.0 * h.abs().log10())
                    .collect()
            })
            .collect();
        let mut max_delta = 0.0f64;
        for i in 0..mags.len() {
            for j in 0..i {
                for (a, b) in mags[i].iter().zip(&mags[j]) {
                    max_delta = max_delta.max((a - b).abs());
                }
            }
        }
        max_delta
    };
    let e_nlos = effect(&nlos);
    let e_los = effect(&los);
    assert!(
        e_los < e_nlos / 3.0,
        "LOS effect {e_los:.1} dB must be far below NLOS {e_nlos:.1} dB"
    );
    assert!(
        e_los < 3.0,
        "LOS effect should be small in absolute terms: {e_los:.1}"
    );
}

#[test]
fn sweep_time_exceeds_coherence_like_the_paper() {
    let rig = press::rig::fig4_rig(0);
    let space = rig.system.array.config_space();
    let campaign = CampaignConfig::default();
    let (sweep, coherence, fits) = press::core::measurement::coherence_check(
        &rig.system,
        &campaign,
        &space,
        0.5 * 0.44704, // 0.5 mph
    );
    assert!(!fits, "paper: 5 s sweep cannot fit {coherence} s coherence");
    assert!((sweep - 5.0).abs() < 1e-9);
}

/// Packet-level proof of the paper's story: the same link, two PRESS
/// configurations, real coded-OFDM frames through the real Viterbi decoder
/// — the better configuration delivers packets the worse one drops.
#[test]
fn reconfiguration_changes_packet_delivery() {
    use press::phy::modem::{packet_error_rate, Modem};
    use press::phy::MCS_TABLE;
    use rand::SeedableRng;

    let rig = press::rig::fig4_rig(1);
    let link = CachedLink::trace(
        &rig.system,
        rig.sounder.tx.node.clone(),
        rig.sounder.rx.node.clone(),
    );
    let freqs = rig.sounder.num.active_freqs_hz();
    let space = rig.system.array.config_space();

    // Find the best and worst configurations by worst-subcarrier magnitude.
    let mut scored: Vec<(usize, f64)> = (0..space.size())
        .map(|i| {
            let h = press::propagation::frequency_response(
                &link.paths(&rig.system, &space.config_at(i)),
                &freqs,
                0.0,
            );
            let min = h.iter().map(|x| x.abs()).fold(f64::INFINITY, f64::min);
            (i, min)
        })
        .collect();
    scored.sort_by(|a, b| a.1.total_cmp(&b.1));
    let worst = space.config_at(scored[0].0);
    let best = space.config_at(scored[scored.len() - 1].0);

    // Sweep the operating point around the fragile top rate's threshold:
    // at some SNR the best configuration's flatter channel must deliver
    // packets the worst configuration's fades drop. (The exact decoder
    // cliff sits a few dB below the spec table, so we scan.)
    let mcs = MCS_TABLE[7];
    let modem = Modem::new(rig.sounder.num.clone(), mcs);
    let h_best =
        press::propagation::frequency_response(&link.paths(&rig.system, &best), &freqs, 0.0);
    let h_worst =
        press::propagation::frequency_response(&link.paths(&rig.system, &worst), &freqs, 0.0);
    let mean_mag: f64 = h_best.iter().map(|x| x.abs()).sum::<f64>() / h_best.len() as f64;

    let mut rng = rand::rngs::StdRng::seed_from_u64(77);
    let mut separated = false;
    for offset_db in [2.0, 0.0, -2.0, -4.0, -6.0, -8.0] {
        let snr_lin = 10f64.powf((mcs.min_snr_db + offset_db) / 10.0);
        let noise_sigma = (mean_mag * mean_mag / (2.0 * snr_lin)).sqrt();
        let per_best = packet_error_rate(&modem, 200, &h_best, 1.0, noise_sigma, 15, &mut rng);
        let per_worst = packet_error_rate(&modem, 200, &h_worst, 1.0, noise_sigma, 15, &mut rng);
        if per_worst > per_best + 0.3 && per_best < 0.5 {
            separated = true;
            break;
        }
    }
    assert!(
        separated,
        "some operating point must separate the configurations' packet delivery"
    );
}
