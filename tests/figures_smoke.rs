//! Reduced-size versions of every figure harness, asserting each figure's
//! qualitative regime so regressions in the physics or the pipeline are
//! caught by `cargo test` without running the full campaigns.

use press::core::analysis::{
    extreme_pair, fraction_configs_min_below, fraction_pairs_with_subcarrier_delta, null_movements,
};
use press::core::{run_campaign_over, CachedLink, CampaignConfig, Configuration};
use press::math::Complex64;
use press::phy::mimo::MimoChannel;
use rand::SeedableRng;

fn mini_campaign(seed: u64, n_configs: usize, n_trials: usize) -> press::core::CampaignResult {
    let rig = press::rig::fig4_rig(seed);
    let space = rig.system.array.config_space();
    let step = (space.size() / n_configs).max(1);
    let subset: Vec<Configuration> = (0..n_configs).map(|i| space.config_at(i * step)).collect();
    let campaign = CampaignConfig {
        n_trials,
        frames_per_config: 3,
        seed,
        ..CampaignConfig::default()
    };
    run_campaign_over(&rig.system, &rig.sounder, &campaign, &subset)
}

/// Figure 4 regime: some configuration pair differs substantially on a
/// subcarrier, and profiles stay within the receiver's representable range.
///
/// The subset must cover at least half the 64-configuration space: a
/// 16-config stride-4 subsample misses the extreme pairs entirely (7.7 dB
/// where Figure 4's measured campaign shows >10 dB per-subcarrier swings;
/// 32 configs already reach ~18 dB on this rig, the full space ~28 dB).
#[test]
fn fig4_regime() {
    let result = mini_campaign(1, 32, 3);
    let means = result.mean_profiles();
    let (_, _, delta) = extreme_pair(&means).unwrap();
    assert!(delta > 8.0, "extreme pair delta {delta} dB");
    for p in &means {
        assert!(p.max_db() <= press::sdr::SNR_SATURATION_DB + 1e-9);
        assert!(p.min_db() > -20.0);
    }
}

/// Figure 5 regime: null movements exist, mass concentrates at small moves.
#[test]
fn fig5_regime() {
    let result = mini_campaign(2, 24, 2);
    let mut all_moves = Vec::new();
    for trial in &result.profiles {
        all_moves.extend(null_movements(trial));
    }
    assert!(
        !all_moves.is_empty(),
        "some configurations must exhibit nulls"
    );
    let small = all_moves.iter().filter(|&&m| m <= 3).count();
    assert!(
        small as f64 / all_moves.len() as f64 > 0.3,
        "a large share of pairs move the null little: {small}/{}",
        all_moves.len()
    );
}

/// Figure 6 regime: the two headline fractions stay in the paper's orbit.
#[test]
fn fig6_regime() {
    let result = mini_campaign(2, 24, 2);
    let mut frac10 = 0.0;
    let mut below20 = 0.0;
    for trial in &result.profiles {
        frac10 += fraction_pairs_with_subcarrier_delta(trial, 10.0);
        below20 += fraction_configs_min_below(trial, 20.0);
    }
    let n = result.profiles.len() as f64;
    assert!(
        (0.05..0.9).contains(&(frac10 / n)),
        "pairs>=10dB fraction {}",
        frac10 / n
    );
    assert!(below20 / n < 0.5, "min<20 fraction {}", below20 / n);
}

/// Figure 7 regime: on the wideband rig some pair of configurations tilts
/// the band in opposite directions.
#[test]
fn fig7_regime() {
    let rig = press::rig::fig7_rig(8);
    let link = CachedLink::trace(
        &rig.system,
        rig.sounder.tx.node.clone(),
        rig.sounder.rx.node.clone(),
    );
    let space = rig.system.array.config_space();
    let mut best_low = f64::NEG_INFINITY;
    let mut best_high = f64::NEG_INFINITY;
    for config in space.iter() {
        let c = rig
            .sounder
            .oracle_snr(&link.paths(&rig.system, &config), 0.0)
            .half_band_contrast_db();
        best_low = best_low.max(c);
        best_high = best_high.max(-c);
    }
    assert!(
        best_low > 1.0 && best_high > 1.0,
        "opposite selectivity must be reachable: +{best_low:.1} / -{best_high:.1} dB"
    );
}

/// Figure 8 regime: coherent MIMO sounding yields finite, paper-range
/// conditioning with a nonzero PRESS spread.
#[test]
fn fig8_regime() {
    let rig = press::rig::fig8_rig(0);
    let links: Vec<Vec<CachedLink>> = (0..2)
        .map(|a| {
            (0..2)
                .map(|b| CachedLink::trace(&rig.system, rig.tx[a].clone(), rig.rx[b].clone()))
                .collect()
        })
        .collect();
    let space = rig.system.array.config_space();
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let mut medians = Vec::new();
    for idx in (0..space.size()).step_by(4) {
        let config = space.config_at(idx);
        let paths: Vec<Vec<Vec<_>>> = links
            .iter()
            .map(|row| row.iter().map(|l| l.paths(&rig.system, &config)).collect())
            .collect();
        let est = rig.sounder.sound_mimo(&paths, 0.0, 0.0, &mut rng).unwrap();
        let h: Vec<Vec<Vec<Complex64>>> = (0..2)
            .map(|b| (0..2).map(|a| est[a][b].h.clone()).collect())
            .collect();
        let ch = MimoChannel::from_scalar_channels(&h);
        medians.push(ch.median_condition_db().unwrap());
    }
    let lo = medians.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = medians.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    assert!(lo.is_finite() && hi.is_finite());
    assert!((0.0..20.0).contains(&lo), "best conditioning {lo} dB");
    assert!(
        hi - lo > 0.2,
        "PRESS must move conditioning: spread {}",
        hi - lo
    );
    assert!(hi - lo < 15.0, "spread implausibly large: {}", hi - lo);
}
