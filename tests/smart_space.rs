//! Integration coverage for the [`SmartSpace`] deployment layer: the
//! single-link degenerate case must be RNG-stream-identical to the
//! historical single-link controller, an N-link registry must trace the
//! environment once per endpoint pair, and a multi-link transport episode
//! must export per-LinkId metrics.

use press::prelude::*;

/// A single-link `SmartSpace` episode is bit-identical to the historical
/// `Controller::run_episode` on the same rig — baseline and verified
/// scores, configurations, measurement count and emulated clock — across
/// strategies and seeds. This is the refactor's backward-compatibility
/// contract at the integration level (the paper rigs ride through it).
#[test]
fn single_link_space_episode_reproduces_run_episode() {
    let rig = press::rig::fig4_rig(2);
    let space = SmartSpace::single(
        rig.system.clone(),
        rig.sounder.clone(),
        LinkObjective::MaxMinSnr,
    );
    for strategy in [
        Strategy::Exhaustive,
        Strategy::Random { budget: 9 },
        Strategy::Annealing { budget: 12 },
    ] {
        for seed in [1u64, 8, 42] {
            let mut c = Controller::new(strategy, LinkObjective::MaxMinSnr);
            c.seed = seed;
            c.actuation = ActuationMode::Transport(TransportActuation::ism());
            let old = c.run_episode(&rig.system, &rig.sounder);
            let new = c.run_space_episode(&space);
            assert_eq!(
                old.baseline_score, new.baseline_score,
                "{strategy:?}/{seed}"
            );
            assert_eq!(old.chosen_config, new.chosen_config, "{strategy:?}/{seed}");
            assert_eq!(old.chosen_score, new.chosen_score, "{strategy:?}/{seed}");
            assert_eq!(old.measurements, new.measurements, "{strategy:?}/{seed}");
            assert_eq!(old.elapsed_s, new.elapsed_s, "{strategy:?}/{seed}");
            assert_eq!(
                old.realized_config, new.realized_config,
                "{strategy:?}/{seed}"
            );
            assert_eq!(old.reverted, new.reverted, "{strategy:?}/{seed}");
        }
    }
}

/// Registering N links over shared endpoints traces the static environment
/// once per distinct endpoint pair — not once per (pair × objective) or
/// per strategy that later consumes the registry.
#[test]
fn registry_traces_once_per_endpoint_pair() {
    let rig = press::rig::fig4_rig(2);
    let mut space = SmartSpace::new(rig.system.clone());
    // Same endpoints registered under three different objectives...
    space.add_link("comm", rig.sounder.clone(), LinkObjective::MaxMeanSnr, 1.0);
    space.add_link("low", rig.sounder.clone(), LinkObjective::FavorLowBand, 1.0);
    space.add_link("intf", rig.sounder.clone(), LinkObjective::MaxMinSnr, -0.5);
    assert_eq!(space.n_links(), 3);
    assert_eq!(space.env_traces(), 1, "one trace for one endpoint pair");
    assert_eq!(
        space.basis_builds(),
        1,
        "one basis for one (pair, numerology)"
    );

    // ...and consuming the registry from every scheduling strategy adds no
    // further traces: the geometry work is done at registration time.
    let _ = press::core::optimize_joint(&space, 6, 5);
    let _ = press::core::optimize_per_link(&space, 6, 5);
    let _ = press::core::optimize_hybrid(
        &space,
        &[space.links().iter().map(|l| l.id).collect()],
        6,
        5,
    );
    assert_eq!(space.env_traces(), 1, "scheduling must not re-trace");
}

/// A 4-link harmonization episode over a real transport: every link is
/// verified on the realized array, and the exported CSV carries one row
/// per LinkId plus the shared space row.
#[test]
fn four_link_transport_episode_exports_per_link_rows() {
    let lab = LabSetup::generate(&LabConfig::default(), 11);
    let ap1 = SdrRadio::warp(RadioNode::omni_at(Vec3::new(4.2, 4.2, 1.4)));
    let c1 = SdrRadio::warp(RadioNode::omni_at(Vec3::new(7.0, 5.0, 1.5)));
    let ap2 = SdrRadio::warp(RadioNode::omni_at(Vec3::new(4.4, 5.2, 1.4)));
    let c2 = SdrRadio::warp(RadioNode::omni_at(Vec3::new(6.8, 4.0, 1.5)));
    let num = Numerology::wifi20(press::math::consts::WIFI_CHANNEL_11_HZ);
    let mk = |tx: &SdrRadio, rx: &SdrRadio| Sounder::new(num.clone(), tx.clone(), rx.clone());

    let positions = [Vec3::new(5.3, 3.4, 1.5), Vec3::new(5.9, 6.0, 1.5)];
    let aim = Vec3::new(5.6, 4.7, 1.5);
    let array = PressArray::paper_passive_aimed(&positions, lab.scene.wavelength(), aim);
    let mut space = SmartSpace::new(PressSystem::new(lab.scene.clone(), array));
    space.add_link("H11", mk(&ap1, &c1), LinkObjective::FavorLowBand, 1.0);
    space.add_link("H22", mk(&ap2, &c2), LinkObjective::FavorHighBand, 1.0);
    space.add_link("H12", mk(&ap1, &c2), LinkObjective::MaxMeanSnr, -0.5);
    space.add_link("H21", mk(&ap2, &c1), LinkObjective::MaxMeanSnr, -0.5);
    // Four distinct endpoint pairs: four traces, no more.
    assert_eq!(space.env_traces(), 4);

    let mut controller = Controller::new(
        Strategy::Annealing { budget: 10 },
        LinkObjective::MaxMeanSnr,
    );
    controller.seed = 23;
    controller.actuation = ActuationMode::Transport(TransportActuation::ism());
    let link_ids: Vec<(u32, String)> = space
        .links()
        .iter()
        .map(|sl| (sl.id.0, sl.label.clone()))
        .collect();
    let mut metrics = SpaceMetrics::new(&link_ids);
    let report = controller.run_space_episode_instrumented(&space, Some(&mut metrics));

    assert_eq!(report.links.len(), 4);
    for (sl, lr) in space.links().iter().zip(&report.links) {
        assert_eq!(sl.id, lr.id, "report rows follow registry order");
        assert_eq!(sl.label, lr.label);
        assert!(lr.baseline_mean_snr_db.is_finite());
        assert!(lr.chosen_mean_snr_db.is_finite());
    }
    assert!(
        report.actuation_frames > 0,
        "transport actuation really ran"
    );

    // CSV export: one row per LinkId (leading column is the id), then the
    // wire-truth space row.
    let rows = metrics.csv_rows();
    assert_eq!(rows.len(), 5);
    for (i, row) in rows[..4].iter().enumerate() {
        assert!(
            row.starts_with(&format!("{i},")),
            "row {i} must lead with its LinkId: {row}"
        );
        let cols = row.split(',').count();
        assert_eq!(cols, SpaceMetrics::csv_header().split(',').count());
    }
    assert!(rows[4].starts_with("space,"), "shared wire-truth row last");
}
