//! Integration: PRESS performing interference alignment (§1's third
//! harmonization instance) through the full physics stack.

use press::core::alignment::{mean_alignment, post_nulling_sinr_db, Steering};
use press::core::{search, CachedLink, Configuration, PressArray, PressSystem};
use press::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Oracle steering vectors (per subcarrier) from a TX to a 2-antenna RX.
fn steering(
    system: &PressSystem,
    tx: &RadioNode,
    rx: &[RadioNode; 2],
    config: &Configuration,
    freqs: &[f64],
) -> Vec<Steering> {
    let links: Vec<CachedLink> = rx
        .iter()
        .map(|r| CachedLink::trace(system, tx.clone(), r.clone()))
        .collect();
    let h0 = press::propagation::frequency_response(&links[0].paths(system, config), freqs, 0.0);
    let h1 = press::propagation::frequency_response(&links[1].paths(system, config), freqs, 0.0);
    h0.into_iter().zip(h1).map(|(a, b)| [a, b]).collect()
}

#[test]
fn press_alignment_improves_post_nulling_sinr() {
    // Scene: the calibrated lab; two interfering APs across the room, a
    // desired AP near the bystander, a 2-antenna bystander receiver, and a
    // PRESS array between the interferers and the bystander.
    let lab = LabSetup::generate(&LabConfig::default(), 3);
    let lambda = lab.scene.wavelength();
    let num = Numerology::wifi20(press::math::consts::WIFI_CHANNEL_11_HZ);
    let freqs = num.active_freqs_hz();

    let bystander = [
        RadioNode::omni_at(lab.rx.position + Vec3::new(0.0, -lambda / 4.0, 0.0)),
        RadioNode::omni_at(lab.rx.position + Vec3::new(0.0, lambda / 4.0, 0.0)),
    ];
    let desired_ap = lab.tx.clone();
    let intf_ap1 = RadioNode::omni_at(lab.tx.position + Vec3::new(-1.5, 2.2, 0.1));
    let intf_ap2 = RadioNode::omni_at(lab.tx.position + Vec3::new(-1.2, -2.0, -0.1));

    // Elements between interferers and the bystander.
    let mut rng = StdRng::seed_from_u64(5);
    let positions = lab.random_element_positions(3, &mut rng);
    let aim = (lab.rx.position + lab.tx.position) * 0.5;
    let array = PressArray::paper_passive_aimed(&positions, lambda, aim);
    let system = PressSystem::new(lab.scene.clone(), array);
    let space = system.array.config_space();

    let eval_alignment = |config: &Configuration| -> f64 {
        let i1 = steering(&system, &intf_ap1, &bystander, config, &freqs);
        let i2 = steering(&system, &intf_ap2, &bystander, config, &freqs);
        mean_alignment(&i1, &i2)
    };

    let baseline = Configuration::zeros(space.n_elements());
    let base_alignment = eval_alignment(&baseline);
    let result = search::exhaustive(&space, |c| eval_alignment(c));
    assert!(
        result.score >= base_alignment,
        "search cannot do worse than its own baseline"
    );

    // The mechanism the paper names: a single nulling step removes a larger
    // FRACTION of the total interference power when the interferers are
    // better aligned. (Full SINR also moves the desired channel around, so
    // the fraction is the clean monotone quantity to assert.)
    let residual_fraction = |config: &Configuration| -> f64 {
        let i1 = steering(&system, &intf_ap1, &bystander, config, &freqs);
        let i2 = steering(&system, &intf_ap2, &bystander, config, &freqs);
        let mut residual = 0.0;
        let mut total = 0.0;
        for (v1, v2) in i1.iter().zip(&i2) {
            let (_, r) = press::core::alignment::nulling_filter(v1, v2);
            residual += r;
            total += v1[0].norm_sqr() + v1[1].norm_sqr() + v2[0].norm_sqr() + v2[1].norm_sqr();
        }
        residual / total
    };
    let frac_base = residual_fraction(&baseline);
    let frac_aligned = residual_fraction(&result.best);
    assert!(
        frac_aligned < frac_base,
        "higher alignment must leave less interference after one null: \
         {frac_aligned:.4} vs {frac_base:.4} (alignment {base_alignment:.3} -> {:.3})",
        result.score
    );
    assert!(
        result.score > base_alignment + 0.005,
        "PRESS must move the alignment metric: {base_alignment:.4} -> {:.4}",
        result.score
    );

    // And the end-to-end payoff is at least computable and finite.
    let s = steering(&system, &desired_ap, &bystander, &result.best, &freqs);
    let i1 = steering(&system, &intf_ap1, &bystander, &result.best, &freqs);
    let i2 = steering(&system, &intf_ap2, &bystander, &result.best, &freqs);
    let sinr = post_nulling_sinr_db(&s, &i1, &i2, 1e-12);
    assert!(sinr.iter().all(|v| v.is_finite()));
}
