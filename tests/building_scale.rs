//! Building-scale integration: the two-room office floor and the
//! passive-vs-active trade-off of the `through_wall` example, asserted.

use press::core::{CachedLink, Configuration, PlacedElement, PressArray, PressSystem};
use press::prelude::*;
use press::propagation::building::{OfficeConfig, OfficeFloor};
use press::propagation::{Material, Pattern};

fn office() -> OfficeFloor {
    OfficeFloor::generate(
        &OfficeConfig {
            partition: Material::CONCRETE,
            ..OfficeConfig::default()
        },
        1,
    )
}

fn cross_room_sounder(floor: &OfficeFloor) -> Sounder {
    let mut ap = SdrRadio::warp(floor.ap.clone());
    ap.tx_power_dbm = 0.0;
    Sounder::new(
        Numerology::wifi20(press::math::consts::WIFI_CHANNEL_11_HZ),
        ap,
        SdrRadio::warp(floor.client.clone()),
    )
}

#[test]
fn concrete_partition_attenuates_cross_room_link() {
    let thin = OfficeFloor::generate(&OfficeConfig::default(), 1); // drywall
    let thick = office(); // concrete
    let power = |floor: &OfficeFloor| -> f64 {
        let paths = floor.scene.paths(&floor.ap, &floor.client);
        10.0 * paths.iter().map(|p| p.gain.norm_sqr()).sum::<f64>().log10()
    };
    assert!(
        power(&thick) < power(&thin) - 5.0,
        "concrete {} dB vs drywall {} dB",
        power(&thick),
        power(&thin)
    );
}

#[test]
fn passive_doorway_elements_gain_little_at_room_scale() {
    let floor = office();
    let sounder = cross_room_sounder(&floor);
    let lambda = floor.scene.wavelength();
    let aim = floor.door_center;
    let elements: Vec<PlacedElement> = floor
        .doorway_candidates
        .iter()
        .take(3)
        .map(|&p| PlacedElement {
            element: Element::paper_passive(lambda),
            position: p,
            antenna: Antenna::new(Pattern::press_patch(), aim - p),
        })
        .collect();
    let system = PressSystem::new(floor.scene.clone(), PressArray::new(elements));
    let link = CachedLink::trace(&system, floor.ap.clone(), floor.client.clone());
    let space = system.array.config_space();
    let mut best = f64::NEG_INFINITY;
    let mut worst = f64::INFINITY;
    for config in space.iter() {
        let mean = sounder
            .oracle_snr(&link.paths(&system, &config), 0.0)
            .mean_db();
        best = best.max(mean);
        worst = worst.min(mean);
    }
    // Two ~4 m backscatter legs sit ~30 dB under the surviving channel:
    // the whole configuration space moves the mean by under 2 dB.
    assert!(
        best - worst < 2.0,
        "passive doorway swing should be small: {:.2} dB",
        best - worst
    );
}

#[test]
fn active_doorway_relay_transforms_the_link() {
    let floor = office();
    let sounder = cross_room_sounder(&floor);

    // Baseline: no PRESS.
    let bare = PressSystem::new(floor.scene.clone(), PressArray::new(vec![]));
    let bare_link = CachedLink::trace(&bare, floor.ap.clone(), floor.client.clone());
    let before = sounder
        .oracle_snr(&bare_link.paths(&bare, &Configuration::zeros(0)), 0.0)
        .mean_db();

    // One 50 dB relay in the doorway.
    let mut relay = Element::active(50.0);
    relay.program_active(50.0, 0.0, true);
    let system = PressSystem::new(
        floor.scene.clone(),
        PressArray::new(vec![PlacedElement {
            element: relay,
            position: floor.door_center,
            antenna: Antenna::new(Pattern::endpoint_omni(), press::propagation::Vec3::Z),
        }]),
    );
    let link = CachedLink::trace(&system, floor.ap.clone(), floor.client.clone());
    let after = sounder
        .oracle_snr(&link.paths(&system, &Configuration::zeros(1)), 0.0)
        .mean_db();
    assert!(
        after > before + 10.0,
        "relay must dominate the partition: {before:.1} -> {after:.1} dB"
    );
}

#[test]
fn continuous_relay_tuning_helps_or_matches() {
    use press::core::tune_active_phases;
    let floor = office();
    let sounder = cross_room_sounder(&floor);
    let mut system = PressSystem::new(
        floor.scene.clone(),
        PressArray::new(vec![PlacedElement {
            element: Element::active(30.0),
            position: floor.door_center,
            antenna: Antenna::new(Pattern::endpoint_omni(), press::propagation::Vec3::Z),
        }]),
    );
    let link = CachedLink::trace(&system, floor.ap.clone(), floor.client.clone());
    let passive_cfg = Configuration::zeros(1);
    let objective = |p: &SnrProfile| p.min_db();
    system.array.elements[0]
        .element
        .program_active(30.0, 0.0, true);
    let phase_zero = objective(&sounder.oracle_snr(&link.paths(&system, &passive_cfg), 0.0));
    let tuned = tune_active_phases(
        &mut system,
        &link,
        &sounder,
        &passive_cfg,
        30.0,
        2,
        &objective,
    );
    assert!(
        tuned.score >= phase_zero - 1e-9,
        "tuned {} vs phase-zero {phase_zero}",
        tuned.score
    );
}
