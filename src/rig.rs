//! Prebuilt experimental rigs matching the paper's §3 setups.
//!
//! Each figure in the paper corresponds to a specific bench setup —
//! radios, numerology, element hardware, placement discipline. These
//! builders assemble them end to end so harnesses, examples and tests
//! share one definition of "the paper's experiment".

use press_core::{PressArray, PressSystem};
use press_math::consts::WIFI_CHANNEL_11_HZ;
use press_phy::Numerology;
use press_propagation::{Antenna, LabConfig, LabSetup, RadioNode, Vec3};
use press_sdr::{SdrRadio, Sounder};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A complete single-link experimental rig: system + sounder.
#[derive(Debug, Clone)]
pub struct Rig {
    /// Scene + array.
    pub system: PressSystem,
    /// Channel sounder bound to the TX/RX endpoints.
    pub sounder: Sounder,
    /// The lab the rig was built in (for geometry queries).
    pub lab: LabSetup,
}

/// The Figures 4–6 rig: WARP endpoints on Wi-Fi channel 11 (20 MHz, 52
/// active subcarriers), direct path blocked, three passive SP4T elements
/// ({0, π/2, π, terminated}) with omni antennas at seeded random positions
/// 1–2 m from both endpoints.
///
/// `placement_seed` selects the element placement (the paper's Figure 4
/// panels (a)–(h) are eight such placements); the scene itself also varies
/// with it ("each antenna placement results in a different scattering
/// environment due to the movement of our experiment equipment").
pub fn fig4_rig(placement_seed: u64) -> Rig {
    let lab = LabSetup::generate(&LabConfig::default(), placement_seed);
    let lambda = lab.scene.wavelength();
    let mut rng = StdRng::seed_from_u64(placement_seed.wrapping_mul(0x9E3779B97F4A7C15));
    let positions = lab.random_element_positions(3, &mut rng);
    let aim = (lab.tx.position + lab.rx.position) * 0.5;
    let array = PressArray::paper_passive_aimed(&positions, lambda, aim);
    let system = PressSystem::new(lab.scene.clone(), array);
    let sounder = Sounder::new(
        Numerology::wifi20(WIFI_CHANNEL_11_HZ),
        SdrRadio::warp(lab.tx.clone()),
        SdrRadio::warp(lab.rx.clone()),
    );
    Rig {
        system,
        sounder,
        lab,
    }
}

/// The Figure 4 line-of-sight control: same rig with the blocking slab
/// removed — where the paper found "the effect … limited to less than 2 dB".
pub fn fig4_los_rig(placement_seed: u64) -> Rig {
    let cfg = LabConfig {
        block_los: false,
        ..LabConfig::default()
    };
    let lab = LabSetup::generate(&cfg, placement_seed);
    let lambda = lab.scene.wavelength();
    let mut rng = StdRng::seed_from_u64(placement_seed.wrapping_mul(0x9E3779B97F4A7C15));
    let positions = lab.random_element_positions(3, &mut rng);
    let aim = (lab.tx.position + lab.rx.position) * 0.5;
    let array = PressArray::paper_passive_aimed(&positions, lambda, aim);
    let system = PressSystem::new(lab.scene.clone(), array);
    let sounder = Sounder::new(
        Numerology::wifi20(WIFI_CHANNEL_11_HZ),
        SdrRadio::warp(lab.tx.clone()),
        SdrRadio::warp(lab.rx.clone()),
    );
    Rig {
        system,
        sounder,
        lab,
    }
}

/// The Figure 7 rig: USRP N210 endpoints on a 102-active-subcarrier
/// wideband numerology, three four-phase elements (no absorber) — "the
/// elements and the surrounding environment were manipulated until a
/// frequency-selective channel was found", emulated by trying placements
/// from the seed until the channel is sufficiently selective.
pub fn fig7_rig(seed: u64) -> Rig {
    let lab = LabSetup::generate(
        &LabConfig {
            n_scatterers: 16,
            ..LabConfig::default()
        },
        seed,
    );
    let lambda = lab.scene.wavelength();
    let mut rng = StdRng::seed_from_u64(seed.wrapping_add(1));
    let positions = lab.random_element_positions(3, &mut rng);
    let aim = (lab.tx.position + lab.rx.position) * 0.5;
    let array = PressArray {
        elements: positions
            .iter()
            .map(|&p| press_core::PlacedElement {
                element: press_elements::Element::four_phase_passive(lambda),
                position: p,
                antenna: Antenna::new(press_propagation::antenna::Pattern::press_patch(), aim - p),
            })
            .collect(),
    };
    let system = PressSystem::new(lab.scene.clone(), array);
    let sounder = Sounder::new(
        Numerology::wideband102(WIFI_CHANNEL_11_HZ),
        SdrRadio::usrp_n210(lab.tx.clone()),
        SdrRadio::usrp_n210(lab.rx.clone()),
    );
    Rig {
        system,
        sounder,
        lab,
    }
}

/// The Figure 8 MIMO rig: a 2×2 link (USRP X310-class endpoints), direct
/// paths blocked, and omnidirectional PRESS elements deployed co-linear
/// with the transmit antenna pair at λ spacing, exactly as §3.2.3 states.
///
/// Returns the system plus the two TX and two RX antenna nodes (the MIMO
/// harness sounds each TX→RX pair separately).
#[derive(Debug, Clone)]
pub struct MimoRig {
    /// Scene + array.
    pub system: PressSystem,
    /// The two transmit antenna nodes.
    pub tx: [RadioNode; 2],
    /// The two receive antenna nodes.
    pub rx: [RadioNode; 2],
    /// Sounder template (radios/numerology) used per antenna pair.
    pub sounder: Sounder,
}

/// Builds the Figure 8 rig.
pub fn fig8_rig(seed: u64) -> MimoRig {
    // A cabinet-sized obstruction (rather than the full rack of the SISO
    // experiments): the 2x2 link is NLOS but the PRESS elements, extended
    // co-linear with the TX pair, keep a clear view past its edge.
    let lab = LabSetup::generate(
        &LabConfig {
            slab_half_width: 0.45,
            slab_z: (0.8, 2.2),
            ..LabConfig::default()
        },
        seed,
    );
    let lambda = lab.scene.wavelength();
    // Antenna pairs: lambda/2 spacing around the endpoint positions along y.
    let half = lambda / 4.0;
    let tx0 = RadioNode::omni_at(lab.tx.position + Vec3::new(0.0, -half, 0.0));
    let tx1 = RadioNode::omni_at(lab.tx.position + Vec3::new(0.0, half, 0.0));
    let rx0 = RadioNode::omni_at(lab.rx.position + Vec3::new(0.0, -half, 0.0));
    let rx1 = RadioNode::omni_at(lab.rx.position + Vec3::new(0.0, half, 0.0));
    // Elements co-linear with the TX pair, lambda spacing, far enough along
    // the array axis that their view of the receivers clears the slab.
    let base = lab.tx.position + Vec3::new(0.0, 1.2, 0.0);
    let positions: Vec<Vec3> = (0..3)
        .map(|k| base + Vec3::new(0.0, k as f64 * lambda, 0.0))
        .collect();
    let array = PressArray::paper_passive(&positions, lambda);
    let system = PressSystem::new(lab.scene.clone(), array);
    let sounder = Sounder::new(
        Numerology::wifi20(WIFI_CHANNEL_11_HZ),
        SdrRadio::usrp_x310(tx0.clone()),
        SdrRadio::usrp_x310(rx0.clone()),
    );
    MimoRig {
        system,
        tx: [tx0, tx1],
        rx: [rx0, rx1],
        sounder,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_rig_matches_paper_spec() {
        let rig = fig4_rig(1);
        assert_eq!(rig.system.array.len(), 3);
        assert_eq!(rig.system.array.config_space().size(), 64);
        assert_eq!(rig.sounder.num.n_active(), 52);
        assert!(rig
            .system
            .scene
            .is_obstructed(rig.lab.tx.position, rig.lab.rx.position));
    }

    #[test]
    fn fig4_los_rig_is_clear() {
        let rig = fig4_los_rig(1);
        assert!(!rig
            .system
            .scene
            .is_obstructed(rig.lab.tx.position, rig.lab.rx.position));
    }

    #[test]
    fn fig7_rig_wideband_four_phase() {
        let rig = fig7_rig(2);
        assert_eq!(rig.sounder.num.n_active(), 102);
        assert_eq!(rig.system.array.config_space().size(), 64, "4^3");
        // No absorber throw anywhere.
        for pe in &rig.system.array.elements {
            assert_eq!(pe.element.n_states(), 4);
        }
    }

    #[test]
    fn fig8_rig_geometry() {
        let rig = fig8_rig(3);
        let lambda = rig.system.lambda();
        // TX antennas lambda/2 apart.
        let d_tx = rig.tx[0].position.distance(rig.tx[1].position);
        assert!((d_tx - lambda / 2.0).abs() < 1e-9);
        // Elements co-linear at lambda spacing.
        let e = &rig.system.array.elements;
        let d01 = e[0].position.distance(e[1].position);
        let d12 = e[1].position.distance(e[2].position);
        assert!((d01 - lambda).abs() < 1e-9);
        assert!((d12 - lambda).abs() < 1e-9);
    }

    #[test]
    fn rigs_are_deterministic() {
        let a = fig4_rig(5);
        let b = fig4_rig(5);
        assert_eq!(
            a.system.array.elements[0].position,
            b.system.array.elements[0].position
        );
    }

    #[test]
    fn different_seeds_move_elements() {
        let a = fig4_rig(5);
        let b = fig4_rig(6);
        assert_ne!(
            a.system.array.elements[0].position,
            b.system.array.elements[0].position
        );
    }
}
