//! Prebuilt experimental rigs matching the paper's §3 setups.
//!
//! Each figure in the paper corresponds to a specific bench setup —
//! radios, numerology, element hardware, placement discipline. One
//! [`NetworkRig`] builder assembles any *N*-endpoint-pair deployment in a
//! lab; the paper's single-link rigs ([`fig4_rig`], [`fig7_rig`], …) are
//! one-line specializations of it, so harnesses, examples and tests share
//! one definition of "the paper's experiment".

use press_core::{LinkObjective, PressArray, PressSystem, SmartSpace};
use press_math::consts::WIFI_CHANNEL_11_HZ;
use press_phy::Numerology;
use press_propagation::{Antenna, LabConfig, LabSetup, RadioNode, Vec3};
use press_sdr::{SdrRadio, Sounder};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A complete single-link experimental rig: system + sounder.
#[derive(Debug, Clone)]
pub struct Rig {
    /// Scene + array.
    pub system: PressSystem,
    /// Channel sounder bound to the TX/RX endpoints.
    pub sounder: Sounder,
    /// The lab the rig was built in (for geometry queries).
    pub lab: LabSetup,
}

/// The Figure 8 MIMO rig: a 2×2 link (USRP X310-class endpoints), direct
/// paths blocked, and omnidirectional PRESS elements deployed co-linear
/// with the transmit antenna pair at λ spacing, exactly as §3.2.3 states.
///
/// Returns the system plus the two TX and two RX antenna nodes (the MIMO
/// harness sounds each TX→RX pair separately).
#[derive(Debug, Clone)]
pub struct MimoRig {
    /// Scene + array.
    pub system: PressSystem,
    /// The two transmit antenna nodes.
    pub tx: [RadioNode; 2],
    /// The two receive antenna nodes.
    pub rx: [RadioNode; 2],
    /// Sounder template (radios/numerology) used per antenna pair.
    pub sounder: Sounder,
}

/// How a [`NetworkRigBuilder`] lays out its TX/RX endpoint pairs.
#[derive(Debug, Clone)]
pub enum PairLayout {
    /// One pair: the lab's own TX and RX endpoints.
    LabLink,
    /// A 2×2 MIMO bench: antenna pairs at ±λ/4 along y around the lab's
    /// endpoints, enumerated as the four TX→RX combinations
    /// `(tx0,rx0), (tx0,rx1), (tx1,rx0), (tx1,rx1)`.
    Mimo2x2,
    /// One AP (the lab TX) serving clients at the given positions.
    Clients(Vec<Vec3>),
    /// Arbitrary endpoint pairs.
    Explicit(Vec<(RadioNode, RadioNode)>),
}

/// How a [`NetworkRigBuilder`] places its PRESS elements.
#[derive(Debug, Clone)]
pub enum ElementPlacement {
    /// Seeded random placements 1–2 m from both lab endpoints (the §3.2
    /// discipline). The seed is taken verbatim — derive it from your
    /// placement seed however the experiment specifies.
    RandomInLab {
        /// Number of elements.
        count: usize,
        /// Seed of the placement RNG.
        rng_seed: u64,
    },
    /// Elements co-linear with the lab TX from `base_offset`, spaced
    /// `spacing_lambda`·λ along y (the §3.2.3 MIMO discipline).
    TxColinear {
        /// Number of elements.
        count: usize,
        /// Offset of the first element from the lab TX position.
        base_offset: Vec3,
        /// Element spacing in wavelengths.
        spacing_lambda: f64,
    },
    /// Explicit positions.
    Explicit(Vec<Vec3>),
}

/// Which element hardware a [`NetworkRigBuilder`] deploys.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ElementKind {
    /// The paper's SP4T passive elements with patch antennas aimed at the
    /// midpoint of the first endpoint pair.
    PaperAimed,
    /// The paper's SP4T passive elements with omni antennas (the MIMO
    /// bench's discipline).
    PaperOmni,
    /// Four-phase passive elements (no terminated throw) with aimed patch
    /// antennas — the Figure 7 hardware.
    FourPhaseAimed,
}

/// Which SDR model drives the endpoints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RadioModel {
    /// WARP (the Figures 4–6 prototype).
    Warp,
    /// USRP N210 (the Figure 7 wideband bench).
    UsrpN210,
    /// USRP X310 (the Figure 8 MIMO bench).
    UsrpX310,
}

impl RadioModel {
    fn radio(&self, node: RadioNode) -> SdrRadio {
        match self {
            RadioModel::Warp => SdrRadio::warp(node),
            RadioModel::UsrpN210 => SdrRadio::usrp_n210(node),
            RadioModel::UsrpX310 => SdrRadio::usrp_x310(node),
        }
    }
}

/// A deployed lab with *N* endpoint pairs sharing one scene + array — the
/// buildable superset of every paper rig, and the natural seed of a
/// [`SmartSpace`].
#[derive(Debug, Clone)]
pub struct NetworkRig {
    /// Scene + array.
    pub system: PressSystem,
    /// One sounder per endpoint pair, in pair order.
    pub sounders: Vec<Sounder>,
    /// The lab the rig was built in (for geometry queries).
    pub lab: LabSetup,
}

impl NetworkRig {
    /// Starts a builder with the Figures 4–6 defaults: the lab link, three
    /// randomly-placed aimed SP4T elements, WARP radios on Wi-Fi channel
    /// 11.
    pub fn builder() -> NetworkRigBuilder {
        NetworkRigBuilder::default()
    }

    /// Specializes an (assumed single-pair) rig to the historical
    /// single-link [`Rig`].
    pub fn into_single(mut self) -> Rig {
        assert_eq!(self.sounders.len(), 1, "into_single needs exactly one pair");
        Rig {
            system: self.system,
            sounder: self.sounders.remove(0),
            lab: self.lab,
        }
    }

    /// Specializes a [`PairLayout::Mimo2x2`] rig to the historical
    /// [`MimoRig`] (first pair's sounder as the per-pair template).
    pub fn into_mimo(mut self) -> MimoRig {
        assert_eq!(self.sounders.len(), 4, "into_mimo needs the 2x2 pair set");
        let tx = [
            self.sounders[0].tx.node.clone(),
            self.sounders[2].tx.node.clone(),
        ];
        let rx = [
            self.sounders[0].rx.node.clone(),
            self.sounders[1].rx.node.clone(),
        ];
        MimoRig {
            system: self.system,
            tx,
            rx,
            sounder: self.sounders.remove(0),
        }
    }

    /// Registers every pair into a fresh [`SmartSpace`] with a common
    /// objective and uniform weight 1.0, labeled `link 0..n`.
    pub fn smart_space(&self, objective: LinkObjective) -> SmartSpace {
        let mut space = SmartSpace::new(self.system.clone());
        for (i, s) in self.sounders.iter().enumerate() {
            space.add_link(&format!("link {i}"), s.clone(), objective, 1.0);
        }
        space
    }
}

/// Builder for [`NetworkRig`]. Every knob defaults to the Figures 4–6
/// bench; each paper rig overrides the handful that differ.
#[derive(Debug, Clone)]
pub struct NetworkRigBuilder {
    lab_config: LabConfig,
    lab_seed: u64,
    pairs: PairLayout,
    placement: ElementPlacement,
    element: ElementKind,
    radio: RadioModel,
    numerology: Numerology,
}

impl Default for NetworkRigBuilder {
    fn default() -> Self {
        NetworkRigBuilder {
            lab_config: LabConfig::default(),
            lab_seed: 0,
            pairs: PairLayout::LabLink,
            placement: ElementPlacement::RandomInLab {
                count: 3,
                rng_seed: 0,
            },
            element: ElementKind::PaperAimed,
            radio: RadioModel::Warp,
            numerology: Numerology::wifi20(WIFI_CHANNEL_11_HZ),
        }
    }
}

impl NetworkRigBuilder {
    /// Sets the lab generation config.
    pub fn lab_config(mut self, cfg: LabConfig) -> Self {
        self.lab_config = cfg;
        self
    }

    /// Sets the lab generation seed.
    pub fn lab_seed(mut self, seed: u64) -> Self {
        self.lab_seed = seed;
        self
    }

    /// Sets the endpoint pair layout.
    pub fn pairs(mut self, pairs: PairLayout) -> Self {
        self.pairs = pairs;
        self
    }

    /// Sets the element placement discipline.
    pub fn placement(mut self, placement: ElementPlacement) -> Self {
        self.placement = placement;
        self
    }

    /// Sets the element hardware.
    pub fn element(mut self, element: ElementKind) -> Self {
        self.element = element;
        self
    }

    /// Sets the endpoint SDR model.
    pub fn radio(mut self, radio: RadioModel) -> Self {
        self.radio = radio;
        self
    }

    /// Sets the numerology every pair's sounder uses.
    pub fn numerology(mut self, num: Numerology) -> Self {
        self.numerology = num;
        self
    }

    /// Assembles the rig: generate the lab, lay out the pairs, place and
    /// aim the elements, and bind one sounder per pair.
    pub fn build(self) -> NetworkRig {
        let lab = LabSetup::generate(&self.lab_config, self.lab_seed);
        let lambda = lab.scene.wavelength();

        let pairs: Vec<(RadioNode, RadioNode)> = match &self.pairs {
            PairLayout::LabLink => vec![(lab.tx.clone(), lab.rx.clone())],
            PairLayout::Mimo2x2 => {
                // Antenna pairs: lambda/2 spacing around the endpoint
                // positions along y.
                let half = lambda / 4.0;
                let tx0 = RadioNode::omni_at(lab.tx.position + Vec3::new(0.0, -half, 0.0));
                let tx1 = RadioNode::omni_at(lab.tx.position + Vec3::new(0.0, half, 0.0));
                let rx0 = RadioNode::omni_at(lab.rx.position + Vec3::new(0.0, -half, 0.0));
                let rx1 = RadioNode::omni_at(lab.rx.position + Vec3::new(0.0, half, 0.0));
                vec![
                    (tx0.clone(), rx0.clone()),
                    (tx0, rx1.clone()),
                    (tx1.clone(), rx0),
                    (tx1, rx1),
                ]
            }
            PairLayout::Clients(clients) => clients
                .iter()
                .map(|&c| (lab.tx.clone(), RadioNode::omni_at(c)))
                .collect(),
            PairLayout::Explicit(pairs) => pairs.clone(),
        };
        assert!(!pairs.is_empty(), "a network rig needs at least one pair");

        let positions: Vec<Vec3> = match &self.placement {
            ElementPlacement::RandomInLab { count, rng_seed } => {
                let mut rng = StdRng::seed_from_u64(*rng_seed);
                lab.random_element_positions(*count, &mut rng)
            }
            ElementPlacement::TxColinear {
                count,
                base_offset,
                spacing_lambda,
            } => {
                let base = lab.tx.position + *base_offset;
                (0..*count)
                    .map(|k| base + Vec3::new(0.0, k as f64 * spacing_lambda * lambda, 0.0))
                    .collect()
            }
            ElementPlacement::Explicit(p) => p.clone(),
        };

        // Aimed hardware points at the midpoint of the first pair — the
        // paper's "aim at the link" discipline.
        let aim = (pairs[0].0.position + pairs[0].1.position) * 0.5;
        let array = match self.element {
            ElementKind::PaperAimed => PressArray::paper_passive_aimed(&positions, lambda, aim),
            ElementKind::PaperOmni => PressArray::paper_passive(&positions, lambda),
            ElementKind::FourPhaseAimed => PressArray {
                elements: positions
                    .iter()
                    .map(|&p| press_core::PlacedElement {
                        element: press_elements::Element::four_phase_passive(lambda),
                        position: p,
                        antenna: Antenna::new(
                            press_propagation::antenna::Pattern::press_patch(),
                            aim - p,
                        ),
                    })
                    .collect(),
            },
        };
        let system = PressSystem::new(lab.scene.clone(), array);
        let sounders = pairs
            .into_iter()
            .map(|(tx, rx)| {
                Sounder::new(
                    self.numerology.clone(),
                    self.radio.radio(tx),
                    self.radio.radio(rx),
                )
            })
            .collect();
        NetworkRig {
            system,
            sounders,
            lab,
        }
    }
}

/// The Figures 4–6 rig: WARP endpoints on Wi-Fi channel 11 (20 MHz, 52
/// active subcarriers), direct path blocked, three passive SP4T elements
/// ({0, π/2, π, terminated}) with omni antennas at seeded random positions
/// 1–2 m from both endpoints.
///
/// `placement_seed` selects the element placement (the paper's Figure 4
/// panels (a)–(h) are eight such placements); the scene itself also varies
/// with it ("each antenna placement results in a different scattering
/// environment due to the movement of our experiment equipment").
pub fn fig4_rig(placement_seed: u64) -> Rig {
    fig4_builder(placement_seed, LabConfig::default())
        .build()
        .into_single()
}

/// The Figure 4 line-of-sight control: same rig with the blocking slab
/// removed — where the paper found "the effect … limited to less than 2 dB".
pub fn fig4_los_rig(placement_seed: u64) -> Rig {
    let cfg = LabConfig {
        block_los: false,
        ..LabConfig::default()
    };
    fig4_builder(placement_seed, cfg).build().into_single()
}

/// The shared Figures 4–6 builder (the LOS control only flips the slab).
fn fig4_builder(placement_seed: u64, cfg: LabConfig) -> NetworkRigBuilder {
    NetworkRig::builder()
        .lab_config(cfg)
        .lab_seed(placement_seed)
        .placement(ElementPlacement::RandomInLab {
            count: 3,
            rng_seed: placement_seed.wrapping_mul(0x9E3779B97F4A7C15),
        })
}

/// The Figure 7 rig: USRP N210 endpoints on a 102-active-subcarrier
/// wideband numerology, three four-phase elements (no absorber) — "the
/// elements and the surrounding environment were manipulated until a
/// frequency-selective channel was found", emulated by trying placements
/// from the seed until the channel is sufficiently selective.
pub fn fig7_rig(seed: u64) -> Rig {
    NetworkRig::builder()
        .lab_config(LabConfig {
            n_scatterers: 16,
            ..LabConfig::default()
        })
        .lab_seed(seed)
        .placement(ElementPlacement::RandomInLab {
            count: 3,
            rng_seed: seed.wrapping_add(1),
        })
        .element(ElementKind::FourPhaseAimed)
        .radio(RadioModel::UsrpN210)
        .numerology(Numerology::wideband102(WIFI_CHANNEL_11_HZ))
        .build()
        .into_single()
}

/// Builds the Figure 8 rig.
pub fn fig8_rig(seed: u64) -> MimoRig {
    // A cabinet-sized obstruction (rather than the full rack of the SISO
    // experiments): the 2x2 link is NLOS but the PRESS elements, extended
    // co-linear with the TX pair, keep a clear view past its edge.
    NetworkRig::builder()
        .lab_config(LabConfig {
            slab_half_width: 0.45,
            slab_z: (0.8, 2.2),
            ..LabConfig::default()
        })
        .lab_seed(seed)
        .pairs(PairLayout::Mimo2x2)
        // Elements co-linear with the TX pair, lambda spacing, far enough
        // along the array axis that their view of the receivers clears the
        // slab.
        .placement(ElementPlacement::TxColinear {
            count: 3,
            base_offset: Vec3::new(0.0, 1.2, 0.0),
            spacing_lambda: 1.0,
        })
        .element(ElementKind::PaperOmni)
        .radio(RadioModel::UsrpX310)
        .build()
        .into_mimo()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_rig_matches_paper_spec() {
        let rig = fig4_rig(1);
        assert_eq!(rig.system.array.len(), 3);
        assert_eq!(rig.system.array.config_space().size(), 64);
        assert_eq!(rig.sounder.num.n_active(), 52);
        assert!(rig
            .system
            .scene
            .is_obstructed(rig.lab.tx.position, rig.lab.rx.position));
    }

    #[test]
    fn fig4_los_rig_is_clear() {
        let rig = fig4_los_rig(1);
        assert!(!rig
            .system
            .scene
            .is_obstructed(rig.lab.tx.position, rig.lab.rx.position));
    }

    #[test]
    fn fig7_rig_wideband_four_phase() {
        let rig = fig7_rig(2);
        assert_eq!(rig.sounder.num.n_active(), 102);
        assert_eq!(rig.system.array.config_space().size(), 64, "4^3");
        // No absorber throw anywhere.
        for pe in &rig.system.array.elements {
            assert_eq!(pe.element.n_states(), 4);
        }
    }

    #[test]
    fn fig8_rig_geometry() {
        let rig = fig8_rig(3);
        let lambda = rig.system.lambda();
        // TX antennas lambda/2 apart.
        let d_tx = rig.tx[0].position.distance(rig.tx[1].position);
        assert!((d_tx - lambda / 2.0).abs() < 1e-9);
        // Elements co-linear at lambda spacing.
        let e = &rig.system.array.elements;
        let d01 = e[0].position.distance(e[1].position);
        let d12 = e[1].position.distance(e[2].position);
        assert!((d01 - lambda).abs() < 1e-9);
        assert!((d12 - lambda).abs() < 1e-9);
    }

    #[test]
    fn rigs_are_deterministic() {
        let a = fig4_rig(5);
        let b = fig4_rig(5);
        assert_eq!(
            a.system.array.elements[0].position,
            b.system.array.elements[0].position
        );
    }

    #[test]
    fn different_seeds_move_elements() {
        let a = fig4_rig(5);
        let b = fig4_rig(6);
        assert_ne!(
            a.system.array.elements[0].position,
            b.system.array.elements[0].position
        );
    }

    #[test]
    fn clients_layout_builds_one_sounder_per_client() {
        let rig = NetworkRig::builder()
            .lab_seed(6)
            .pairs(PairLayout::Clients(vec![
                Vec3::new(7.0, 5.0, 1.5),
                Vec3::new(6.8, 4.0, 1.5),
            ]))
            .placement(ElementPlacement::RandomInLab {
                count: 3,
                rng_seed: 2,
            })
            .build();
        assert_eq!(rig.sounders.len(), 2);
        // All pairs share the lab TX.
        assert_eq!(
            rig.sounders[0].tx.node.position,
            rig.sounders[1].tx.node.position
        );
        let space = rig.smart_space(LinkObjective::MaxMeanSnr);
        assert_eq!(space.n_links(), 2);
        assert_eq!(space.env_traces(), 2);
    }

    #[test]
    fn mimo_layout_shares_endpoints_across_pairs() {
        let rig = NetworkRig::builder()
            .lab_seed(3)
            .pairs(PairLayout::Mimo2x2)
            .placement(ElementPlacement::TxColinear {
                count: 3,
                base_offset: Vec3::new(0.0, 1.2, 0.0),
                spacing_lambda: 1.0,
            })
            .element(ElementKind::PaperOmni)
            .radio(RadioModel::UsrpX310)
            .build();
        assert_eq!(rig.sounders.len(), 4);
        // (tx0,rx0) and (tx0,rx1) share their TX node.
        assert_eq!(
            rig.sounders[0].tx.node.position,
            rig.sounders[1].tx.node.position
        );
        assert_ne!(
            rig.sounders[0].rx.node.position,
            rig.sounders[1].rx.node.position
        );
    }
}
