//! # press
//!
//! Full-stack Rust reproduction of **"Programmable Radio Environments for
//! Smart Spaces"** (PRESS, HotNets-XVI 2017) — the paper that presaged
//! reconfigurable intelligent surfaces: wall-embedded arrays of switched
//! antenna elements that reshape indoor multipath to improve the wireless
//! links passing through it.
//!
//! This facade crate re-exports the whole workspace and provides the
//! prebuilt experimental [`rig`]s matching the paper's §3 setups. See
//! DESIGN.md for the system inventory and EXPERIMENTS.md for the
//! paper-vs-measured record of every figure.
//!
//! ```
//! use press::prelude::*;
//!
//! // The paper's Figure 4 rig: NLOS link + 3 switched passive elements.
//! let rig = press::rig::fig4_rig(1);
//! assert_eq!(rig.system.array.config_space().size(), 64);
//! ```

#![forbid(unsafe_code)]
pub mod rig;

pub use press_control as control;
pub use press_core as core;
pub use press_elements as elements;
pub use press_math as math;
pub use press_phy as phy;
pub use press_propagation as propagation;
pub use press_sdr as sdr;
pub use press_trace as trace;

/// One-stop imports for examples and quick scripts.
pub mod prelude {
    pub use crate::rig::{
        fig4_los_rig, fig4_rig, fig7_rig, fig8_rig, ElementKind, ElementPlacement, MimoRig,
        NetworkRig, PairLayout, RadioModel, Rig,
    };
    pub use press_control::{
        actuate, simulate_actuation, AckPolicy, ControlMetrics, ElementFaults, FaultPlan,
        GilbertElliott, SpaceMetrics, Transport,
    };
    pub use press_core::{
        headline_stats, optimize_sharded, optimize_sharded_parallel, run_campaign, shard_space,
        ActuationMode, CampaignConfig, ChurnEvent, ConfigSpace, Configuration, Controller, LinkId,
        LinkObjective, PressArray, PressSystem, Shard, SmartSpace, SpaceReport, Strategy,
        TransportActuation,
    };
    pub use press_elements::Element;
    pub use press_math::{CMat, Complex64, Ecdf};
    pub use press_phy::{MimoChannel, Numerology, SnrProfile};
    pub use press_propagation::{
        Antenna, Campus, CampusConfig, LabConfig, LabSetup, RadioNode, Scene, Vec3,
    };
    pub use press_sdr::{SdrRadio, Sounder};
    pub use press_trace::{
        Event, EventKind, FlightRecorder, JsonlSink, MemorySink, NullSink, Phase, TraceSink, Tracer,
    };
}
